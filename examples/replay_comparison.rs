//! Apples-to-apples strategy comparison by trace replay: record one
//! workload once, then replay the *identical* injection schedule into a
//! clean network, an attacked-unprotected network, and an attacked network
//! under the paper's mitigation.
//!
//! Run: `cargo run --release --example replay_comparison`

use htnoc::prelude::*;
use htnoc::traffic::Trace;

fn main() {
    let mesh = Mesh::paper();
    // Record 1000 cycles of the Blackscholes model once.
    let mut model = AppModel::new(AppSpec::blackscholes(), mesh.clone(), 7).until(1000);
    let trace = Trace::capture(&mut model, 1000);
    println!(
        "recorded workload: {} packets / {} flits over 1000 cycles\n",
        trace.len(),
        trace.flits()
    );

    let infected: Vec<LinkId> = {
        let mut probe = AppModel::new(AppSpec::blackscholes(), mesh.clone(), 7);
        let shares = TrafficMatrix::sample(&mut probe, 1500).link_shares_xy(&mesh);
        select_infected(&mesh, &shares, 1.0, None)
            .into_iter()
            .take(1)
            .collect()
    };

    println!(
        "{:<28} {:>9} {:>12} {:>8} {:>9}",
        "network", "delivered", "avg latency", "p99", "finished"
    );
    for (label, mount_trojan, mitigation) in [
        ("clean", false, false),
        ("attacked, unprotected", true, false),
        ("attacked, s2s L-Ob", true, true),
    ] {
        let cfg = if mitigation {
            SimConfig::paper()
        } else {
            SimConfig::paper_unprotected()
        };
        let mut sim = Simulator::new(cfg);
        if mount_trojan {
            for l in &infected {
                let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(
                    (AppSpec::blackscholes().primary.0 & 0xF) as u8,
                )));
                let faults = std::mem::replace(
                    sim.link_faults_mut(*l),
                    htnoc::sim::fault::LinkFaults::healthy(0),
                );
                *sim.link_faults_mut(*l) = faults.with_trojan(ht);
            }
            sim.arm_trojans(true);
        }
        let mut replay = trace.replay();
        let finished = sim.run_to_quiescence(30_000, &mut replay);
        let s = sim.stats();
        println!(
            "{:<28} {:>9} {:>12.1} {:>8} {:>9}",
            label,
            s.delivered_packets,
            s.avg_latency(),
            s.latency_percentile(0.99),
            finished
        );
    }
    println!(
        "\nIdentical injections everywhere — the deltas are purely the trojan's\n\
         doing and the mitigation's cost."
    );
}
