//! Quickstart: build the paper's 64-core NoC, plant a TASP hardware trojan
//! on a hot link, watch it deny service, then turn on the threat detector +
//! L-Ob mitigation and watch the network shrug the attack off.
//!
//! Run: `cargo run --release --example quickstart`

use htnoc::prelude::*;

fn run(mitigation: bool) -> (u64, u64, u64, bool) {
    // The evaluation platform: 4×4 mesh, 4 cores/router, 4 VCs × 4 slots,
    // SECDED links with switch-to-switch retransmission.
    let cfg = if mitigation {
        SimConfig::paper()
    } else {
        SimConfig::paper_unprotected()
    };
    let mut sim = Simulator::new(cfg);

    // The attacker compromises the eastward link out of router 0 with a
    // trojan hunting every packet addressed to router 1.
    let link = sim
        .mesh()
        .link_out(NodeId(0), noc_types::Direction::East)
        .expect("mesh link");
    let trojan = TaspHt::new(TaspConfig::new(TargetSpec::dest(1)));
    let healthy = noc_sim::fault::LinkFaults::healthy(0);
    let faults = std::mem::replace(sim.link_faults_mut(link), healthy);
    *sim.link_faults_mut(link) = faults.with_trojan(trojan);

    // ... and throws the kill switch.
    sim.arm_trojans(true);

    // Uniform random traffic, 600 cycles of injection, then drain.
    let mut traffic =
        SyntheticTraffic::new(Mesh::paper(), Pattern::UniformRandom, 0.02, 42).until(600);
    let drained = sim.run_to_quiescence(20_000, &mut traffic);
    let s = sim.stats();
    (
        s.injected_packets,
        s.delivered_packets,
        s.retransmissions,
        drained,
    )
}

fn main() {
    println!("TASP denial-of-service attack on a 64-core NoC\n");

    let (inj, del, retx, drained) = run(false);
    println!("without mitigation:");
    println!("  injected {inj} packets, delivered {del}, {retx} retransmissions");
    println!("  network drained: {drained}  ← the targeted flow is starved forever\n");

    let (inj, del, retx, drained) = run(true);
    println!("with threat detector + s2s L-Ob:");
    println!("  injected {inj} packets, delivered {del}, {retx} retransmissions");
    println!("  network drained: {drained}  ← obfuscated retries slip past the trojan");
}
