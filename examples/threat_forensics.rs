//! Threat-detector forensics: how the router distinguishes transient,
//! permanent, and trojan-injected faults from the evidence stream — fault
//! recurrence, syndrome drift, BIST results, and obfuscation response.
//!
//! Run: `cargo run --release --example threat_forensics`

use htnoc::ecc::{flip_bits, Secded};
use htnoc::mitigation::{Bist, DetectorConfig, FaultClass, LinkUnderTest, ThreatDetector};
use htnoc::prelude::*;

fn main() {
    println!("How the threat source detector tells fault classes apart\n");

    // --- Case 1: a transient upset ------------------------------------
    let mut det = ThreatDetector::new(DetectorConfig::default());
    let key = (noc_types::PacketId(1), 0u8);
    let cw = Secded::encode(0xDEAD_BEEF);
    let hit = Secded::decode(flip_bits(cw, 0b11 << 20));
    det.on_flit(key, &hit, None);
    let clean = Secded::decode(cw);
    det.on_flit(key, &clean, None);
    println!(
        "one fault, then clean retransmission  → {:?}",
        det.classify(&key)
    );

    // --- Case 2: a stuck-at wire ---------------------------------------
    let mut det = ThreatDetector::new(DetectorConfig::default());
    let key = (noc_types::PacketId(2), 0u8);
    // The same two wires corrupt every traversal: identical syndromes.
    for _ in 0..3 {
        let bad = Secded::decode(flip_bits(cw, (1 << 9) | (1 << 33)));
        let verdict = det.on_flit(key, &bad, None);
        if verdict.run_bist {
            // BIST scans the physical wires out-of-band and finds them.
            struct Stuck;
            impl LinkUnderTest for Stuck {
                fn transmit(&mut self, cw: htnoc::ecc::Codeword) -> htnoc::ecc::Codeword {
                    htnoc::ecc::Codeword(cw.0 | (1 << 9))
                }
            }
            let report = Bist::scan(&mut Stuck);
            det.on_bist_result(report.passed());
            println!(
                "recurring identical syndrome, BIST finds stuck wires {:?} → {:?}",
                report.stuck_wires,
                det.classify(&key)
            );
        }
    }

    // --- Case 3: a TASP trojan -----------------------------------------
    let mut det = ThreatDetector::new(DetectorConfig::default());
    let key = (noc_types::PacketId(3), 0u8);
    let mut trojan = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)));
    trojan.set_kill_switch(true);
    let word = Header {
        src: NodeId(0),
        dest: NodeId(9),
        vc: VcId(0),
        mem_addr: 0,
        thread: 0,
        len: 1,
    }
    .pack();
    // The trojan corrupts the same flit at *shifting* positions...
    for cycle in 0..2 {
        let mask = trojan.snoop(cycle, word, true).expect("target sighted");
        let bad = Secded::decode(flip_bits(Secded::encode(word), mask));
        det.on_flit(key, &bad, None);
    }
    // ...BIST sees nothing (patterns are not the trojan's target)...
    struct TrojanLink(TaspHt);
    impl LinkUnderTest for TrojanLink {
        fn transmit(&mut self, cw: htnoc::ecc::Codeword) -> htnoc::ecc::Codeword {
            match self.0.snoop(0, (cw.0 >> 1) as u64, false) {
                Some(mask) => htnoc::ecc::Codeword(cw.0 ^ mask),
                None => cw,
            }
        }
    }
    let report = Bist::scan(&mut TrojanLink(trojan));
    det.on_bist_result(report.passed());
    println!(
        "recurring shifting syndromes, BIST passes ({}) → {:?}",
        report.passed(),
        det.classify(&key)
    );
    // ...and the obfuscated retransmission crosses cleanly, confirming a
    // data-dependent trigger.
    let verdict = det.on_flit(key, &Secded::decode(Secded::encode(!word)), Some((0, 1)));
    println!(
        "obfuscated retry crosses cleanly (action {:?}) → {:?}",
        verdict.action,
        det.classify(&key)
    );
    assert_eq!(det.classify(&key), FaultClass::HardwareTrojan);
}
