//! Watch a single TASP trojan deadlock most of a 64-core chip.
//!
//! Reproduces the dynamics of the paper's Fig. 11: the Blackscholes
//! workload warms the network for 1500 cycles, the attacker throws the
//! kill switch, and within a few hundred cycles back-pressure from one
//! compromised link has blocked ports on most routers and choked the
//! injection queues chip-wide.
//!
//! Run: `cargo run --release --example dos_attack`

use htnoc::prelude::*;

fn main() {
    let app = AppSpec::blackscholes();
    let mesh = Mesh::paper();

    // The attacker studies the traffic (Fig. 1) and picks the hottest
    // link — the column link funnelling the upper mesh into the primary.
    let mut model = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
    let infected = select_infected(&mesh, &shares, 1.0, None)
        .into_iter()
        .take(1)
        .collect::<Vec<_>>();
    let (src, dir) = mesh.link_source(infected[0]);
    println!(
        "attacker plants one TASP on link {:?} ({:?} out of router {:?}), targeting dest {:?}\n",
        infected[0], dir, src, app.primary
    );

    let mut sc = Scenario::paper_default(app, Strategy::Unprotected).with_infected(infected);
    sc.warmup = 1500;
    sc.inject_until = 3000;
    sc.max_cycles = 3000;
    sc.snapshot_interval = 10;
    let result = run_scenario(&sc);

    println!("t(post-arm)  inj-queue flits  routers ≥1 port blocked  routers >50% cores dead");
    for s in result
        .stats
        .snapshots
        .iter()
        .filter(|s| s.cycle >= 1400 && s.cycle % 150 == 0)
    {
        let t = s.cycle as i64 - 1500;
        println!(
            "{t:>11}  {:>15}  {:>23}  {:>23}",
            s.injection_util, s.routers_blocked_port, s.routers_half_cores_full
        );
    }
    // Where the damage sits: per-router injection backlog at the end,
    // rendered as a heat map (the infected funnel glows).
    println!("\nfinal injection-backlog heat map (router grid, y=3 on top):");
    let mesh2 = Mesh::paper();
    let mut sim = sc.build_sim();
    let mut traffic = sc.build_traffic(&mesh2);
    sim.run(sc.warmup, traffic.as_mut());
    sim.arm_trojans(true);
    while sim.cycle() < sc.max_cycles {
        sim.step(traffic.as_mut());
    }
    let backlog: Vec<f64> = (0..16)
        .map(|r| {
            (0..4)
                .map(|c| {
                    (0..4)
                        .map(|v| sim.injection_queue_len(r * 4 + c, v as u8) as f64)
                        .sum::<f64>()
                })
                .sum()
        })
        .collect();
    let peak = backlog.iter().cloned().fold(0.0f64, f64::max);
    print!("{}", htnoc::core::viz::router_grid(&mesh2, &backlog, peak));

    let worst_blocked = result
        .stats
        .snapshots
        .iter()
        .map(|s| s.routers_blocked_port)
        .max()
        .unwrap_or(0);
    let worst_dead = result
        .stats
        .snapshots
        .iter()
        .map(|s| s.routers_half_cores_full)
        .max()
        .unwrap_or(0);
    println!(
        "\none trojan, one link: {}/16 routers with a blocked port, {}/16 routers \
         with most injection ports dead",
        worst_blocked, worst_dead
    );
    println!("(paper: 68% of routers within 50–100 cycles, 81% of injection ports by 1500)");
}
