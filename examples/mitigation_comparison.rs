//! Compare every defence strategy on the same attacked workload:
//! no protection, Fort-NoCs-style e2e obfuscation, SurfNoC-style TDM,
//! Ariadne-style rerouting, and the paper's threat detector + s2s L-Ob.
//!
//! Run: `cargo run --release --example mitigation_comparison`

use htnoc::prelude::*;

fn main() {
    let app = AppSpec::blackscholes();
    let mesh = Mesh::paper();
    let mut model = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
    let infected: Vec<LinkId> = select_infected(&mesh, &shares, 0.10, Some(app.primary));
    println!(
        "workload: {} | {} infected links | trojan target: dest {:?}\n",
        app.name,
        infected.len(),
        app.primary
    );

    println!(
        "{:<22} {:>9} {:>10} {:>13} {:>12} {:>8}",
        "strategy", "delivered", "injected", "avg latency", "retransmits", "drained"
    );
    for (name, strategy) in [
        ("unprotected", Strategy::Unprotected),
        ("e2e obfuscation", Strategy::E2eObfuscation),
        ("TDM (2 domains)", Strategy::Tdm { domains: 2 }),
        ("reroute (Ariadne)", Strategy::Reroute),
        ("s2s L-Ob (proposed)", Strategy::S2sLob),
    ] {
        let mut sc = Scenario::paper_default(app.clone(), strategy).with_infected(infected.clone());
        sc.warmup = 300;
        sc.inject_until = 1200;
        sc.max_cycles = 20_000;
        sc.snapshot_interval = 100;
        let r = run_scenario(&sc);
        println!(
            "{:<22} {:>9} {:>10} {:>13.1} {:>12} {:>8}",
            name,
            r.stats.delivered_packets,
            r.stats.injected_packets,
            r.stats.avg_latency(),
            r.stats.retransmissions,
            r.drained
        );
    }
    println!(
        "\nOnly the proposed s2s L-Ob keeps using the infected links AND finishes\n\
         the workload; rerouting finishes but pays detour hops; TDM bounds the\n\
         blast radius but the attacked domain still stalls; e2e obfuscation\n\
         cannot hide the header fields the trojan keys on."
    );
}
