/root/repo/target/debug/deps/stress-9efe87cab61efcb3.d: tests/stress.rs

/root/repo/target/debug/deps/stress-9efe87cab61efcb3: tests/stress.rs

tests/stress.rs:
