/root/repo/target/debug/deps/fig2_fault_latency-939239c2b1cd5acb.d: crates/bench/src/bin/fig2_fault_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_fault_latency-939239c2b1cd5acb.rmeta: crates/bench/src/bin/fig2_fault_latency.rs Cargo.toml

crates/bench/src/bin/fig2_fault_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
