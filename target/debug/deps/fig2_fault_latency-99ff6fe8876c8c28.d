/root/repo/target/debug/deps/fig2_fault_latency-99ff6fe8876c8c28.d: crates/bench/src/bin/fig2_fault_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_fault_latency-99ff6fe8876c8c28.rmeta: crates/bench/src/bin/fig2_fault_latency.rs Cargo.toml

crates/bench/src/bin/fig2_fault_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
