/root/repo/target/debug/deps/invariants-c29f6bf38ecd7d95.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-c29f6bf38ecd7d95: tests/invariants.rs

tests/invariants.rs:
