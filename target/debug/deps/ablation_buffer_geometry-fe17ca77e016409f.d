/root/repo/target/debug/deps/ablation_buffer_geometry-fe17ca77e016409f.d: crates/bench/src/bin/ablation_buffer_geometry.rs

/root/repo/target/debug/deps/ablation_buffer_geometry-fe17ca77e016409f: crates/bench/src/bin/ablation_buffer_geometry.rs

crates/bench/src/bin/ablation_buffer_geometry.rs:
