/root/repo/target/debug/deps/noc_mitigation-bded88646d25a22a.d: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

/root/repo/target/debug/deps/libnoc_mitigation-bded88646d25a22a.rlib: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

/root/repo/target/debug/deps/libnoc_mitigation-bded88646d25a22a.rmeta: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

crates/mitigation/src/lib.rs:
crates/mitigation/src/bist.rs:
crates/mitigation/src/detector.rs:
crates/mitigation/src/lob.rs:
