/root/repo/target/debug/deps/retx_props-3b806c89afe4c650.d: crates/noc/tests/retx_props.rs Cargo.toml

/root/repo/target/debug/deps/libretx_props-3b806c89afe4c650.rmeta: crates/noc/tests/retx_props.rs Cargo.toml

crates/noc/tests/retx_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
