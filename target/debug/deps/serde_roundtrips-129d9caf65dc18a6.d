/root/repo/target/debug/deps/serde_roundtrips-129d9caf65dc18a6.d: tests/serde_roundtrips.rs

/root/repo/target/debug/deps/serde_roundtrips-129d9caf65dc18a6: tests/serde_roundtrips.rs

tests/serde_roundtrips.rs:
