/root/repo/target/debug/deps/fig11_backpressure-9f82dcbf2472bea6.d: crates/bench/src/bin/fig11_backpressure.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_backpressure-9f82dcbf2472bea6.rmeta: crates/bench/src/bin/fig11_backpressure.rs Cargo.toml

crates/bench/src/bin/fig11_backpressure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
