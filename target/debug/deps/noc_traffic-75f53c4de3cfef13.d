/root/repo/target/debug/deps/noc_traffic-75f53c4de3cfef13.d: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libnoc_traffic-75f53c4de3cfef13.rlib: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libnoc_traffic-75f53c4de3cfef13.rmeta: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/app.rs:
crates/traffic/src/flood.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:
