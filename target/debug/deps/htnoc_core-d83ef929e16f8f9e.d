/root/repo/target/debug/deps/htnoc_core-d83ef929e16f8f9e.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs

/root/repo/target/debug/deps/htnoc_core-d83ef929e16f8f9e: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/e2e.rs:
crates/core/src/experiment.rs:
crates/core/src/infection.rs:
crates/core/src/report.rs:
crates/core/src/reroute.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
crates/core/src/viz.rs:
