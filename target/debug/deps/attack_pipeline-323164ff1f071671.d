/root/repo/target/debug/deps/attack_pipeline-323164ff1f071671.d: tests/attack_pipeline.rs

/root/repo/target/debug/deps/attack_pipeline-323164ff1f071671: tests/attack_pipeline.rs

tests/attack_pipeline.rs:
