/root/repo/target/debug/deps/noc_power-bec8ffa8c6b6613f.d: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

/root/repo/target/debug/deps/libnoc_power-bec8ffa8c6b6613f.rlib: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

/root/repo/target/debug/deps/libnoc_power-bec8ffa8c6b6613f.rmeta: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

crates/power/src/lib.rs:
crates/power/src/cells.rs:
crates/power/src/component.rs:
crates/power/src/mitigation.rs:
crates/power/src/noc.rs:
crates/power/src/router.rs:
crates/power/src/side_channel.rs:
crates/power/src/tasp.rs:
