/root/repo/target/debug/deps/ablation_retx_scheme-f0b59a0e0624e813.d: crates/bench/src/bin/ablation_retx_scheme.rs

/root/repo/target/debug/deps/ablation_retx_scheme-f0b59a0e0624e813: crates/bench/src/bin/ablation_retx_scheme.rs

crates/bench/src/bin/ablation_retx_scheme.rs:
