/root/repo/target/debug/deps/fig8_power_pies-575f19c02dd9aef1.d: crates/bench/src/bin/fig8_power_pies.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_power_pies-575f19c02dd9aef1.rmeta: crates/bench/src/bin/fig8_power_pies.rs Cargo.toml

crates/bench/src/bin/fig8_power_pies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
