/root/repo/target/debug/deps/htnoc-918b4d7bea777043.d: src/bin/htnoc.rs

/root/repo/target/debug/deps/htnoc-918b4d7bea777043: src/bin/htnoc.rs

src/bin/htnoc.rs:
