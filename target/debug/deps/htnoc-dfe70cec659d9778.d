/root/repo/target/debug/deps/htnoc-dfe70cec659d9778.d: src/bin/htnoc.rs Cargo.toml

/root/repo/target/debug/deps/libhtnoc-dfe70cec659d9778.rmeta: src/bin/htnoc.rs Cargo.toml

src/bin/htnoc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
