/root/repo/target/debug/deps/fig10_speedup-521ead1a7ed2a92d.d: crates/bench/src/bin/fig10_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_speedup-521ead1a7ed2a92d.rmeta: crates/bench/src/bin/fig10_speedup.rs Cargo.toml

crates/bench/src/bin/fig10_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
