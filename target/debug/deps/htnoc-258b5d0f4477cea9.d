/root/repo/target/debug/deps/htnoc-258b5d0f4477cea9.d: src/lib.rs

/root/repo/target/debug/deps/htnoc-258b5d0f4477cea9: src/lib.rs

src/lib.rs:
