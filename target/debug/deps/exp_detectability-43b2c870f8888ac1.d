/root/repo/target/debug/deps/exp_detectability-43b2c870f8888ac1.d: crates/bench/src/bin/exp_detectability.rs

/root/repo/target/debug/deps/exp_detectability-43b2c870f8888ac1: crates/bench/src/bin/exp_detectability.rs

crates/bench/src/bin/exp_detectability.rs:
