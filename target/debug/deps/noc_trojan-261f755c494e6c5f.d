/root/repo/target/debug/deps/noc_trojan-261f755c494e6c5f.d: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

/root/repo/target/debug/deps/noc_trojan-261f755c494e6c5f: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

crates/trojan/src/lib.rs:
crates/trojan/src/detection.rs:
crates/trojan/src/payload.rs:
crates/trojan/src/target.rs:
crates/trojan/src/tasp.rs:
