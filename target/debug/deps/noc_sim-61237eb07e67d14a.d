/root/repo/target/debug/deps/noc_sim-61237eb07e67d14a.d: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/config.rs crates/noc/src/error.rs crates/noc/src/fault.rs crates/noc/src/input.rs crates/noc/src/invariants.rs crates/noc/src/link.rs crates/noc/src/message.rs crates/noc/src/output.rs crates/noc/src/router.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_sim-61237eb07e67d14a.rmeta: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/config.rs crates/noc/src/error.rs crates/noc/src/fault.rs crates/noc/src/input.rs crates/noc/src/invariants.rs crates/noc/src/link.rs crates/noc/src/message.rs crates/noc/src/output.rs crates/noc/src/router.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/watchdog.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/arbiter.rs:
crates/noc/src/config.rs:
crates/noc/src/error.rs:
crates/noc/src/fault.rs:
crates/noc/src/input.rs:
crates/noc/src/invariants.rs:
crates/noc/src/link.rs:
crates/noc/src/message.rs:
crates/noc/src/output.rs:
crates/noc/src/router.rs:
crates/noc/src/routing.rs:
crates/noc/src/sim.rs:
crates/noc/src/stats.rs:
crates/noc/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
