/root/repo/target/debug/deps/noc_types-dde4354a94fc21be.d: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

/root/repo/target/debug/deps/libnoc_types-dde4354a94fc21be.rlib: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

/root/repo/target/debug/deps/libnoc_types-dde4354a94fc21be.rmeta: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

crates/types/src/lib.rs:
crates/types/src/flit.rs:
crates/types/src/geometry.rs:
crates/types/src/header.rs:
crates/types/src/ids.rs:
crates/types/src/packet.rs:
