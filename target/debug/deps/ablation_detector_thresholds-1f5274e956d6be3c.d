/root/repo/target/debug/deps/ablation_detector_thresholds-1f5274e956d6be3c.d: crates/bench/src/bin/ablation_detector_thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_detector_thresholds-1f5274e956d6be3c.rmeta: crates/bench/src/bin/ablation_detector_thresholds.rs Cargo.toml

crates/bench/src/bin/ablation_detector_thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
