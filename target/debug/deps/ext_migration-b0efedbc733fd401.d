/root/repo/target/debug/deps/ext_migration-b0efedbc733fd401.d: crates/bench/src/bin/ext_migration.rs Cargo.toml

/root/repo/target/debug/deps/libext_migration-b0efedbc733fd401.rmeta: crates/bench/src/bin/ext_migration.rs Cargo.toml

crates/bench/src/bin/ext_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
