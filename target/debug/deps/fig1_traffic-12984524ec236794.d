/root/repo/target/debug/deps/fig1_traffic-12984524ec236794.d: crates/bench/src/bin/fig1_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_traffic-12984524ec236794.rmeta: crates/bench/src/bin/fig1_traffic.rs Cargo.toml

crates/bench/src/bin/fig1_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
