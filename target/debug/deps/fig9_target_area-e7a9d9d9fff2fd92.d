/root/repo/target/debug/deps/fig9_target_area-e7a9d9d9fff2fd92.d: crates/bench/src/bin/fig9_target_area.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_target_area-e7a9d9d9fff2fd92.rmeta: crates/bench/src/bin/fig9_target_area.rs Cargo.toml

crates/bench/src/bin/fig9_target_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
