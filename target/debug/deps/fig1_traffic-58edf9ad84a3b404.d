/root/repo/target/debug/deps/fig1_traffic-58edf9ad84a3b404.d: crates/bench/src/bin/fig1_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_traffic-58edf9ad84a3b404.rmeta: crates/bench/src/bin/fig1_traffic.rs Cargo.toml

crates/bench/src/bin/fig1_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
