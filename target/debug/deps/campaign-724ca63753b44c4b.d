/root/repo/target/debug/deps/campaign-724ca63753b44c4b.d: crates/core/src/bin/campaign.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign-724ca63753b44c4b.rmeta: crates/core/src/bin/campaign.rs Cargo.toml

crates/core/src/bin/campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
