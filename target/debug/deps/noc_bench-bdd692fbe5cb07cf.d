/root/repo/target/debug/deps/noc_bench-bdd692fbe5cb07cf.d: crates/bench/src/lib.rs crates/bench/src/fig1.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig2.rs crates/bench/src/flood.rs crates/bench/src/migration.rs crates/bench/src/power_tables.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/noc_bench-bdd692fbe5cb07cf: crates/bench/src/lib.rs crates/bench/src/fig1.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig2.rs crates/bench/src/flood.rs crates/bench/src/migration.rs crates/bench/src/power_tables.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig2.rs:
crates/bench/src/flood.rs:
crates/bench/src/migration.rs:
crates/bench/src/power_tables.rs:
crates/bench/src/table.rs:
