/root/repo/target/debug/deps/noc_bench-df4116fd001d18a0.d: crates/bench/src/lib.rs crates/bench/src/fig1.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig2.rs crates/bench/src/flood.rs crates/bench/src/migration.rs crates/bench/src/power_tables.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_bench-df4116fd001d18a0.rmeta: crates/bench/src/lib.rs crates/bench/src/fig1.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig2.rs crates/bench/src/flood.rs crates/bench/src/migration.rs crates/bench/src/power_tables.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig2.rs:
crates/bench/src/flood.rs:
crates/bench/src/migration.rs:
crates/bench/src/power_tables.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
