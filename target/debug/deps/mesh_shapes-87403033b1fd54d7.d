/root/repo/target/debug/deps/mesh_shapes-87403033b1fd54d7.d: tests/mesh_shapes.rs

/root/repo/target/debug/deps/mesh_shapes-87403033b1fd54d7: tests/mesh_shapes.rs

tests/mesh_shapes.rs:
