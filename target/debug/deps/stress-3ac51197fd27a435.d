/root/repo/target/debug/deps/stress-3ac51197fd27a435.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-3ac51197fd27a435.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
