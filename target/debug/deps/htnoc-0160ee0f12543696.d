/root/repo/target/debug/deps/htnoc-0160ee0f12543696.d: src/bin/htnoc.rs Cargo.toml

/root/repo/target/debug/deps/libhtnoc-0160ee0f12543696.rmeta: src/bin/htnoc.rs Cargo.toml

src/bin/htnoc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
