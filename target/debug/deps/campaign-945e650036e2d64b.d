/root/repo/target/debug/deps/campaign-945e650036e2d64b.d: crates/core/src/bin/campaign.rs

/root/repo/target/debug/deps/campaign-945e650036e2d64b: crates/core/src/bin/campaign.rs

crates/core/src/bin/campaign.rs:
