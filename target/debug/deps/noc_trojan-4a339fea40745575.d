/root/repo/target/debug/deps/noc_trojan-4a339fea40745575.d: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_trojan-4a339fea40745575.rmeta: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs Cargo.toml

crates/trojan/src/lib.rs:
crates/trojan/src/detection.rs:
crates/trojan/src/payload.rs:
crates/trojan/src/target.rs:
crates/trojan/src/tasp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
