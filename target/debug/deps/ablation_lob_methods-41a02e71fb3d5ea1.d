/root/repo/target/debug/deps/ablation_lob_methods-41a02e71fb3d5ea1.d: crates/bench/src/bin/ablation_lob_methods.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lob_methods-41a02e71fb3d5ea1.rmeta: crates/bench/src/bin/ablation_lob_methods.rs Cargo.toml

crates/bench/src/bin/ablation_lob_methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
