/root/repo/target/debug/deps/table2_mitigation_overhead-0e4493b82e4e87b2.d: crates/bench/src/bin/table2_mitigation_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_mitigation_overhead-0e4493b82e4e87b2.rmeta: crates/bench/src/bin/table2_mitigation_overhead.rs Cargo.toml

crates/bench/src/bin/table2_mitigation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
