/root/repo/target/debug/deps/fig9_target_area-3125dd199f24c809.d: crates/bench/src/bin/fig9_target_area.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_target_area-3125dd199f24c809.rmeta: crates/bench/src/bin/fig9_target_area.rs Cargo.toml

crates/bench/src/bin/fig9_target_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
