/root/repo/target/debug/deps/fig1_traffic-c0fb26d3f87e97a7.d: crates/bench/src/bin/fig1_traffic.rs

/root/repo/target/debug/deps/fig1_traffic-c0fb26d3f87e97a7: crates/bench/src/bin/fig1_traffic.rs

crates/bench/src/bin/fig1_traffic.rs:
