/root/repo/target/debug/deps/ablation_payload_fsm-e3707d3752137c3a.d: crates/bench/src/bin/ablation_payload_fsm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_payload_fsm-e3707d3752137c3a.rmeta: crates/bench/src/bin/ablation_payload_fsm.rs Cargo.toml

crates/bench/src/bin/ablation_payload_fsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
