/root/repo/target/debug/deps/exp_flood_routing-f7ea84d2a9c52614.d: crates/bench/src/bin/exp_flood_routing.rs Cargo.toml

/root/repo/target/debug/deps/libexp_flood_routing-f7ea84d2a9c52614.rmeta: crates/bench/src/bin/exp_flood_routing.rs Cargo.toml

crates/bench/src/bin/exp_flood_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
