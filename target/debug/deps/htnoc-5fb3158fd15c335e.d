/root/repo/target/debug/deps/htnoc-5fb3158fd15c335e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtnoc-5fb3158fd15c335e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
