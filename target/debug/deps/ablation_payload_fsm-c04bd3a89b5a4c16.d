/root/repo/target/debug/deps/ablation_payload_fsm-c04bd3a89b5a4c16.d: crates/bench/src/bin/ablation_payload_fsm.rs

/root/repo/target/debug/deps/ablation_payload_fsm-c04bd3a89b5a4c16: crates/bench/src/bin/ablation_payload_fsm.rs

crates/bench/src/bin/ablation_payload_fsm.rs:
