/root/repo/target/debug/deps/noc_power-95e8a63ee8825cfc.d: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_power-95e8a63ee8825cfc.rmeta: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/cells.rs:
crates/power/src/component.rs:
crates/power/src/mitigation.rs:
crates/power/src/noc.rs:
crates/power/src/router.rs:
crates/power/src/side_channel.rs:
crates/power/src/tasp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
