/root/repo/target/debug/deps/fig11_backpressure-65d5ce386e062f00.d: crates/bench/src/bin/fig11_backpressure.rs

/root/repo/target/debug/deps/fig11_backpressure-65d5ce386e062f00: crates/bench/src/bin/fig11_backpressure.rs

crates/bench/src/bin/fig11_backpressure.rs:
