/root/repo/target/debug/deps/ablation_lob_methods-e5d2d08042bb96c4.d: crates/bench/src/bin/ablation_lob_methods.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lob_methods-e5d2d08042bb96c4.rmeta: crates/bench/src/bin/ablation_lob_methods.rs Cargo.toml

crates/bench/src/bin/ablation_lob_methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
