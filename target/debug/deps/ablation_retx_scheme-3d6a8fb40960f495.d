/root/repo/target/debug/deps/ablation_retx_scheme-3d6a8fb40960f495.d: crates/bench/src/bin/ablation_retx_scheme.rs Cargo.toml

/root/repo/target/debug/deps/libablation_retx_scheme-3d6a8fb40960f495.rmeta: crates/bench/src/bin/ablation_retx_scheme.rs Cargo.toml

crates/bench/src/bin/ablation_retx_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
