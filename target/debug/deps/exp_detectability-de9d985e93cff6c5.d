/root/repo/target/debug/deps/exp_detectability-de9d985e93cff6c5.d: crates/bench/src/bin/exp_detectability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_detectability-de9d985e93cff6c5.rmeta: crates/bench/src/bin/exp_detectability.rs Cargo.toml

crates/bench/src/bin/exp_detectability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
