/root/repo/target/debug/deps/serde_roundtrips-46ea99bd2569c1d1.d: tests/serde_roundtrips.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrips-46ea99bd2569c1d1.rmeta: tests/serde_roundtrips.rs Cargo.toml

tests/serde_roundtrips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
