/root/repo/target/debug/deps/ablation_buffer_geometry-863aea80cf02209e.d: crates/bench/src/bin/ablation_buffer_geometry.rs Cargo.toml

/root/repo/target/debug/deps/libablation_buffer_geometry-863aea80cf02209e.rmeta: crates/bench/src/bin/ablation_buffer_geometry.rs Cargo.toml

crates/bench/src/bin/ablation_buffer_geometry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
