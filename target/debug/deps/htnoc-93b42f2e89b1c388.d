/root/repo/target/debug/deps/htnoc-93b42f2e89b1c388.d: src/bin/htnoc.rs

/root/repo/target/debug/deps/htnoc-93b42f2e89b1c388: src/bin/htnoc.rs

src/bin/htnoc.rs:
