/root/repo/target/debug/deps/packet_trace-a0dbf9ac793a808c.d: tests/packet_trace.rs

/root/repo/target/debug/deps/packet_trace-a0dbf9ac793a808c: tests/packet_trace.rs

tests/packet_trace.rs:
