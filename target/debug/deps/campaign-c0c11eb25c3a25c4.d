/root/repo/target/debug/deps/campaign-c0c11eb25c3a25c4.d: crates/core/src/bin/campaign.rs

/root/repo/target/debug/deps/campaign-c0c11eb25c3a25c4: crates/core/src/bin/campaign.rs

crates/core/src/bin/campaign.rs:
