/root/repo/target/debug/deps/htnoc-6b910fe4872e4185.d: src/lib.rs

/root/repo/target/debug/deps/libhtnoc-6b910fe4872e4185.rlib: src/lib.rs

/root/repo/target/debug/deps/libhtnoc-6b910fe4872e4185.rmeta: src/lib.rs

src/lib.rs:
