/root/repo/target/debug/deps/ablation_detector_thresholds-26ff14f28e420766.d: crates/bench/src/bin/ablation_detector_thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_detector_thresholds-26ff14f28e420766.rmeta: crates/bench/src/bin/ablation_detector_thresholds.rs Cargo.toml

crates/bench/src/bin/ablation_detector_thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
