/root/repo/target/debug/deps/exp_multi_trojan-8f373906369582c3.d: crates/bench/src/bin/exp_multi_trojan.rs Cargo.toml

/root/repo/target/debug/deps/libexp_multi_trojan-8f373906369582c3.rmeta: crates/bench/src/bin/exp_multi_trojan.rs Cargo.toml

crates/bench/src/bin/exp_multi_trojan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
