/root/repo/target/debug/deps/noc_mitigation-c17a7b9536680f8b.d: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

/root/repo/target/debug/deps/noc_mitigation-c17a7b9536680f8b: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

crates/mitigation/src/lib.rs:
crates/mitigation/src/bist.rs:
crates/mitigation/src/detector.rs:
crates/mitigation/src/lob.rs:
