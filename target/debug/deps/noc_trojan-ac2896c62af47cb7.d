/root/repo/target/debug/deps/noc_trojan-ac2896c62af47cb7.d: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

/root/repo/target/debug/deps/libnoc_trojan-ac2896c62af47cb7.rlib: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

/root/repo/target/debug/deps/libnoc_trojan-ac2896c62af47cb7.rmeta: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

crates/trojan/src/lib.rs:
crates/trojan/src/detection.rs:
crates/trojan/src/payload.rs:
crates/trojan/src/target.rs:
crates/trojan/src/tasp.rs:
