/root/repo/target/debug/deps/table2_mitigation_overhead-2afa6ada61eeec44.d: crates/bench/src/bin/table2_mitigation_overhead.rs

/root/repo/target/debug/deps/table2_mitigation_overhead-2afa6ada61eeec44: crates/bench/src/bin/table2_mitigation_overhead.rs

crates/bench/src/bin/table2_mitigation_overhead.rs:
