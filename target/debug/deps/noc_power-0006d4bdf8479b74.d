/root/repo/target/debug/deps/noc_power-0006d4bdf8479b74.d: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

/root/repo/target/debug/deps/noc_power-0006d4bdf8479b74: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

crates/power/src/lib.rs:
crates/power/src/cells.rs:
crates/power/src/component.rs:
crates/power/src/mitigation.rs:
crates/power/src/noc.rs:
crates/power/src/router.rs:
crates/power/src/side_channel.rs:
crates/power/src/tasp.rs:
