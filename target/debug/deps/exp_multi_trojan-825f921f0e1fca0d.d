/root/repo/target/debug/deps/exp_multi_trojan-825f921f0e1fca0d.d: crates/bench/src/bin/exp_multi_trojan.rs

/root/repo/target/debug/deps/exp_multi_trojan-825f921f0e1fca0d: crates/bench/src/bin/exp_multi_trojan.rs

crates/bench/src/bin/exp_multi_trojan.rs:
