/root/repo/target/debug/deps/htnoc_core-9d537f537eb06052.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/libhtnoc_core-9d537f537eb06052.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/e2e.rs:
crates/core/src/experiment.rs:
crates/core/src/infection.rs:
crates/core/src/report.rs:
crates/core/src/reroute.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
crates/core/src/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
