/root/repo/target/debug/deps/fig7_walkthrough-119442dbec91a388.d: tests/fig7_walkthrough.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_walkthrough-119442dbec91a388.rmeta: tests/fig7_walkthrough.rs Cargo.toml

tests/fig7_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
