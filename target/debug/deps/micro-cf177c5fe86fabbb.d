/root/repo/target/debug/deps/micro-cf177c5fe86fabbb.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-cf177c5fe86fabbb.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
