/root/repo/target/debug/deps/attack_pipeline-1400b2d458c2d936.d: tests/attack_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libattack_pipeline-1400b2d458c2d936.rmeta: tests/attack_pipeline.rs Cargo.toml

tests/attack_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
