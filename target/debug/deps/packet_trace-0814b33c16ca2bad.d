/root/repo/target/debug/deps/packet_trace-0814b33c16ca2bad.d: tests/packet_trace.rs Cargo.toml

/root/repo/target/debug/deps/libpacket_trace-0814b33c16ca2bad.rmeta: tests/packet_trace.rs Cargo.toml

tests/packet_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
