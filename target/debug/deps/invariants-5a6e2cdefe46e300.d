/root/repo/target/debug/deps/invariants-5a6e2cdefe46e300.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-5a6e2cdefe46e300.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
