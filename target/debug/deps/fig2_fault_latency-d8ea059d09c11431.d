/root/repo/target/debug/deps/fig2_fault_latency-d8ea059d09c11431.d: crates/bench/src/bin/fig2_fault_latency.rs

/root/repo/target/debug/deps/fig2_fault_latency-d8ea059d09c11431: crates/bench/src/bin/fig2_fault_latency.rs

crates/bench/src/bin/fig2_fault_latency.rs:
