/root/repo/target/debug/deps/noc_traffic-9d0231a2e69298ff.d: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/noc_traffic-9d0231a2e69298ff: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/app.rs:
crates/traffic/src/flood.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:
