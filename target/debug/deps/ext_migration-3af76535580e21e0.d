/root/repo/target/debug/deps/ext_migration-3af76535580e21e0.d: crates/bench/src/bin/ext_migration.rs

/root/repo/target/debug/deps/ext_migration-3af76535580e21e0: crates/bench/src/bin/ext_migration.rs

crates/bench/src/bin/ext_migration.rs:
