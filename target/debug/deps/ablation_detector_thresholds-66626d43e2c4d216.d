/root/repo/target/debug/deps/ablation_detector_thresholds-66626d43e2c4d216.d: crates/bench/src/bin/ablation_detector_thresholds.rs

/root/repo/target/debug/deps/ablation_detector_thresholds-66626d43e2c4d216: crates/bench/src/bin/ablation_detector_thresholds.rs

crates/bench/src/bin/ablation_detector_thresholds.rs:
