/root/repo/target/debug/deps/retx_props-924005ba40428c39.d: crates/noc/tests/retx_props.rs

/root/repo/target/debug/deps/retx_props-924005ba40428c39: crates/noc/tests/retx_props.rs

crates/noc/tests/retx_props.rs:
