/root/repo/target/debug/deps/table1_tasp_overhead-a4f641455e338650.d: crates/bench/src/bin/table1_tasp_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_tasp_overhead-a4f641455e338650.rmeta: crates/bench/src/bin/table1_tasp_overhead.rs Cargo.toml

crates/bench/src/bin/table1_tasp_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
