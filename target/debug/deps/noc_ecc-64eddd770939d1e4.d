/root/repo/target/debug/deps/noc_ecc-64eddd770939d1e4.d: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_ecc-64eddd770939d1e4.rmeta: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs Cargo.toml

crates/ecc/src/lib.rs:
crates/ecc/src/codeword.rs:
crates/ecc/src/secded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
