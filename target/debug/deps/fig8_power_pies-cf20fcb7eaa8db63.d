/root/repo/target/debug/deps/fig8_power_pies-cf20fcb7eaa8db63.d: crates/bench/src/bin/fig8_power_pies.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_power_pies-cf20fcb7eaa8db63.rmeta: crates/bench/src/bin/fig8_power_pies.rs Cargo.toml

crates/bench/src/bin/fig8_power_pies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
