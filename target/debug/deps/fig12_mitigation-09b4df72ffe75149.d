/root/repo/target/debug/deps/fig12_mitigation-09b4df72ffe75149.d: crates/bench/src/bin/fig12_mitigation.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_mitigation-09b4df72ffe75149.rmeta: crates/bench/src/bin/fig12_mitigation.rs Cargo.toml

crates/bench/src/bin/fig12_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
