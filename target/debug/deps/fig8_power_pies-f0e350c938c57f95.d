/root/repo/target/debug/deps/fig8_power_pies-f0e350c938c57f95.d: crates/bench/src/bin/fig8_power_pies.rs

/root/repo/target/debug/deps/fig8_power_pies-f0e350c938c57f95: crates/bench/src/bin/fig8_power_pies.rs

crates/bench/src/bin/fig8_power_pies.rs:
