/root/repo/target/debug/deps/fig12_mitigation-47b50c5f986c5df0.d: crates/bench/src/bin/fig12_mitigation.rs

/root/repo/target/debug/deps/fig12_mitigation-47b50c5f986c5df0: crates/bench/src/bin/fig12_mitigation.rs

crates/bench/src/bin/fig12_mitigation.rs:
