/root/repo/target/debug/deps/noc_types-90da286b573adbe3.d: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_types-90da286b573adbe3.rmeta: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/flit.rs:
crates/types/src/geometry.rs:
crates/types/src/header.rs:
crates/types/src/ids.rs:
crates/types/src/packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
