/root/repo/target/debug/deps/mesh_shapes-ba3ba96d4ef71616.d: tests/mesh_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libmesh_shapes-ba3ba96d4ef71616.rmeta: tests/mesh_shapes.rs Cargo.toml

tests/mesh_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
