/root/repo/target/debug/deps/noc_ecc-a5513d1130a7ee88.d: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

/root/repo/target/debug/deps/noc_ecc-a5513d1130a7ee88: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

crates/ecc/src/lib.rs:
crates/ecc/src/codeword.rs:
crates/ecc/src/secded.rs:
