/root/repo/target/debug/deps/campaign-ca20b0d7506f32f1.d: crates/core/src/bin/campaign.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign-ca20b0d7506f32f1.rmeta: crates/core/src/bin/campaign.rs Cargo.toml

crates/core/src/bin/campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
