/root/repo/target/debug/deps/noc_mitigation-12497d97b72193be.d: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_mitigation-12497d97b72193be.rmeta: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs Cargo.toml

crates/mitigation/src/lib.rs:
crates/mitigation/src/bist.rs:
crates/mitigation/src/detector.rs:
crates/mitigation/src/lob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
