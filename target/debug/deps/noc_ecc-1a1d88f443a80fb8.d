/root/repo/target/debug/deps/noc_ecc-1a1d88f443a80fb8.d: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

/root/repo/target/debug/deps/libnoc_ecc-1a1d88f443a80fb8.rlib: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

/root/repo/target/debug/deps/libnoc_ecc-1a1d88f443a80fb8.rmeta: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

crates/ecc/src/lib.rs:
crates/ecc/src/codeword.rs:
crates/ecc/src/secded.rs:
