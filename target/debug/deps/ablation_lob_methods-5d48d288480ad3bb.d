/root/repo/target/debug/deps/ablation_lob_methods-5d48d288480ad3bb.d: crates/bench/src/bin/ablation_lob_methods.rs

/root/repo/target/debug/deps/ablation_lob_methods-5d48d288480ad3bb: crates/bench/src/bin/ablation_lob_methods.rs

crates/bench/src/bin/ablation_lob_methods.rs:
