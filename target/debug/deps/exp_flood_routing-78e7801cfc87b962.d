/root/repo/target/debug/deps/exp_flood_routing-78e7801cfc87b962.d: crates/bench/src/bin/exp_flood_routing.rs

/root/repo/target/debug/deps/exp_flood_routing-78e7801cfc87b962: crates/bench/src/bin/exp_flood_routing.rs

crates/bench/src/bin/exp_flood_routing.rs:
