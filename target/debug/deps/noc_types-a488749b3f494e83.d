/root/repo/target/debug/deps/noc_types-a488749b3f494e83.d: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

/root/repo/target/debug/deps/noc_types-a488749b3f494e83: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

crates/types/src/lib.rs:
crates/types/src/flit.rs:
crates/types/src/geometry.rs:
crates/types/src/header.rs:
crates/types/src/ids.rs:
crates/types/src/packet.rs:
