/root/repo/target/debug/deps/ablation_retx_scheme-07ee3ad3c6c45d34.d: crates/bench/src/bin/ablation_retx_scheme.rs Cargo.toml

/root/repo/target/debug/deps/libablation_retx_scheme-07ee3ad3c6c45d34.rmeta: crates/bench/src/bin/ablation_retx_scheme.rs Cargo.toml

crates/bench/src/bin/ablation_retx_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
