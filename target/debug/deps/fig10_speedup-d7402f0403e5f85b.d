/root/repo/target/debug/deps/fig10_speedup-d7402f0403e5f85b.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/fig10_speedup-d7402f0403e5f85b: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
