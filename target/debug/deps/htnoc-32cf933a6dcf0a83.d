/root/repo/target/debug/deps/htnoc-32cf933a6dcf0a83.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtnoc-32cf933a6dcf0a83.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
