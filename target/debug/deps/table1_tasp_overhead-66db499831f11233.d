/root/repo/target/debug/deps/table1_tasp_overhead-66db499831f11233.d: crates/bench/src/bin/table1_tasp_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_tasp_overhead-66db499831f11233.rmeta: crates/bench/src/bin/table1_tasp_overhead.rs Cargo.toml

crates/bench/src/bin/table1_tasp_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
