/root/repo/target/debug/deps/fig9_target_area-cc1b6bf872e8c27b.d: crates/bench/src/bin/fig9_target_area.rs

/root/repo/target/debug/deps/fig9_target_area-cc1b6bf872e8c27b: crates/bench/src/bin/fig9_target_area.rs

crates/bench/src/bin/fig9_target_area.rs:
