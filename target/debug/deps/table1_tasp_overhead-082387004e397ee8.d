/root/repo/target/debug/deps/table1_tasp_overhead-082387004e397ee8.d: crates/bench/src/bin/table1_tasp_overhead.rs

/root/repo/target/debug/deps/table1_tasp_overhead-082387004e397ee8: crates/bench/src/bin/table1_tasp_overhead.rs

crates/bench/src/bin/table1_tasp_overhead.rs:
