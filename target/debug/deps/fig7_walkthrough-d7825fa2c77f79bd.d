/root/repo/target/debug/deps/fig7_walkthrough-d7825fa2c77f79bd.d: tests/fig7_walkthrough.rs

/root/repo/target/debug/deps/fig7_walkthrough-d7825fa2c77f79bd: tests/fig7_walkthrough.rs

tests/fig7_walkthrough.rs:
