/root/repo/target/debug/deps/noc_traffic-7a15be5b8d68566d.d: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_traffic-7a15be5b8d68566d.rmeta: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/app.rs:
crates/traffic/src/flood.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
