/root/repo/target/debug/deps/exp_flood_routing-4b4e83cffad4a924.d: crates/bench/src/bin/exp_flood_routing.rs Cargo.toml

/root/repo/target/debug/deps/libexp_flood_routing-4b4e83cffad4a924.rmeta: crates/bench/src/bin/exp_flood_routing.rs Cargo.toml

crates/bench/src/bin/exp_flood_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
