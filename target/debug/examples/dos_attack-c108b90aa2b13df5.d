/root/repo/target/debug/examples/dos_attack-c108b90aa2b13df5.d: examples/dos_attack.rs Cargo.toml

/root/repo/target/debug/examples/libdos_attack-c108b90aa2b13df5.rmeta: examples/dos_attack.rs Cargo.toml

examples/dos_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
