/root/repo/target/debug/examples/replay_comparison-cf91108b236c8e49.d: examples/replay_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libreplay_comparison-cf91108b236c8e49.rmeta: examples/replay_comparison.rs Cargo.toml

examples/replay_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
