/root/repo/target/debug/examples/dos_attack-fb170169bbd38612.d: examples/dos_attack.rs

/root/repo/target/debug/examples/dos_attack-fb170169bbd38612: examples/dos_attack.rs

examples/dos_attack.rs:
