/root/repo/target/debug/examples/mitigation_comparison-ede7bd62a33ab8bd.d: examples/mitigation_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libmitigation_comparison-ede7bd62a33ab8bd.rmeta: examples/mitigation_comparison.rs Cargo.toml

examples/mitigation_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
