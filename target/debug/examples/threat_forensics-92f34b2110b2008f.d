/root/repo/target/debug/examples/threat_forensics-92f34b2110b2008f.d: examples/threat_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libthreat_forensics-92f34b2110b2008f.rmeta: examples/threat_forensics.rs Cargo.toml

examples/threat_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
