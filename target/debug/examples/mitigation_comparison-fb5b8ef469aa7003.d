/root/repo/target/debug/examples/mitigation_comparison-fb5b8ef469aa7003.d: examples/mitigation_comparison.rs

/root/repo/target/debug/examples/mitigation_comparison-fb5b8ef469aa7003: examples/mitigation_comparison.rs

examples/mitigation_comparison.rs:
