/root/repo/target/debug/examples/threat_forensics-8c6686257ac9402b.d: examples/threat_forensics.rs

/root/repo/target/debug/examples/threat_forensics-8c6686257ac9402b: examples/threat_forensics.rs

examples/threat_forensics.rs:
