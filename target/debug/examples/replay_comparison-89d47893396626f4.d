/root/repo/target/debug/examples/replay_comparison-89d47893396626f4.d: examples/replay_comparison.rs

/root/repo/target/debug/examples/replay_comparison-89d47893396626f4: examples/replay_comparison.rs

examples/replay_comparison.rs:
