/root/repo/target/debug/examples/quickstart-200d5e083001b2df.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-200d5e083001b2df: examples/quickstart.rs

examples/quickstart.rs:
