/root/repo/target/release/examples/quickstart-ab816549d964b415.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ab816549d964b415: examples/quickstart.rs

examples/quickstart.rs:
