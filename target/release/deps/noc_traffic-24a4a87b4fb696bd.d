/root/repo/target/release/deps/noc_traffic-24a4a87b4fb696bd.d: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/release/deps/libnoc_traffic-24a4a87b4fb696bd.rlib: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/release/deps/libnoc_traffic-24a4a87b4fb696bd.rmeta: crates/traffic/src/lib.rs crates/traffic/src/app.rs crates/traffic/src/flood.rs crates/traffic/src/matrix.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/app.rs:
crates/traffic/src/flood.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:
