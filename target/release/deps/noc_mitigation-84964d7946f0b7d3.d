/root/repo/target/release/deps/noc_mitigation-84964d7946f0b7d3.d: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

/root/repo/target/release/deps/libnoc_mitigation-84964d7946f0b7d3.rlib: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

/root/repo/target/release/deps/libnoc_mitigation-84964d7946f0b7d3.rmeta: crates/mitigation/src/lib.rs crates/mitigation/src/bist.rs crates/mitigation/src/detector.rs crates/mitigation/src/lob.rs

crates/mitigation/src/lib.rs:
crates/mitigation/src/bist.rs:
crates/mitigation/src/detector.rs:
crates/mitigation/src/lob.rs:
