/root/repo/target/release/deps/htnoc-448691c0f1cb538e.d: src/bin/htnoc.rs

/root/repo/target/release/deps/htnoc-448691c0f1cb538e: src/bin/htnoc.rs

src/bin/htnoc.rs:
