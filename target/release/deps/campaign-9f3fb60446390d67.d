/root/repo/target/release/deps/campaign-9f3fb60446390d67.d: crates/core/src/bin/campaign.rs

/root/repo/target/release/deps/campaign-9f3fb60446390d67: crates/core/src/bin/campaign.rs

crates/core/src/bin/campaign.rs:
