/root/repo/target/release/deps/noc_ecc-74dc6d465d619de6.d: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

/root/repo/target/release/deps/libnoc_ecc-74dc6d465d619de6.rlib: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

/root/repo/target/release/deps/libnoc_ecc-74dc6d465d619de6.rmeta: crates/ecc/src/lib.rs crates/ecc/src/codeword.rs crates/ecc/src/secded.rs

crates/ecc/src/lib.rs:
crates/ecc/src/codeword.rs:
crates/ecc/src/secded.rs:
