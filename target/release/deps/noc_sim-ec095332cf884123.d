/root/repo/target/release/deps/noc_sim-ec095332cf884123.d: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/config.rs crates/noc/src/error.rs crates/noc/src/fault.rs crates/noc/src/input.rs crates/noc/src/invariants.rs crates/noc/src/link.rs crates/noc/src/message.rs crates/noc/src/output.rs crates/noc/src/router.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/watchdog.rs

/root/repo/target/release/deps/libnoc_sim-ec095332cf884123.rlib: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/config.rs crates/noc/src/error.rs crates/noc/src/fault.rs crates/noc/src/input.rs crates/noc/src/invariants.rs crates/noc/src/link.rs crates/noc/src/message.rs crates/noc/src/output.rs crates/noc/src/router.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/watchdog.rs

/root/repo/target/release/deps/libnoc_sim-ec095332cf884123.rmeta: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/config.rs crates/noc/src/error.rs crates/noc/src/fault.rs crates/noc/src/input.rs crates/noc/src/invariants.rs crates/noc/src/link.rs crates/noc/src/message.rs crates/noc/src/output.rs crates/noc/src/router.rs crates/noc/src/routing.rs crates/noc/src/sim.rs crates/noc/src/stats.rs crates/noc/src/watchdog.rs

crates/noc/src/lib.rs:
crates/noc/src/arbiter.rs:
crates/noc/src/config.rs:
crates/noc/src/error.rs:
crates/noc/src/fault.rs:
crates/noc/src/input.rs:
crates/noc/src/invariants.rs:
crates/noc/src/link.rs:
crates/noc/src/message.rs:
crates/noc/src/output.rs:
crates/noc/src/router.rs:
crates/noc/src/routing.rs:
crates/noc/src/sim.rs:
crates/noc/src/stats.rs:
crates/noc/src/watchdog.rs:
