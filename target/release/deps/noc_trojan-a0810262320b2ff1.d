/root/repo/target/release/deps/noc_trojan-a0810262320b2ff1.d: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

/root/repo/target/release/deps/libnoc_trojan-a0810262320b2ff1.rlib: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

/root/repo/target/release/deps/libnoc_trojan-a0810262320b2ff1.rmeta: crates/trojan/src/lib.rs crates/trojan/src/detection.rs crates/trojan/src/payload.rs crates/trojan/src/target.rs crates/trojan/src/tasp.rs

crates/trojan/src/lib.rs:
crates/trojan/src/detection.rs:
crates/trojan/src/payload.rs:
crates/trojan/src/target.rs:
crates/trojan/src/tasp.rs:
