/root/repo/target/release/deps/htnoc-22904ff0d3779544.d: src/lib.rs

/root/repo/target/release/deps/libhtnoc-22904ff0d3779544.rlib: src/lib.rs

/root/repo/target/release/deps/libhtnoc-22904ff0d3779544.rmeta: src/lib.rs

src/lib.rs:
