/root/repo/target/release/deps/noc_power-c479894195f2ded8.d: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

/root/repo/target/release/deps/libnoc_power-c479894195f2ded8.rlib: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

/root/repo/target/release/deps/libnoc_power-c479894195f2ded8.rmeta: crates/power/src/lib.rs crates/power/src/cells.rs crates/power/src/component.rs crates/power/src/mitigation.rs crates/power/src/noc.rs crates/power/src/router.rs crates/power/src/side_channel.rs crates/power/src/tasp.rs

crates/power/src/lib.rs:
crates/power/src/cells.rs:
crates/power/src/component.rs:
crates/power/src/mitigation.rs:
crates/power/src/noc.rs:
crates/power/src/router.rs:
crates/power/src/side_channel.rs:
crates/power/src/tasp.rs:
