/root/repo/target/release/deps/campaign-c13d1146e6474ed6.d: crates/core/src/bin/campaign.rs

/root/repo/target/release/deps/campaign-c13d1146e6474ed6: crates/core/src/bin/campaign.rs

crates/core/src/bin/campaign.rs:
