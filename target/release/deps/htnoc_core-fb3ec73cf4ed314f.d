/root/repo/target/release/deps/htnoc_core-fb3ec73cf4ed314f.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libhtnoc_core-fb3ec73cf4ed314f.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs

/root/repo/target/release/deps/libhtnoc_core-fb3ec73cf4ed314f.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/e2e.rs crates/core/src/experiment.rs crates/core/src/infection.rs crates/core/src/report.rs crates/core/src/reroute.rs crates/core/src/scenario.rs crates/core/src/sweep.rs crates/core/src/viz.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/e2e.rs:
crates/core/src/experiment.rs:
crates/core/src/infection.rs:
crates/core/src/report.rs:
crates/core/src/reroute.rs:
crates/core/src/scenario.rs:
crates/core/src/sweep.rs:
crates/core/src/viz.rs:
