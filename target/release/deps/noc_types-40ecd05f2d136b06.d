/root/repo/target/release/deps/noc_types-40ecd05f2d136b06.d: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

/root/repo/target/release/deps/libnoc_types-40ecd05f2d136b06.rlib: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

/root/repo/target/release/deps/libnoc_types-40ecd05f2d136b06.rmeta: crates/types/src/lib.rs crates/types/src/flit.rs crates/types/src/geometry.rs crates/types/src/header.rs crates/types/src/ids.rs crates/types/src/packet.rs

crates/types/src/lib.rs:
crates/types/src/flit.rs:
crates/types/src/geometry.rs:
crates/types/src/header.rs:
crates/types/src/ids.rs:
crates/types/src/packet.rs:
