//! `htnoc` — command-line front end for the simulator.
//!
//! ```text
//! htnoc attack   [--app NAME] [--strategy NAME] [--infected PCT] [--cycles N] [--seed N]
//! htnoc clean    [--app NAME] [--cycles N] [--seed N]
//! htnoc power
//! htnoc list
//! ```

use htnoc::prelude::*;
use std::collections::HashMap;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let val = args.get(i + 1).cloned().unwrap_or_default();
            out.insert(key.to_string(), val);
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn app_by_name(name: &str) -> Option<AppSpec> {
    AppSpec::all().into_iter().find(|a| a.name == name)
}

fn strategy_by_name(name: &str) -> Option<Strategy> {
    Some(match name {
        "unprotected" => Strategy::Unprotected,
        "e2e" => Strategy::E2eObfuscation,
        "tdm" => Strategy::Tdm { domains: 2 },
        "reroute" => Strategy::Reroute,
        "lob" | "s2s" | "s2s-lob" => Strategy::S2sLob,
        _ => return None,
    })
}

fn report(r: &htnoc::core::RunResult) {
    if std::env::args().any(|a| a == "--json") {
        println!("{}", htnoc::core::report::run_result_json("run", r));
        return;
    }
    println!("cycles simulated     {}", r.cycles);
    println!("packets injected     {}", r.stats.injected_packets);
    println!("packets delivered    {}", r.stats.delivered_packets);
    println!("flits delivered      {}", r.stats.delivered_flits);
    println!("avg packet latency   {:.1} cycles", r.stats.avg_latency());
    println!("max packet latency   {} cycles", r.stats.latency_max);
    println!("retransmissions      {}", r.stats.retransmissions);
    println!("uncorrectable faults {}", r.stats.uncorrectable_faults);
    println!("BIST scans           {}", r.stats.bist_scans);
    println!(
        "workload finished    {}",
        if r.drained {
            "yes"
        } else {
            "NO (starved/deadlocked)"
        }
    );
    let obf = r
        .events
        .iter()
        .filter(|e| matches!(e, SimEvent::ObfuscationSucceeded { .. }))
        .count();
    if obf > 0 {
        println!("L-Ob clean crossings {obf}");
    }
}

fn cmd_attack(flags: &HashMap<String, String>) {
    let app = flags
        .get("app")
        .and_then(|n| app_by_name(n))
        .unwrap_or_else(AppSpec::blackscholes);
    let strategy = flags
        .get("strategy")
        .and_then(|n| strategy_by_name(n))
        .unwrap_or(Strategy::S2sLob);
    let pct: f64 = flags
        .get("infected")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0)
        / 100.0;
    let cycles: u64 = flags
        .get("cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(7);

    let mesh = Mesh::paper();
    let mut model = AppModel::new(app.clone(), mesh.clone(), seed);
    let shares = TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
    let infected = select_infected(&mesh, &shares, pct, Some(app.primary));
    println!(
        "workload {} | defence {:?} | {} infected links | {} injection cycles\n",
        app.name,
        strategy,
        infected.len(),
        cycles
    );
    let mut sc = Scenario::paper_default(app, strategy).with_infected(infected);
    sc.seed = seed;
    sc.warmup = 300;
    sc.inject_until = 300 + cycles;
    sc.max_cycles = (300 + cycles) * 10;
    sc.snapshot_interval = 50;
    report(&run_scenario(&sc));
}

fn cmd_clean(flags: &HashMap<String, String>) {
    let app = flags
        .get("app")
        .and_then(|n| app_by_name(n))
        .unwrap_or_else(AppSpec::blackscholes);
    let cycles: u64 = flags
        .get("cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    println!(
        "workload {} | no trojans | {} injection cycles\n",
        app.name, cycles
    );
    let mut sc = Scenario::paper_default(app, Strategy::Unprotected);
    sc.seed = seed;
    sc.warmup = 0;
    sc.inject_until = cycles;
    sc.max_cycles = cycles * 10;
    sc.snapshot_interval = 50;
    report(&run_scenario(&sc));
}

fn cmd_power() {
    let router = RouterPower::paper();
    let mit = MitigationPower::paper();
    let (area, power) = mit.overhead(&router);
    println!(
        "router: {:.0} µm², {:.1} mW dynamic",
        router.total().area_um2,
        router.total().dynamic_uw / 1000.0
    );
    println!(
        "mitigation: {:.0} µm² (+{:.1}%), {:.0} µW (+{:.1}%)",
        mit.total().area_um2,
        area * 100.0,
        mit.total().dynamic_uw,
        power * 100.0
    );
    println!("\nTASP variants (area µm² / dynamic µW / leakage nW):");
    for (kind, p) in TaspPower::new(noc_power::CellLibrary::tsmc40()).table1() {
        println!(
            "  {:<9} {:6.2} / {:7.3} / {:6.2}",
            kind.name(),
            p.area_um2,
            p.dynamic_uw,
            p.leakage_nw
        );
    }
}

fn cmd_list() {
    println!("applications: blackscholes facesim ferret fft");
    println!("strategies:   unprotected e2e tdm reroute lob");
    println!();
    println!("figure harnesses (cargo run --release -p noc-bench --bin <name>):");
    for b in [
        "fig1_traffic",
        "fig2_fault_latency",
        "fig8_power_pies",
        "fig9_target_area",
        "fig10_speedup",
        "fig11_backpressure",
        "fig12_mitigation",
        "table1_tasp_overhead",
        "table2_mitigation_overhead",
        "ablation_payload_fsm",
        "ablation_retx_scheme",
        "ablation_lob_methods",
        "ablation_detector_thresholds",
        "ablation_buffer_geometry",
        "exp_flood_routing",
        "exp_detectability",
        "exp_multi_trojan",
        "ext_migration",
    ] {
        println!("  {b}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args[1.min(args.len())..]);
    match args.first().map(String::as_str) {
        Some("attack") => cmd_attack(&flags),
        Some("clean") => cmd_clean(&flags),
        Some("power") => cmd_power(),
        Some("list") => cmd_list(),
        _ => {
            println!("htnoc — hardware-trojan-aware NoC simulator\n");
            println!("usage:");
            println!("  htnoc attack [--app NAME] [--strategy NAME] [--infected PCT] [--cycles N] [--seed N] [--json]");
            println!("  htnoc clean  [--app NAME] [--cycles N] [--seed N]");
            println!("  htnoc power");
            println!("  htnoc list");
        }
    }
}
