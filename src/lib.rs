//! `htnoc` — umbrella crate re-exporting the whole workspace.
//!
//! This is the crate downstream users depend on. It re-exports every
//! subsystem under a stable module path; the examples under `examples/` and
//! the integration tests under `tests/` exercise exactly this surface.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-reproduction index.

pub use htnoc_core as core;
pub use noc_ecc as ecc;
pub use noc_mitigation as mitigation;
pub use noc_power as power;
pub use noc_sim as sim;
pub use noc_traffic as traffic;
pub use noc_trojan as trojan;
pub use noc_types as types;

/// Convenience prelude pulling in the names almost every user needs.
pub mod prelude {
    pub use htnoc_core::prelude::*;
}
