//! The Fig. 7 walk-through as an integration test: transactions between
//! adjacent routers over a compromised link with the threat detector and
//! L-Ob modules engaged.
//!
//! The paper's steps:
//!  (a)–(c) a clean flit crosses and is ACKed;
//!  (d)–(e) the TASP is enabled and corrupts its target, ECC detects,
//!          retransmission is requested;
//!  (f)     a non-targeted flit passes unharmed;
//!  (g)     the retransmitted target is corrupted *again* — the detector
//!          flags a repeat offender and enables L-Ob;
//!  (h)–(i) the obfuscated retry crosses without triggering the trojan,
//!          is un-obfuscated for a 1–3 cycle penalty, and the method is
//!          logged for future flits.

use htnoc::prelude::*;
use htnoc::sim::message::SimEvent as Ev;
use htnoc::sim::sim::TrafficSource;
use noc_types::{Direction, PacketId};

struct Script {
    packets: Vec<Packet>,
}

impl TrafficSource for Script {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let mut i = 0;
        while i < self.packets.len() {
            if self.packets[i].created_at == cycle {
                out.push(self.packets.remove(i));
            } else {
                i += 1;
            }
        }
    }
    fn done(&self) -> bool {
        self.packets.is_empty()
    }
}

#[test]
fn fig7_walkthrough_on_a_compromised_link() {
    let mut sim = Simulator::new(SimConfig::paper());
    let mesh = sim.mesh().clone();
    let link = mesh.link_out(NodeId(0), Direction::East).unwrap();

    // The trojan hunts packets touching one memory page.
    let trojan = TaspHt::new(TaspConfig::new(TargetSpec::mem_range(
        0x5000_0000..=0x5000_FFFF,
    )));
    let faults = std::mem::replace(
        sim.link_faults_mut(link),
        htnoc::sim::fault::LinkFaults::healthy(0),
    );
    *sim.link_faults_mut(link) = faults.with_trojan(trojan);

    // Flit #1: not targeted, sent while the trojan is still dormant.
    // Flits #2 (targeted) and #3, #4 (bystanders) follow once it is armed.
    let mk = |id: u64, cycle: u64, mem: u32, vc: u8| {
        Packet::new(
            PacketId(id),
            NodeId(0),
            NodeId(1),
            VcId(vc),
            mem,
            0,
            1,
            cycle,
        )
    };
    let mut src = Script {
        packets: vec![
            mk(1, 0, 0x1111, 0),
            mk(2, 30, 0x5000_0042, 1), // the target
            mk(3, 32, 0x2222, 2),
            mk(4, 34, 0x3333, 3),
        ],
    };

    // Steps (a)–(c): flit #1 crosses cleanly before the kill switch.
    for _ in 0..25 {
        sim.step(&mut src);
    }
    assert_eq!(
        sim.stats().delivered_packets,
        1,
        "flit #1 ACKed and cleared"
    );
    assert_eq!(sim.stats().uncorrectable_faults, 0);

    // Step (d): the attacker enables TASP.
    sim.arm_trojans(true);

    // Steps (e)–(i) play out; run to quiescence.
    assert!(
        sim.run_to_quiescence(3000, &mut src),
        "all flits must arrive"
    );
    assert_eq!(sim.stats().delivered_packets, 4);

    // (e)+(g): the target was corrupted at least twice (initial + the
    // plain retransmission) before L-Ob engaged.
    assert!(
        sim.stats().uncorrectable_faults >= 2,
        "faults: {}",
        sim.stats().uncorrectable_faults
    );
    assert!(sim.stats().retransmissions >= 2);

    // (f): the bystanders never drew a fault — only packet #2's flits did.
    // (h)–(i): an obfuscation method crossed the compromised link cleanly
    // and was logged.
    let events = sim.drain_events();
    let obf_success: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Ev::ObfuscationSucceeded { link: l, plan, .. } if *l == link => Some(plan),
            _ => None,
        })
        .collect();
    assert!(
        !obf_success.is_empty(),
        "the obfuscated retry must cross cleanly"
    );
    // Delivery order/latency: the targeted packet paid the retransmission
    // and undo penalties; the bystanders arrived promptly.
    let delivery = |id: u64| {
        events
            .iter()
            .find_map(|e| match e {
                Ev::PacketDelivered {
                    packet,
                    injected_at,
                    delivered_at,
                    ..
                } if *packet == PacketId(id) => Some(delivered_at - injected_at),
                _ => None,
            })
            .expect("delivered")
    };
    let target_latency = delivery(2);
    let bystander_latency = delivery(3).max(delivery(4));
    assert!(
        target_latency > bystander_latency,
        "target {target_latency} vs bystander {bystander_latency}"
    );
    // …but only by retransmission rounds + the 1–3 cycle L-Ob penalty,
    // not by a rerouting detour.
    assert!(
        target_latency < bystander_latency + 40,
        "graceful degradation, not starvation: {target_latency}"
    );
}

#[test]
fn clean_link_never_invokes_lob() {
    let mut sim = Simulator::new(SimConfig::paper());
    let mut src = Script {
        packets: (0..8u64)
            .map(|i| {
                Packet::new(
                    PacketId(i),
                    NodeId(0),
                    NodeId(5),
                    VcId((i % 4) as u8),
                    0,
                    0,
                    2,
                    i * 5,
                )
            })
            .collect(),
    };
    assert!(sim.run_to_quiescence(2000, &mut src));
    assert!(sim
        .drain_events()
        .iter()
        .all(|e| !matches!(e, Ev::ObfuscationSucceeded { .. })));
}
