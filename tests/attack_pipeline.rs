//! Cross-crate integration: the full attack → detection → mitigation
//! pipeline, exercised through the public `htnoc` API.

use htnoc::prelude::*;
use noc_types::Direction;

fn infected_set(frac: f64) -> Vec<LinkId> {
    let mesh = Mesh::paper();
    let mut model = AppModel::new(AppSpec::blackscholes(), mesh.clone(), 5);
    let shares = TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
    select_infected(&mesh, &shares, frac, Some(AppSpec::blackscholes().primary))
}

fn short_scenario(strategy: Strategy, infected: Vec<LinkId>) -> Scenario {
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), strategy).with_infected(infected);
    sc.warmup = 200;
    sc.inject_until = 700;
    sc.max_cycles = 10_000;
    sc.snapshot_interval = 50;
    sc
}

#[test]
fn every_strategy_reaches_a_sound_terminal_state() {
    let infected = infected_set(0.10);
    for strategy in [
        Strategy::Unprotected,
        Strategy::E2eObfuscation,
        Strategy::Tdm { domains: 2 },
        Strategy::Reroute,
        Strategy::S2sLob,
    ] {
        let r = run_scenario(&short_scenario(strategy.clone(), infected.clone()));
        // Flit accounting is conserved in every terminal state.
        assert!(
            r.stats.delivered_packets <= r.stats.injected_packets,
            "{strategy:?}"
        );
        assert!(r.stats.delivered_flits <= r.stats.injected_flits);
        // Strategies that defeat or avoid the trojan drain completely.
        match strategy {
            Strategy::S2sLob | Strategy::Reroute => {
                assert!(r.drained, "{strategy:?} must finish the workload");
                assert_eq!(r.stats.delivered_packets, r.stats.injected_packets);
            }
            _ => {
                assert!(!r.drained, "{strategy:?} must stay starved");
            }
        }
    }
}

#[test]
fn detector_classifies_the_infected_link_as_trojan() {
    let infected = infected_set(0.05);
    let sc = short_scenario(Strategy::S2sLob, infected.clone());
    let r = run_scenario(&sc);
    assert!(r.drained);
    // The event stream contains a hardware-trojan classification for at
    // least one of the infected links (detection needs BIST to have run,
    // which needs a repeated identical syndrome — the payload FSM cycles
    // through few states, so repeats happen within the run).
    let classified: Vec<_> = r
        .events
        .iter()
        .filter_map(|e| match e {
            SimEvent::LinkClassified { link, class, .. } => Some((*link, *class)),
            _ => None,
        })
        .collect();
    assert!(
        classified
            .iter()
            .any(|(l, c)| infected.contains(l) && *c == FaultClass::HardwareTrojan),
        "classifications: {classified:?}"
    );
}

#[test]
fn trojan_on_every_link_is_still_mitigated() {
    // The paper's worst case (Fig. 8 right): TASP on all 48 links. With
    // mitigation every link learns its method; traffic keeps flowing.
    let mesh = Mesh::paper();
    let mut sim = Simulator::new(SimConfig::paper());
    for l in mesh.all_links() {
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(0)));
        let faults = std::mem::replace(
            sim.link_faults_mut(l),
            htnoc::sim::fault::LinkFaults::healthy(l.index() as u64),
        );
        *sim.link_faults_mut(l) = faults.with_trojan(ht);
    }
    sim.arm_trojans(true);
    let mut traffic =
        SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![NodeId(0)]), 0.01, 11).until(400);
    assert!(
        sim.run_to_quiescence(20_000, &mut traffic),
        "mitigation must survive full-fabric infection"
    );
    assert_eq!(sim.stats().delivered_packets, sim.stats().injected_packets);
}

#[test]
fn transients_and_trojans_coexist() {
    // Background transient noise must not confuse the trojan mitigation.
    let mut sim = Simulator::new(SimConfig::paper());
    let mesh = sim.mesh().clone();
    let link = mesh.link_out(NodeId(0), Direction::East).unwrap();
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(1)));
    let faults = std::mem::replace(
        sim.link_faults_mut(link),
        htnoc::sim::fault::LinkFaults::healthy(0),
    );
    *sim.link_faults_mut(link) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    for l in mesh.all_links() {
        sim.link_faults_mut(l).transient_bit_prob = 0.0002;
    }
    let mut traffic = SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.015, 3).until(500);
    assert!(sim.run_to_quiescence(30_000, &mut traffic));
    assert_eq!(sim.stats().delivered_packets, sim.stats().injected_packets);
    assert!(sim.stats().corrected_faults > 0, "transients were live");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let sc = short_scenario(Strategy::S2sLob, infected_set(0.10));
        let r = run_scenario(&sc);
        (
            r.stats.delivered_packets,
            r.stats.injected_packets,
            r.stats.retransmissions,
            r.stats.latency_sum,
            r.cycles,
        )
    };
    assert_eq!(run(), run(), "same seed ⇒ bit-identical outcome");
}
