//! Cross-crate property tests: invariants that must hold across the
//! ECC / trojan / mitigation composition and the simulator's accounting.

use htnoc::ecc::{flip_bits, Secded};
use htnoc::mitigation::LobPlan;
use htnoc::prelude::*;
use htnoc::sim::sim::TrafficSource;
use noc_types::{Direction, PacketId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The end-to-end wire pipeline: obfuscate → encode → (no fault) →
    /// decode → un-obfuscate recovers the original word for every ladder
    /// plan and key.
    #[test]
    fn wire_pipeline_roundtrips(word in any::<u64>(), key in any::<u64>(),
                                rung in 0usize..LobPlan::LADDER.len()) {
        let plan = LobPlan::LADDER[rung];
        let wire = plan.apply(word, key);
        let decoded = Secded::decode(Secded::encode(wire)).data().expect("clean");
        prop_assert_eq!(plan.undo(decoded, key), word);
    }

    /// A TASP injection on any codeword is always detected-but-uncorrectable
    /// (never silent corruption, never correctable).
    #[test]
    fn tasp_injection_always_detected(word in any::<u64>(), dest in 0u16..16) {
        let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(dest as u8)));
        ht.set_kill_switch(true);
        let hdr = Header {
            src: NodeId(0), dest: NodeId(dest), vc: VcId(0),
            mem_addr: 0, thread: 0, len: 1,
        };
        let _ = word;
        let wire = hdr.pack();
        let mask = ht.snoop(0, wire, true).expect("target match");
        let out = Secded::decode(flip_bits(Secded::encode(wire), mask));
        prop_assert!(out.needs_retransmission());
    }

    /// Every header-window ladder plan hides a dest-targeted header from
    /// the trojan's comparator (the L-Ob premise), except temporal-only
    /// reordering which leaves bits untouched by design.
    #[test]
    fn ladder_plans_hide_header_targets(src in 0u16..16, dest in 0u16..16,
                                        mem in any::<u32>(), key in any::<u64>()) {
        let hdr = Header {
            src: NodeId(src), dest: NodeId(dest), vc: VcId(0),
            mem_addr: mem, thread: 0, len: 1,
        };
        let spec = TargetSpec::flow(src as u8, dest as u8);
        let full_spec = TargetSpec {
            src: Some(noc_trojan::FieldMatch::Exact(src as u8)),
            dest: Some(noc_trojan::FieldMatch::Exact(dest as u8)),
            vc: Some(noc_trojan::FieldMatch::Exact(0)),
            mem: Some(noc_trojan::FieldMatch::Exact(mem)),
        };
        // The full-42-bit comparator is defeated by every bit-transforming
        // plan (a transformed word cannot match all 42 bits unless the
        // transform was the identity on them, which Invert/Scramble-with-
        // nonzero-key/Rotate-by-k≠0 never are for all fields at once).
        for plan in LobPlan::LADDER {
            if plan.method == htnoc::mitigation::ObfuscationMethod::Reorder {
                continue;
            }
            let k = if plan.method == htnoc::mitigation::ObfuscationMethod::Scramble
                && key & 0x03FF_FFFF_FFFF == 0
            {
                key | 1 // ensure the key actually flips header bits
            } else {
                key
            };
            let wire = plan.apply(hdr.pack(), k);
            prop_assert!(
                !full_spec.matches_wire(wire),
                "{plan:?} left the full header intact"
            );
        }
        let _ = spec;
    }

    /// Simulator flit accounting: delivered + resident + queued always
    /// equals injected, at every observation point.
    #[test]
    fn flit_accounting_balances(seed in 0u64..50, cut in 10u64..400) {
        struct Burst { left: Vec<Packet> }
        impl TrafficSource for Burst {
            fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
                let mut i = 0;
                while i < self.left.len() {
                    if self.left[i].created_at == cycle {
                        out.push(self.left.remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            fn done(&self) -> bool { self.left.is_empty() }
        }
        let mut sim = Simulator::new(SimConfig::paper());
        let packets = (0..20u64).map(|i| {
            Packet::new(
                PacketId(i),
                NodeId(((seed + i) % 16) as u16),
                NodeId(((seed * 7 + i * 3 + 1) % 16) as u16),
                VcId((i % 4) as u8),
                0, 0, 3, i,
            )
        }).filter(|p| p.src != p.dest).collect::<Vec<_>>();
        let n = packets.len() as u64;
        let mut src = Burst { left: packets };
        for _ in 0..cut {
            sim.step(&mut src);
        }
        let s = sim.stats();
        let in_flight = sim.resident_flits() as u64 + sim.queued_flits() as u64
            + src.left.iter().map(|p| p.len as u64).sum::<u64>();
        let counted = s.delivered_flits + in_flight;
        // During an ACK round-trip a flit is briefly visible both in the
        // upstream retransmission slot and the downstream buffer, so the
        // census may transiently exceed the injected count — by at most
        // one flit per link. It must never undercount.
        prop_assert!(counted >= n * 3, "lost flits: {} < {}", counted, n * 3);
        prop_assert!(
            counted <= n * 3 + 48,
            "over-count beyond the ACK window: {} > {}",
            counted,
            n * 3 + 48
        );
        // After a full drain the census is exact.
        let mut none = htnoc::sim::sim::NoTraffic;
        if sim.run_to_quiescence(10_000, &mut src) || {
            let _ = &mut none;
            false
        } {
            prop_assert_eq!(sim.stats().delivered_flits, n * 3);
            prop_assert_eq!(sim.resident_flits() + sim.queued_flits(), 0);
        }
    }
}

#[test]
fn every_single_bit_upset_on_any_link_is_invisible_to_software() {
    // SECDED corrects all single-bit transients in flight: a run with
    // 1-bit-per-crossing upsets delivers everything with zero NACKs only
    // if the upsets stay single-bit; here we force exactly one flip per
    // crossing via a stuck... actually: use low-probability transients and
    // assert corrected faults never became packet loss.
    let mut sim = Simulator::new(SimConfig::paper());
    let mesh = sim.mesh().clone();
    for l in mesh.all_links() {
        sim.link_faults_mut(l).transient_bit_prob = 0.0001;
    }
    let mut traffic = SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.02, 9).until(500);
    assert!(sim.run_to_quiescence(20_000, &mut traffic));
    let s = sim.stats();
    assert_eq!(s.delivered_packets, s.injected_packets, "no silent loss");
    assert!(s.corrected_faults > 0, "the fault layer was exercised");
}

#[test]
fn dead_link_rerouting_preserves_delivery_for_every_single_link() {
    // Kill each link in turn; up*/down* reroute must keep a small workload
    // fully deliverable (path diversity of the 4×4 mesh).
    let mesh = Mesh::paper();
    for li in [0u16, 7, 12, 23, 31, 40, 47] {
        let dead = vec![LinkId(li)];
        let tables = htnoc_core::reroute::routes_avoiding(&mesh, &dead)
            .expect("single dead link never disconnects");
        let mut sim = Simulator::new(SimConfig::paper());
        sim.set_routing(htnoc::sim::routing::Routing::Table(tables));
        sim.set_dead_links(dead);
        let mut traffic =
            SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.01, li as u64).until(200);
        assert!(
            sim.run_to_quiescence(20_000, &mut traffic),
            "link {li} reroute failed"
        );
        assert_eq!(sim.stats().delivered_packets, sim.stats().injected_packets);
    }
}

#[test]
fn xy_and_updown_agree_on_reachability() {
    let mesh = Mesh::paper();
    let t = htnoc::sim::routing::RouteTables::build_updown(&mesh, &[]).unwrap();
    for s in 0..16u16 {
        for d in 0..16u16 {
            if s == d {
                continue;
            }
            assert!(t.path_len(&mesh, NodeId(s), NodeId(d)).is_some());
        }
    }
    let _ = Direction::ALL; // silence unused import on some cfgs
}
