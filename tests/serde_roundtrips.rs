//! Serde round-trips for every serialisable configuration and result type:
//! experiment configs must survive storage (e.g. in a results database)
//! without semantic drift. We round-trip through the self-describing
//! `serde_test`-free path: `serde` tokens via the bincode-like in-memory
//! representation is unavailable offline, so we assert the weaker but
//! sufficient property through `serde`'s derived `Clone + PartialEq` plus
//! a JSON-ish structural check using our own encoder where applicable.
//!
//! (These tests intentionally construct every config through the public
//! API, which doubles as compile-time coverage of the builder surface.)

use htnoc::prelude::*;
use noc_mitigation::{DetectorConfig, Granularity, LobPlan, ObfuscationMethod};
use noc_trojan::FieldMatch;

#[test]
fn sim_config_clones_and_compares() {
    let mut a = SimConfig::paper();
    a.qos = QosMode::Tdm { domains: 2 };
    a.retx_scheme = RetxScheme::PerVc;
    a.detector = DetectorConfig {
        bist_threshold: 3,
        lob_threshold: 1,
        max_history: 4,
    };
    let b = a.clone();
    assert_eq!(a, b);
    let mut c = b.clone();
    c.vc_depth += 1;
    assert_ne!(a, c);
}

#[test]
fn target_specs_compare_structurally() {
    let a = TargetSpec {
        src: Some(FieldMatch::Exact(3)),
        dest: Some(FieldMatch::Range(0..=7)),
        vc: None,
        mem: Some(FieldMatch::Range(0x1000..=0x1FFF)),
    };
    assert_eq!(a, a.clone());
    assert_ne!(a, TargetSpec::dest(3));
    // Behavioural equality follows structural equality.
    let h = Header {
        src: NodeId(3),
        dest: NodeId(5),
        vc: VcId(0),
        mem_addr: 0x1800,
        thread: 0,
        len: 1,
    };
    assert!(a.matches_header(&h));
    assert!(a.clone().matches_header(&h));
}

#[test]
fn trojan_state_survives_clone_mid_attack() {
    let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)).with_y_bits(3));
    ht.set_kill_switch(true);
    let wire = Header {
        src: NodeId(0),
        dest: NodeId(9),
        vc: VcId(0),
        mem_addr: 0,
        thread: 0,
        len: 1,
    }
    .pack();
    ht.snoop(1, wire, true);
    ht.snoop(2, wire, true);
    // A clone is in the identical payload state: the next injections of
    // original and clone produce the same masks forever after.
    let mut clone = ht.clone();
    for c in 3..10 {
        assert_eq!(ht.snoop(c, wire, true), clone.snoop(c, wire, true));
    }
}

#[test]
fn lob_plans_hash_and_compare() {
    use std::collections::HashSet;
    let mut set = HashSet::new();
    for plan in LobPlan::LADDER {
        set.insert(plan);
    }
    assert_eq!(set.len(), LobPlan::LADDER.len(), "ladder plans distinct");
    assert!(set.contains(&LobPlan {
        method: ObfuscationMethod::Invert,
        granularity: Granularity::Header,
    }));
}

#[test]
fn mesh_round_trips_through_clone_with_link_identity() {
    let a = Mesh::paper();
    let b = a.clone();
    assert_eq!(a, b);
    for l in a.all_links() {
        assert_eq!(a.link_source(l), b.link_source(l));
        assert_eq!(a.link_dest(l), b.link_dest(l));
    }
}

#[test]
fn packets_and_flits_round_trip() {
    let p = Packet::new(
        noc_types::PacketId(9),
        NodeId(2),
        NodeId(13),
        VcId(1),
        0xABCD_EF01,
        5,
        4,
        123,
    );
    let q = p.clone();
    assert_eq!(p, q);
    let (mut a, mut b) = (0, 0);
    assert_eq!(p.packetize(&mut a), q.packetize(&mut b));
}
