//! Soak/stress testing: randomized configurations × traffic × faults,
//! with the NoCAlert-style invariant checker auditing every few cycles.
//! No configuration may panic, violate a protocol invariant, or lose a
//! flit.

use htnoc::prelude::*;
use htnoc::sim::fault::StuckWires;
use noc_types::Direction;

/// A deterministic pseudo-random u64 stream (no RNG state to drag around).
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(n);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stress_one(seed: u64) {
    let mesh = Mesh::paper();
    let mut cfg = SimConfig::paper();
    cfg.mitigation = mix(seed, 1).is_multiple_of(2);
    cfg.retx_scheme = if mix(seed, 2).is_multiple_of(2) {
        RetxScheme::Output
    } else {
        RetxScheme::PerVc
    };
    if mix(seed, 3).is_multiple_of(4) {
        cfg.qos = QosMode::Tdm { domains: 2 };
        cfg.retx_scheme = RetxScheme::PerVc;
    }
    cfg.snapshot_interval = 100;
    let mut sim = Simulator::new(cfg.clone());

    // Random fault cocktail: a trojan, a stuck wire, background transients.
    let trojan_link = LinkId((mix(seed, 4) % 48) as u16);
    let target = match mix(seed, 5) % 3 {
        0 => TargetSpec::dest((mix(seed, 6) % 16) as u8),
        1 => TargetSpec::src((mix(seed, 6) % 16) as u8),
        _ => TargetSpec::mem_range(0x1000_0000..=0x1FFF_FFFF),
    };
    let ht = TaspHt::new(TaspConfig::new(target));
    let faults = std::mem::replace(
        sim.link_faults_mut(trojan_link),
        htnoc::sim::fault::LinkFaults::healthy(seed),
    );
    *sim.link_faults_mut(trojan_link) = faults.with_trojan(ht);
    if mix(seed, 7).is_multiple_of(2) {
        sim.arm_trojans(true);
    }
    let stuck_link = LinkId((mix(seed, 8) % 48) as u16);
    if stuck_link != trojan_link && mix(seed, 9).is_multiple_of(3) {
        sim.link_faults_mut(stuck_link).stuck = StuckWires {
            stuck_one: 1 << (mix(seed, 10) % 72),
            stuck_zero: 0,
        };
    }
    for l in mesh.all_links() {
        sim.link_faults_mut(l).transient_bit_prob = 0.00005;
    }

    // Traffic: random pattern at a moderate rate, bounded window.
    let pattern = match mix(seed, 11) % 4 {
        0 => Pattern::UniformRandom,
        1 => Pattern::Transpose,
        2 => Pattern::BitComplement,
        _ => Pattern::Hotspot(vec![NodeId((mix(seed, 12) % 16) as u16)]),
    };
    let mut traffic = SyntheticTraffic::new(mesh, pattern, 0.015, seed).until(400);

    // Run with periodic invariant audits.
    for chunk in 0..30 {
        sim.run(50, &mut traffic);
        let violations = sim.check_invariants();
        assert!(
            violations.is_empty(),
            "seed {seed} chunk {chunk}: {violations:?}"
        );
        if traffic.done() && sim.is_quiescent() {
            break;
        }
    }
    // Accounting sanity at whatever terminal state we reached.
    let s = sim.stats();
    assert!(s.delivered_flits <= s.injected_flits, "seed {seed}");
    assert!(s.delivered_packets <= s.injected_packets, "seed {seed}");
}

#[test]
fn randomized_configurations_hold_invariants() {
    for seed in 0..24u64 {
        stress_one(seed);
    }
}

#[test]
fn invariants_hold_through_a_full_dos_collapse() {
    // The harshest state: a deadlocking network under an armed trojan with
    // no mitigation must still satisfy every structural invariant (the
    // attack starves progress; it must not corrupt state).
    let mesh = Mesh::paper();
    let mut cfg = SimConfig::paper_unprotected();
    cfg.snapshot_interval = 100;
    let mut sim = Simulator::new(cfg);
    let link = mesh.link_out(NodeId(4), Direction::South).unwrap();
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(0)));
    let faults = std::mem::replace(
        sim.link_faults_mut(link),
        htnoc::sim::fault::LinkFaults::healthy(0),
    );
    *sim.link_faults_mut(link) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mut traffic =
        SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![NodeId(0)]), 0.03, 5).until(1500);
    for _ in 0..30 {
        sim.run(50, &mut traffic);
        let violations = sim.check_invariants();
        assert!(violations.is_empty(), "{violations:?}");
    }
    assert!(!sim.is_quiescent(), "the DoS must be in force");
}
