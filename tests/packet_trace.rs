//! Forensic packet tracing: replay the exact journey of a trojan-targeted
//! packet and verify the attack → detection → obfuscation story appears in
//! the trace, event by event.

use htnoc::prelude::*;
use htnoc::sim::message::{TraceEvent, TraceOutcome};
use htnoc::sim::sim::TrafficSource;
use noc_types::{Direction, PacketId};

struct One(Option<Packet>);
impl TrafficSource for One {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        if cycle == 0 {
            out.extend(self.0.take());
        }
    }
    fn done(&self) -> bool {
        self.0.is_none()
    }
}

fn traced_sim(mitigation: bool, packet: PacketId) -> Simulator {
    let mut cfg = if mitigation {
        SimConfig::paper()
    } else {
        SimConfig::paper_unprotected()
    };
    cfg.trace_packet = Some(packet);
    let mut sim = Simulator::new(cfg);
    let link = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(1)));
    let faults = std::mem::replace(
        sim.link_faults_mut(link),
        htnoc::sim::fault::LinkFaults::healthy(0),
    );
    *sim.link_faults_mut(link) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    sim
}

#[test]
fn trace_shows_the_full_attack_and_mitigation_story() {
    let pid = PacketId(77);
    let mut sim = traced_sim(true, pid);
    let mut src = One(Some(Packet::new(
        pid,
        NodeId(0),
        NodeId(1),
        VcId(0),
        0,
        0,
        1,
        0,
    )));
    assert!(sim.run_to_quiescence(2000, &mut src));
    let trace = sim.trace();

    // Story: injected → launched plain → NACKed (trojan) → relaunched →
    // NACKed again → launched obfuscated → delivered clean → ejected.
    assert!(
        matches!(trace.first(), Some(TraceEvent::Injected { .. })),
        "{trace:#?}"
    );
    assert!(
        matches!(trace.last(), Some(TraceEvent::Ejected { .. })),
        "{trace:#?}"
    );
    let nacks = trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    outcome: TraceOutcome::Nacked { .. },
                    ..
                }
            )
        })
        .count();
    assert!(nacks >= 2, "the trojan hits the plain retries: {trace:#?}");
    // At least one launch carried an obfuscation plan...
    let obf_launch = trace.iter().any(|e| {
        matches!(
            e,
            TraceEvent::Launched {
                obfuscated: Some(_),
                ..
            }
        )
    });
    assert!(obf_launch, "{trace:#?}");
    // ...and the final crossing decoded clean.
    let last_delivery = trace
        .iter()
        .rev()
        .find_map(|e| match e {
            TraceEvent::Delivered { outcome, .. } => Some(*outcome),
            _ => None,
        })
        .expect("delivered at least once");
    assert_eq!(last_delivery, TraceOutcome::Clean);
    // Events are in nondecreasing cycle order.
    let cycles: Vec<u64> = trace
        .iter()
        .map(|e| match e {
            TraceEvent::Injected { cycle, .. }
            | TraceEvent::Launched { cycle, .. }
            | TraceEvent::Delivered { cycle, .. }
            | TraceEvent::Ejected { cycle, .. } => *cycle,
        })
        .collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn unprotected_trace_shows_endless_nacks_and_no_ejection() {
    let pid = PacketId(78);
    let mut sim = traced_sim(false, pid);
    let mut src = One(Some(Packet::new(
        pid,
        NodeId(0),
        NodeId(1),
        VcId(0),
        0,
        0,
        1,
        0,
    )));
    assert!(!sim.run_to_quiescence(600, &mut src), "must starve");
    let trace = sim.trace();
    assert!(
        !trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Ejected { .. })),
        "the victim never arrives"
    );
    let nacks = trace
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Delivered {
                    outcome: TraceOutcome::Nacked { .. },
                    ..
                }
            )
        })
        .count();
    assert!(nacks > 20, "NACK livelock expected, saw {nacks}");
    // No launch ever carried an obfuscation plan (mitigation off).
    assert!(trace.iter().all(|e| !matches!(
        e,
        TraceEvent::Launched {
            obfuscated: Some(_),
            ..
        }
    )));
}

#[test]
fn untraced_runs_record_nothing() {
    let mut cfg = SimConfig::paper();
    cfg.trace_packet = None;
    let mut sim = Simulator::new(cfg);
    let mut src = One(Some(Packet::new(
        PacketId(1),
        NodeId(0),
        NodeId(5),
        VcId(0),
        0,
        0,
        2,
        0,
    )));
    assert!(sim.run_to_quiescence(500, &mut src));
    assert!(sim.trace().is_empty());
}
