//! The simulator is parametric in mesh shape and concentration (within the
//! wire format's 16-router cap). These tests run full traffic + attack +
//! mitigation cycles on non-default shapes to pin the generality down.

use htnoc::prelude::*;
use htnoc::sim::sim::TrafficSource;
use noc_types::{Direction, PacketId};

fn config_for(mesh: Mesh) -> SimConfig {
    SimConfig {
        mesh,
        ..SimConfig::paper()
    }
}

struct Burst {
    left: Vec<Packet>,
}

impl TrafficSource for Burst {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let mut i = 0;
        while i < self.left.len() {
            if self.left[i].created_at == cycle {
                out.push(self.left.remove(i));
            } else {
                i += 1;
            }
        }
    }
    fn done(&self) -> bool {
        self.left.is_empty()
    }
}

fn all_pairs_burst(mesh: &Mesh, len: u8) -> Burst {
    let n = mesh.routers() as u16;
    let mut left = Vec::new();
    let mut id = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            left.push(Packet::new(
                PacketId(id),
                NodeId(s),
                NodeId(d),
                VcId((id % 4) as u8),
                0,
                (id % 2) as u8,
                len,
                id * 2,
            ));
            id += 1;
        }
    }
    Burst { left }
}

#[test]
fn every_mesh_shape_delivers_all_pairs() {
    for (w, h, c) in [(2u8, 2u8, 1u8), (4, 2, 2), (2, 4, 4), (3, 3, 2), (4, 4, 1)] {
        let mesh = Mesh::new(w, h, c);
        let mut sim = Simulator::new(config_for(mesh.clone()));
        let mut src = all_pairs_burst(&mesh, 3);
        let pairs = (mesh.routers() * (mesh.routers() - 1)) as u64;
        assert!(
            sim.run_to_quiescence(20_000, &mut src),
            "{w}x{h} c={c} did not drain"
        );
        assert_eq!(
            sim.stats().delivered_packets,
            pairs,
            "{w}x{h} c={c} lost packets"
        );
        assert!(sim.check_invariants().is_empty());
    }
}

#[test]
fn attack_and_mitigation_work_on_a_2x2_mesh() {
    let mesh = Mesh::new(2, 2, 2);
    let mut sim = Simulator::new(config_for(mesh.clone()));
    let link = mesh.link_out(NodeId(0), Direction::East).unwrap();
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(1)));
    let faults = std::mem::replace(
        sim.link_faults_mut(link),
        htnoc::sim::fault::LinkFaults::healthy(0),
    );
    *sim.link_faults_mut(link) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mut src = all_pairs_burst(&mesh, 2);
    assert!(sim.run_to_quiescence(5_000, &mut src), "L-Ob on 2x2");
    assert_eq!(sim.stats().delivered_packets, 12);
    assert!(sim.stats().uncorrectable_faults > 0, "trojan fired");
}

#[test]
fn updown_reroute_works_on_odd_shapes() {
    let mesh = Mesh::new(3, 3, 1);
    let dead = vec![mesh.link_out(NodeId(4), Direction::East).unwrap()];
    let tables = htnoc_core::reroute::routes_avoiding(&mesh, &dead).expect("routable");
    let mut sim = Simulator::new(config_for(mesh.clone()));
    sim.set_routing(htnoc::sim::routing::Routing::Table(tables));
    sim.set_dead_links(dead);
    let mut src = all_pairs_burst(&mesh, 2);
    assert!(sim.run_to_quiescence(10_000, &mut src));
    assert_eq!(sim.stats().delivered_packets, 72);
}

#[test]
fn odd_even_routing_delivers_on_rectangular_meshes() {
    for (w, h) in [(4u8, 2u8), (2, 4), (3, 3)] {
        let mesh = Mesh::new(w, h, 1);
        let mut sim = Simulator::new(config_for(mesh.clone()));
        sim.set_routing(htnoc::sim::routing::Routing::OddEven);
        let mut src = all_pairs_burst(&mesh, 2);
        assert!(
            sim.run_to_quiescence(10_000, &mut src),
            "odd-even on {w}x{h}"
        );
        assert_eq!(
            sim.stats().delivered_packets,
            (mesh.routers() * (mesh.routers() - 1)) as u64
        );
    }
}
