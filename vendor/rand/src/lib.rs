//! Offline shim for the `rand` crate.
//!
//! Implements exactly the subset of the `rand 0.8` API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, which is more than adequate for simulation workloads;
//! nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from an RNG (the shim's stand-in for
/// `distributions::Standard`).
pub trait SampleUniform: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's widening-multiply map (negligible bias is fine
                // here; upstream rand rejects, we don't need to).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of `T`.
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            Self {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Feeding
        /// them back through [`StdRng::from_state`] resumes the stream
        /// exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u8..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..5);
            assert!(w < 5);
            let x = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_bool_rates() {
        let mut r = StdRng::seed_from_u64(1);
        let mut heads = 0u32;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.25) {
                heads += 1;
            }
        }
        assert!((2000..3000).contains(&heads), "p=0.25 gave {heads}/10000");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
