//! Offline shim for the `criterion` crate.
//!
//! Keeps the source-level API (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros) but measures with a
//! plain wall-clock mean over a fixed iteration budget: good enough to
//! spot coarse regressions offline, not a statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group (the shim only uses the name as a report prefix).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `f` over an adaptively chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: run until ~50ms or 3 iterations.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_iters < 3 || calib_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed() / calib_iters as u32;
        // Measurement budget: ~250ms, at least 5 iterations.
        let target = (Duration::from_millis(250).as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = target.clamp(5, 2_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Measure with caller-supplied timing: `f` receives an iteration
    /// count and returns the total `Duration` to charge for it (real
    /// criterion's `iter_custom`). For benchmarks whose measured
    /// quantity is a sub-slice of the work driven — e.g. one engine
    /// phase's telemetry-clocked time across whole simulator steps —
    /// wall-clocking the drive loop would measure the wrong thing.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Size the measurement batch from a short calibration batch;
        // batch sizing tracks the (cheaper) reported duration, so the
        // driving cost can only make the batch smaller, never longer.
        let calib_iters = 3u64;
        let calib = f(calib_iters).max(Duration::from_nanos(1));
        let per_iter = calib / calib_iters as u32;
        let target = (Duration::from_millis(250).as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = target.clamp(5, 2_000_000);
        self.elapsed = f(iters);
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if mean >= 1e9 {
        (mean / 1e9, "s")
    } else if mean >= 1e6 {
        (mean / 1e6, "ms")
    } else if mean >= 1e3 {
        (mean / 1e3, "µs")
    } else {
        (mean, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn groups_accept_configuration_calls() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).measurement_time(Duration::from_millis(1));
        g.bench_function("x", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
