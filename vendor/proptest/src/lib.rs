//! Offline shim for the `proptest` crate.
//!
//! Provides the surface this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, [`any`], integer-range
//! strategies, and [`ProptestConfig::with_cases`].
//!
//! Semantics differences from upstream, by design:
//!
//! * **Deterministic**: case `i` of test `name` always sees the same
//!   inputs (seeded from a hash of the test name and `i`), so failures
//!   reproduce without a regression file.
//! * **No shrinking**: a failing case panics with the generated inputs
//!   printed; minimise by hand.
//! * Default case count is 64 (upstream: 256) to keep offline CI fast.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Maximum rejected cases (via [`prop_assume!`]) before the property
    /// errors out as vacuous.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out; try another.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message (mirrors upstream's API shape).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Value generators. Implemented for [`Any`] and integer ranges.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// The `any::<T>()` strategy: the full value domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform over `T`'s entire domain.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can generate.
pub trait ArbitraryValue: std::fmt::Debug {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize);

/// Drive `case` for every case index the config asks for. Called by the
/// [`proptest!`] expansion; not part of the public API upstream, but
/// harmless to expose.
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng, u32) -> Result<(), TestCaseError>,
) {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejects = 0u32;
    let mut i = 0u32;
    let mut passed = 0u32;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(name_hash ^ ((i as u64) << 32));
        match case(&mut rng, i) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest '{test_name}': too many prop_assume! rejects \
                     ({rejects}); property is vacuous"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{test_name}' failed at case {i}: {msg}");
            }
        }
        i += 1;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: left = {:?}, right = {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: left = {:?}, right = {:?}: {} ({}:{})",
                stringify!($left), stringify!($right), l, r,
                format!($($fmt)*), file!(), line!()
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`: both = {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`: both = {:?}: {} ({}:{})",
                stringify!($left), stringify!($right), l,
                format!($($fmt)*), file!(), line!()
            )));
        }
    }};
}

/// Skip the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in any::<u64>(), y in 0u8..16) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_variables)]
            $crate::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng, __case| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    // Report inputs on failure without shrinking.
                    let __inputs = || -> String {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "{} = {:?}, ", stringify!($arg), $arg
                        ));)*
                        s
                    };
                    let mut __case_fn = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case_fn().map_err(|e| match e {
                        $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                            format!("[inputs: {}] {}", __inputs(), msg),
                        ),
                        r => r,
                    })
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any_stay_in_domain(x in 0u8..16, y in 1u8..=10, z in any::<u64>()) {
            prop_assert!(x < 16);
            prop_assert!((1..=10).contains(&y));
            let _ = z;
        }

        #[test]
        fn assume_filters_cases(a in any::<u8>()) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        super::run_cases(ProptestConfig::with_cases(10), "det", |rng, _| {
            first.push(crate::any::<u64>().generate(rng));
            Ok(())
        });
        let mut second = Vec::new();
        super::run_cases(ProptestConfig::with_cases(10), "det", |rng, _| {
            second.push(crate::any::<u64>().generate(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "vacuous")]
    fn unsatisfiable_assume_is_flagged() {
        super::run_cases(ProptestConfig::with_cases(1), "vac", |_, _| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        super::run_cases(ProptestConfig::with_cases(5), "boom", |_, _| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
