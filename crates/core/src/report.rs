//! Machine-readable result export: a small, dependency-free JSON writer
//! for run results and time series, so external plotting/analysis tooling
//! can consume experiment outputs without parsing the human tables.
//! (serde is available for Rust-to-Rust round-trips; this module covers
//! the interchange case without pulling a JSON crate into the tree.)

use crate::experiment::RunResult;
use std::fmt::Write;

/// Minimal JSON value builder. Only what the reports need: objects,
/// arrays, strings, numbers, booleans.
#[derive(Debug, Clone)]
pub enum Json {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Json>),
    /// JSON object (ordered fields).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A number from anything convertible to f64.
    pub fn num<N: Into<f64>>(n: N) -> Json {
        Json::Num(n.into())
    }

    /// `u64` loses no precision below 2^53, which covers every counter we
    /// export; larger values are clamped (and none occur in practice).
    pub fn u64(n: u64) -> Json {
        Json::Num(n.min(1 << 53) as f64)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < (1i64 << 53) as f64 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact JSON serialisation (`to_string` comes with it).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Export one run's aggregates and time series as JSON.
pub fn run_result_json(label: &str, r: &RunResult) -> String {
    let snapshots = Json::Arr(
        r.stats
            .snapshots
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("cycle", Json::u64(s.cycle)),
                    ("input_util", Json::u64(s.input_util as u64)),
                    ("output_util", Json::u64(s.output_util as u64)),
                    ("injection_util", Json::u64(s.injection_util as u64)),
                    ("all_cores_full", Json::u64(s.routers_all_cores_full as u64)),
                    (
                        "half_cores_full",
                        Json::u64(s.routers_half_cores_full as u64),
                    ),
                    ("blocked", Json::u64(s.routers_blocked_port as u64)),
                    ("delivered_delta", Json::u64(s.delivered_flits)),
                    ("retx_delta", Json::u64(s.retransmissions)),
                    ("uncorrectable_delta", Json::u64(s.uncorrectable_faults)),
                ])
            })
            .collect(),
    );
    let links = Json::Arr(
        r.metrics
            .links()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                Json::obj(vec![
                    ("link", Json::u64(i as u64)),
                    ("flits", Json::u64(l.flits.get())),
                    ("retx", Json::u64(l.retransmissions.get())),
                    ("ecc_corrected", Json::u64(l.ecc_corrected.get())),
                    ("ecc_uncorrectable", Json::u64(l.ecc_uncorrectable.get())),
                    ("nacks", Json::u64(l.nacks.get())),
                    ("lob_selections", Json::u64(l.lob_selections.get())),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("label", Json::Str(label.to_string())),
        ("cycles", Json::u64(r.cycles)),
        ("drained", Json::Bool(r.drained)),
        ("injected_packets", Json::u64(r.stats.injected_packets)),
        ("delivered_packets", Json::u64(r.stats.delivered_packets)),
        ("avg_latency", Json::num(r.stats.avg_latency())),
        ("p99_latency", Json::u64(r.stats.latency_percentile(0.99))),
        ("retransmissions", Json::u64(r.stats.retransmissions)),
        (
            "uncorrectable_faults",
            Json::u64(r.stats.uncorrectable_faults),
        ),
        ("bist_scans", Json::u64(r.stats.bist_scans)),
        ("trace_events", Json::u64(r.trace.len() as u64)),
        ("links", links),
        ("snapshots", snapshots),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{MetricsRegistry, SimStats};

    #[test]
    fn json_escaping_and_shapes() {
        let j = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::num(1.5)),
            ("i", Json::u64(42)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::u64(1), Json::u64(2)])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"s":"a\"b\\c\nd","n":1.5,"i":42,"b":true,"z":null,"a":[1,2]}"#
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(3.0).to_string(), "3");
        assert_eq!(Json::num(3.25).to_string(), "3.25");
    }

    #[test]
    fn run_result_exports_valid_json_shape() {
        let r = RunResult {
            stats: SimStats::default(),
            cycles: 100,
            completion: None,
            drained: true,
            events: Vec::new(),
            metrics: MetricsRegistry::new(2, 1),
            trace: Vec::new(),
        };
        let s = run_result_json("smoke", &r);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains(r#""label":"smoke""#));
        assert!(s.contains(r#""drained":true"#));
        assert!(s.contains(r#""snapshots":[]"#));
        assert!(s.contains(r#""trace_events":0"#));
        assert!(s.contains(r#""link":1"#), "per-link table exported: {s}");
        // Balanced braces/brackets (cheap well-formedness check).
        let depth = s.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn control_characters_are_escaped() {
        let j = Json::Str("\u{1}".into());
        assert_eq!(j.to_string(), "\"\\u0001\"");
    }
}
