//! Terminal visualisation of network state: per-router heat maps and the
//! link-utilisation picture of Fig. 1(b)/(c), rendered as text grids so
//! examples and the CLI can show *where* an attack is biting.

use noc_sim::{MetricsRegistry, Snapshot};
use noc_types::{Coord, Direction, Mesh, NodeId};

/// Map an intensity in `[0, 1]` to a heat glyph.
pub fn heat_glyph(intensity: f64) -> char {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
    let i = (intensity.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[i]
}

/// Render a 4-wide grid of per-router values as a heat map, highest row
/// (y = 3) on top. `peak` scales the ramp; zero peak renders all blank.
pub fn router_grid(mesh: &Mesh, values: &[f64], peak: f64) -> String {
    assert_eq!(values.len(), mesh.routers());
    let mut out = String::new();
    for y in (0..mesh.height()).rev() {
        out.push_str("  ");
        for x in 0..mesh.width() {
            let n = mesh.node_at(Coord::new(x, y));
            let v = if peak > 0.0 {
                values[n.index()] / peak
            } else {
                0.0
            };
            out.push('[');
            out.push(heat_glyph(v));
            out.push(']');
        }
        out.push('\n');
    }
    out
}

/// Render per-link shares as a mesh diagram: routers as `(r)` cells with
/// horizontal/vertical link glyphs between them scaled by utilisation.
pub fn link_grid(mesh: &Mesh, shares: &[f64]) -> String {
    assert_eq!(shares.len(), mesh.links());
    let peak = shares.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let pair_heat = |a: NodeId, dir: Direction| {
        // Combine both directions of the physical pair for the glyph.
        let fwd = mesh
            .link_out(a, dir)
            .map(|l| shares[l.index()])
            .unwrap_or(0.0);
        let rev = mesh
            .neighbor(a, dir)
            .and_then(|nb| mesh.link_out(nb, dir.opposite()))
            .map(|l| shares[l.index()])
            .unwrap_or(0.0);
        (fwd + rev) / (2.0 * peak)
    };
    let mut out = String::new();
    for y in (0..mesh.height()).rev() {
        // Router row with eastward links.
        out.push_str("  ");
        for x in 0..mesh.width() {
            let n = mesh.node_at(Coord::new(x, y));
            out.push_str(&format!("({:X})", n.0));
            if x + 1 < mesh.width() {
                let h = pair_heat(n, Direction::East);
                let g = heat_glyph(h);
                out.push(g);
                out.push(g);
            }
        }
        out.push('\n');
        // Southward links below this row.
        if y > 0 {
            out.push_str("  ");
            for x in 0..mesh.width() {
                let n = mesh.node_at(Coord::new(x, y));
                let v = pair_heat(n, Direction::South);
                out.push(' ');
                out.push(heat_glyph(v));
                out.push(' ');
                if x + 1 < mesh.width() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Render the per-link retransmission picture from the metrics registry
/// as a mesh diagram — the forensic "where is the trojan" view.
pub fn retx_heatmap(mesh: &Mesh, metrics: &MetricsRegistry) -> String {
    let shares: Vec<f64> = metrics
        .links()
        .iter()
        .map(|l| l.retransmissions.get() as f64)
        .collect();
    link_grid(mesh, &shares)
}

/// Render per-router ejected-flit load from the metrics registry.
pub fn ejection_heatmap(mesh: &Mesh, metrics: &MetricsRegistry) -> String {
    let values: Vec<f64> = metrics
        .routers()
        .iter()
        .map(|r| r.ejected_flits.get() as f64)
        .collect();
    let peak = values.iter().cloned().fold(0.0f64, f64::max);
    router_grid(mesh, &values, peak)
}

/// Human-readable per-link metrics table, hottest (most retransmitted)
/// links first; links with no traffic are omitted. `top` caps the rows.
pub fn link_metrics_table(metrics: &MetricsRegistry, elapsed: u64, top: usize) -> String {
    let mut rows: Vec<(usize, u64)> = metrics
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.flits.get() > 0)
        .map(|(i, l)| (i, l.retransmissions.get()))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out =
        String::from("  link   flits    util    retx  ecc_cor  ecc_unc   nacks     lob\n");
    for (i, _) in rows.into_iter().take(top) {
        let l = metrics.link(noc_types::LinkId(i as u16));
        out.push_str(&format!(
            "  {:>4}  {:>6}  {:>5.1}%  {:>6}  {:>7}  {:>7}  {:>6}  {:>6}\n",
            i,
            l.flits.get(),
            l.utilization(elapsed) * 100.0,
            l.retransmissions.get(),
            l.ecc_corrected.get(),
            l.ecc_uncorrectable.get(),
            l.nacks.get(),
            l.lob_selections.get(),
        ));
    }
    out
}

/// Summarise one snapshot as a one-line status string.
pub fn snapshot_line(s: &Snapshot) -> String {
    format!(
        "cycle {:>6}  in {:>4}  out {:>4}  inj {:>6}  blocked {:>2}/16  dead {:>2}/16",
        s.cycle,
        s.input_util,
        s.output_util,
        s.injection_util,
        s.routers_blocked_port,
        s.routers_half_cores_full
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::Mesh;

    #[test]
    fn glyph_ramp_is_monotone() {
        let glyphs: Vec<char> = (0..=10).map(|i| heat_glyph(i as f64 / 10.0)).collect();
        assert_eq!(*glyphs.first().unwrap(), ' ');
        assert_eq!(*glyphs.last().unwrap(), '@');
        // Indices into the ramp never decrease.
        const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
        let idx = |c: char| RAMP.iter().position(|r| *r == c).unwrap();
        assert!(glyphs.windows(2).all(|w| idx(w[0]) <= idx(w[1])));
        // Out-of-range inputs clamp.
        assert_eq!(heat_glyph(-1.0), ' ');
        assert_eq!(heat_glyph(2.0), '@');
    }

    #[test]
    fn router_grid_shape_and_orientation() {
        let mesh = Mesh::paper();
        let mut values = vec![0.0; 16];
        values[12] = 1.0; // router 12 = (0, 3): top-left cell
        let grid = router_grid(&mesh, &values, 1.0);
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("  [@]"), "{grid}");
        assert!(lines[3].starts_with("  [ ]"), "{grid}");
    }

    #[test]
    fn link_grid_renders_all_rows() {
        let mesh = Mesh::paper();
        let shares = vec![1.0 / 48.0; 48];
        let grid = link_grid(&mesh, &shares);
        // 4 router rows + 3 vertical-link rows.
        assert_eq!(grid.lines().count(), 7);
        assert!(grid.contains("(0)"));
        assert!(grid.contains("(F)"), "router 15 printed in hex: {grid}");
    }

    #[test]
    fn metrics_renderers_show_the_hot_link() {
        use noc_sim::MetricsRegistry;
        use noc_types::LinkId;
        let mesh = Mesh::paper();
        let mut m = MetricsRegistry::new(mesh.links(), mesh.routers());
        m.link_mut(LinkId(0)).flits.add(100);
        m.link_mut(LinkId(0)).retransmissions.add(40);
        m.link_mut(LinkId(5)).flits.add(10);
        let table = link_metrics_table(&m, 1000, 8);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + the two active links:\n{table}");
        assert!(lines[1].trim_start().starts_with('0'), "hottest first");
        // One direction of the pair is hot, so the pair glyph sits at
        // half intensity ('='), every other link stays blank.
        let map = retx_heatmap(&mesh, &m);
        assert!(map.contains("(0)==(1)"), "hot link rendered:\n{map}");
        let ej = ejection_heatmap(&mesh, &m);
        assert_eq!(ej.lines().count(), 4);
    }

    #[test]
    fn snapshot_line_contains_all_series() {
        let s = Snapshot {
            cycle: 42,
            input_util: 1,
            output_util: 2,
            injection_util: 3,
            routers_all_cores_full: 0,
            routers_half_cores_full: 5,
            routers_blocked_port: 6,
            delivered_flits: 0,
            retransmissions: 0,
            uncorrectable_faults: 0,
        };
        let line = snapshot_line(&s);
        for needle in ["42", "blocked  6/16", "dead  5/16"] {
            assert!(line.contains(needle), "{line}");
        }
    }
}
