//! Attacker-side link selection (§III-A of the paper).
//!
//! The attacker wants maximum disruption from as few trojans as possible.
//! Traffic localises around the application's primary router, so the best
//! links are the hot ones — but not the links *immediately* attached to
//! the primary, which would be the first suspects: "an attacker aiming to
//! disrupt an application operating from a specific core may not choose a
//! link immediately connected to the primary operating cores. Choosing a
//! few links in x-dimension or y-dimension a few hops away … should be
//! sufficient."

use noc_sim::routing::RouteTables;
use noc_types::{LinkId, Mesh, NodeId};

/// Pick the links to infect: the hottest `fraction` of all links (by the
/// given per-link traffic shares), preferring links not directly attached
/// to `primary`. `fraction` of 0.05/0.10/0.15 reproduces the paper's
/// Fig. 10 x-axis; 0 returns no links.
///
/// The accumulated set always remains *reroutable* (up*/down* routes
/// avoiding it exist): a set whose disabling strands part of the chip
/// would crash the system outright — instantly conspicuous, and outside
/// the graceful-degradation comparison the paper's Fig. 10 makes (its
/// rerouting bars exist at every infection fraction).
pub fn select_infected(
    mesh: &Mesh,
    shares: &[f64],
    fraction: f64,
    primary: Option<NodeId>,
) -> Vec<LinkId> {
    assert_eq!(shares.len(), mesh.links());
    let count = ((mesh.links() as f64 * fraction).round() as usize).min(mesh.links());
    if count == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|a, b| shares[*b].partial_cmp(&shares[*a]).expect("no NaN"));
    let touches_primary = |l: usize| {
        primary.is_some_and(|p| {
            let link = LinkId(l as u16);
            let (src, _) = mesh.link_source(link);
            mesh.link_dest(link) == p || src == p
        })
    };
    let mut picked: Vec<LinkId> = Vec::with_capacity(count);
    let try_add = |picked: &mut Vec<LinkId>, id: LinkId| {
        let mut candidate = picked.clone();
        candidate.push(id);
        if RouteTables::build_updown(mesh, &candidate).is_some() {
            picked.push(id);
        }
    };
    // First pass: hot links that keep their distance from the primary;
    // second pass tops up from the remainder if the mesh is too small.
    for l in order.iter().copied().filter(|l| !touches_primary(*l)) {
        if picked.len() == count {
            break;
        }
        try_add(&mut picked, LinkId(l as u16));
    }
    if picked.len() < count {
        for l in order {
            let id = LinkId(l as u16);
            if picked.len() == count {
                break;
            }
            if !picked.contains(&id) {
                try_add(&mut picked, id);
            }
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{AppModel, AppSpec, TrafficMatrix};

    fn shares() -> (Mesh, Vec<f64>) {
        let mesh = Mesh::paper();
        let mut model = AppModel::new(AppSpec::blackscholes(), mesh.clone(), 3);
        let m = TrafficMatrix::sample(&mut model, 2000);
        let s = m.link_shares_xy(&mesh);
        (mesh, s)
    }

    #[test]
    fn fraction_controls_count() {
        let (mesh, s) = shares();
        assert!(select_infected(&mesh, &s, 0.0, None).is_empty());
        assert_eq!(select_infected(&mesh, &s, 0.05, None).len(), 2);
        assert_eq!(select_infected(&mesh, &s, 0.10, None).len(), 5);
        assert_eq!(select_infected(&mesh, &s, 0.15, None).len(), 7);
    }

    #[test]
    fn picks_are_hot_links() {
        let (mesh, s) = shares();
        let picked = select_infected(&mesh, &s, 0.10, None);
        let min_picked = picked
            .iter()
            .map(|l| s[l.index()])
            .fold(f64::INFINITY, f64::min);
        let median = {
            let mut v = s.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            v[v.len() / 2]
        };
        assert!(min_picked >= median, "picked links must be hot");
    }

    #[test]
    fn avoids_links_touching_the_primary() {
        let (mesh, s) = shares();
        let primary = AppSpec::blackscholes().primary;
        let picked = select_infected(&mesh, &s, 0.10, Some(primary));
        for l in picked {
            let (src, _) = mesh.link_source(l);
            assert_ne!(src, primary);
            assert_ne!(mesh.link_dest(l), primary);
        }
    }

    #[test]
    fn deduplicates_and_stays_reroutable() {
        let (mesh, s) = shares();
        // At fraction 1.0 the filter caps the set at the largest hot subset
        // that still leaves the mesh reroutable.
        let picked = select_infected(&mesh, &s, 1.0, None);
        assert!(picked.len() >= 10, "got {}", picked.len());
        assert!(picked.len() < 48, "disabling every link cannot be routable");
        let mut dedup = picked.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), picked.len());
        use noc_sim::routing::RouteTables;
        assert!(RouteTables::build_updown(&mesh, &picked).is_some());
    }
}
