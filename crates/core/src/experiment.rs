//! Experiment execution: run a [`Scenario`] through its schedule and
//! collect the numbers the figures need.

use crate::scenario::Scenario;
use noc_sim::{MetricsRegistry, Record, SimEvent, SimStats, Simulator};

/// Everything a figure harness needs from one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// All statistics the simulator collected.
    pub stats: SimStats,
    /// Cycle the run ended at.
    pub cycles: u64,
    /// Cycle the last packet was delivered (≈ completion time of the
    /// workload; `None` when nothing was delivered).
    pub completion: Option<u64>,
    /// Whether every injected flit was eventually delivered.
    pub drained: bool,
    /// Events the run emitted.
    pub events: Vec<SimEvent>,
    /// Per-link / per-router metrics (always collected).
    pub metrics: MetricsRegistry,
    /// Structured trace records (empty unless the scenario armed
    /// [`Scenario::trace`]; bounded by the configured ring capacity).
    pub trace: Vec<Record>,
}

impl RunResult {
    /// The Fig. 10 metric: workload completion time. Deadlocked runs never
    /// complete; charge them the full simulation budget.
    pub fn completion_or_cap(&self, cap: u64) -> u64 {
        if self.drained {
            self.completion.unwrap_or(cap)
        } else {
            cap
        }
    }
}

/// Run the scenario: warm-up → arm kill switch → inject until the schedule
/// ends → drain until quiescence or `max_cycles`.
pub fn run_scenario(sc: &Scenario) -> RunResult {
    let mut sim = sc.build_sim();
    let mut traffic = sc.build_traffic(sim.mesh());
    // Clean warm-up.
    sim.run(sc.warmup, traffic.as_mut());
    // The attacker throws the kill switch.
    sim.arm_trojans(true);
    // Keep injecting per the schedule, then drain.
    while sim.cycle() < sc.max_cycles {
        sim.step(traffic.as_mut());
        if traffic.done() && sim.is_quiescent() {
            break;
        }
    }
    finish(sim)
}

/// Run a scenario whose trojans are never armed (clean baselines).
pub fn run_scenario_unarmed(sc: &Scenario) -> RunResult {
    let mut sim = sc.build_sim();
    let mut traffic = sc.build_traffic(sim.mesh());
    while sim.cycle() < sc.max_cycles {
        sim.step(traffic.as_mut());
        if traffic.done() && sim.is_quiescent() {
            break;
        }
    }
    finish(sim)
}

fn finish(mut sim: Simulator) -> RunResult {
    let drained = sim.is_quiescent();
    let cycles = sim.cycle();
    let events = sim.drain_events();
    let completion = events
        .iter()
        .filter_map(|e| match e {
            SimEvent::PacketDelivered { delivered_at, .. } => Some(*delivered_at),
            _ => None,
        })
        .max();
    let trace = sim
        .tracer_mut()
        .map(|t| {
            t.close_sink();
            t.take_records()
        })
        .unwrap_or_default();
    RunResult {
        stats: sim.stats().clone(),
        cycles,
        completion,
        drained,
        events,
        metrics: sim.metrics().clone(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infection::select_infected;
    use crate::scenario::Strategy;
    use noc_traffic::{AppModel, AppSpec, TrafficMatrix};
    use noc_types::Mesh;

    fn short(app: AppSpec, strategy: Strategy) -> Scenario {
        let mut sc = Scenario::paper_default(app, strategy);
        sc.warmup = 200;
        sc.inject_until = 600;
        sc.max_cycles = 6000;
        sc
    }

    fn infected(frac: f64) -> Vec<noc_types::LinkId> {
        let mesh = Mesh::paper();
        let mut m = AppModel::new(AppSpec::blackscholes(), mesh.clone(), 3);
        let shares = TrafficMatrix::sample(&mut m, 1500).link_shares_xy(&mesh);
        select_infected(&mesh, &shares, frac, Some(AppSpec::blackscholes().primary))
    }

    #[test]
    fn clean_run_drains() {
        let r = run_scenario(&short(AppSpec::blackscholes(), Strategy::Unprotected));
        assert!(r.drained, "no trojans mounted → full drain");
        assert!(r.stats.delivered_packets > 0);
        assert_eq!(r.stats.delivered_packets, r.stats.injected_packets);
        assert!(r.completion.is_some());
    }

    #[test]
    fn unprotected_attack_stalls_the_workload() {
        let sc = short(AppSpec::blackscholes(), Strategy::Unprotected).with_infected(infected(0.1));
        let r = run_scenario(&sc);
        assert!(!r.drained, "targeted flits can never cross");
        assert!(r.stats.delivered_packets < r.stats.injected_packets);
        assert!(r.stats.retransmissions > 50, "{}", r.stats.retransmissions);
    }

    #[test]
    fn s2s_lob_lets_the_workload_finish() {
        let sc = short(AppSpec::blackscholes(), Strategy::S2sLob).with_infected(infected(0.1));
        let r = run_scenario(&sc);
        assert!(r.drained, "L-Ob must defeat the trojans");
        assert_eq!(r.stats.delivered_packets, r.stats.injected_packets);
    }

    #[test]
    fn reroute_finishes_but_slower_than_lob() {
        let links = infected(0.1);
        let lob = run_scenario(
            &short(AppSpec::blackscholes(), Strategy::S2sLob).with_infected(links.clone()),
        );
        let rr =
            run_scenario(&short(AppSpec::blackscholes(), Strategy::Reroute).with_infected(links));
        assert!(lob.drained && rr.drained);
        let (t_lob, t_rr) = (lob.completion_or_cap(6000), rr.completion_or_cap(6000));
        assert!(
            t_rr as f64 >= t_lob as f64 * 0.95,
            "rerouting should not beat L-Ob: {t_rr} vs {t_lob}"
        );
    }

    #[test]
    fn completion_or_cap_charges_deadlocks_the_budget() {
        let r = RunResult {
            stats: SimStats::default(),
            cycles: 100,
            completion: Some(50),
            drained: false,
            events: Vec::new(),
            metrics: MetricsRegistry::default(),
            trace: Vec::new(),
        };
        assert_eq!(r.completion_or_cap(999), 999);
    }
}
