//! Scenario orchestration for the paper's experiments: baselines,
//! infected-link selection, experiment runners, and parallel sweeps.
//!
//! This crate is the public face of the reproduction. It wires the
//! substrates together:
//!
//! * [`scenario`] — declarative description of one experiment (application
//!   model, attack placement, defence strategy) and its compilation into a
//!   configured [`noc_sim::Simulator`];
//! * [`e2e`] — the Fort-NoCs-style end-to-end obfuscation baseline (and
//!   why it fails against header-targeting trojans);
//! * [`reroute`] — the Ariadne-style rerouting baseline (disable infected
//!   links, rebuild deadlock-free tables);
//! * [`infection`] — attacker-side link selection (§III of the paper);
//! * [`experiment`] — run loops producing the time series and aggregate
//!   numbers behind Figs. 10–12;
//! * [`campaign`] — deterministic fault-injection campaigns driving the
//!   resilience layer (watchdog, bounded retransmission, quarantine)
//!   through seeded failure scenarios;
//! * [`sweep`] — crossbeam-powered parallel parameter sweeps.

pub mod campaign;
pub mod e2e;
pub mod experiment;
pub mod infection;
pub mod report;
pub mod reroute;
pub mod scenario;
pub mod sweep;
pub mod viz;

pub use campaign::{run_campaign, ScenarioReport};
pub use experiment::{run_scenario, RunResult};
pub use infection::select_infected;
pub use scenario::{Scenario, Strategy};

/// The names almost every downstream user needs.
pub mod prelude {
    pub use crate::campaign::{run_campaign, ScenarioReport};
    pub use crate::experiment::{run_scenario, RunResult};
    pub use crate::infection::select_infected;
    pub use crate::scenario::{Scenario, Strategy};
    pub use noc_mitigation::{FaultClass, LobPlan, ObfuscationMethod};
    pub use noc_power::{MitigationPower, NocPower, RouterPower, TaspPower};
    pub use noc_sim::{
        QosMode, RetxScheme, SimConfig, SimError, SimEvent, Simulator, StallKind, StallReport,
        TrafficSource, WatchdogConfig,
    };
    pub use noc_traffic::{AppModel, AppSpec, Pattern, SyntheticTraffic, TrafficMatrix};
    pub use noc_trojan::{TargetKind, TargetSpec, TaspConfig, TaspHt};
    pub use noc_types::{CoreId, Flit, Header, LinkId, Mesh, NodeId, Packet, VcId};
}
