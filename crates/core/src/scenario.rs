//! Declarative experiment scenarios and their compilation into a
//! configured simulator + traffic source.

use crate::e2e::E2eObfuscation;
use crate::reroute;
use noc_sim::{QosMode, RetxScheme, SimConfig, Simulator, TraceConfig, TrafficSource};
use noc_traffic::{AppModel, AppSpec};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::{LinkId, Mesh};

/// The defence deployed in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// No countermeasures: plain retransmission forever (Fig. 11(a)).
    Unprotected,
    /// Fort-NoCs-style end-to-end data scrambling (fails against
    /// header-targeting trojans; Fig. 11(a) discussion).
    E2eObfuscation,
    /// SurfNoC-style TDM with this many non-interfering domains
    /// (Fig. 12(a)).
    Tdm {
        /// Number of non-interfering time-multiplexed domains.
        domains: u8,
    },
    /// The paper's proposal: threat detector + switch-to-switch L-Ob
    /// (Figs. 10 and 12(b)).
    S2sLob,
    /// Ariadne-style rerouting around infected links (Fig. 10 baseline).
    Reroute,
}

/// One experiment: workload, attack, defence, and schedule.
///
/// ```
/// use htnoc_core::prelude::*;
///
/// // Blackscholes under the paper's mitigation, one infected hot link.
/// let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
///     .with_infected(vec![LinkId(12)]);
/// sc.warmup = 100;
/// sc.inject_until = 300;
/// sc.max_cycles = 5_000;
/// let result = run_scenario(&sc);
/// assert!(result.drained, "L-Ob gets every packet through");
/// assert_eq!(result.stats.delivered_packets, result.stats.injected_packets);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The application workload.
    pub app: AppSpec,
    /// Traffic-model seed (determinism).
    pub seed: u64,
    /// The defence deployed.
    pub strategy: Strategy,
    /// Links carrying a TASP trojan.
    pub infected: Vec<LinkId>,
    /// What the trojans hunt for.
    pub target: TargetSpec,
    /// Trojan fault-injection cooldown in cycles ("every 10 cycles or so").
    pub cooldown: u32,
    /// Cycles of clean warm-up before the kill switch is asserted.
    pub warmup: u64,
    /// Injection stops after this cycle.
    pub inject_until: u64,
    /// Hard simulation cap (covers deadlocked runs).
    pub max_cycles: u64,
    /// Statistics sampling interval.
    pub snapshot_interval: u64,
    /// Restrict the workload's packets to these VCs (TDM domain pinning).
    pub vcs: Vec<u8>,
    /// Arm the structured event tracer (`None`: zero-cost disabled).
    pub trace: Option<TraceConfig>,
    /// Worker threads for the sharded cycle engine (`None`/`Some(1)`:
    /// sequential). Bit-identical results at every setting.
    pub threads: Option<usize>,
    /// Override the fabric (`None`: the paper's 4×4 mesh). A torus or
    /// degraded mesh routes through the topology tables in `crates/noc`.
    pub mesh: Option<Mesh>,
}

impl Scenario {
    /// A scenario with the paper's Fig. 11 schedule: 1500-cycle warm-up,
    /// then the kill switch goes up and the trojan hits every sighting of
    /// its target (which traffic makes happen "every 10 cycles or so").
    pub fn paper_default(app: AppSpec, strategy: Strategy) -> Self {
        let target = TargetSpec::dest((app.primary.0 & 0xF) as u8);
        Self {
            app,
            seed: 0xC0FFEE,
            strategy,
            infected: Vec::new(),
            target,
            cooldown: 0,
            warmup: 1500,
            inject_until: 3000,
            max_cycles: 20_000,
            snapshot_interval: 10,
            vcs: Vec::new(),
            trace: None,
            threads: None,
            mesh: None,
        }
    }

    /// Seed defaults; see `paper_default`.
    pub fn with_infected(mut self, infected: Vec<LinkId>) -> Self {
        self.infected = infected;
        self
    }

    /// Replace the infected link set.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arm structured tracing for the run (forensics / export).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Run the cycle engine sharded over `threads` worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Replace the fabric (e.g. a torus or fault-degraded mesh).
    pub fn with_mesh(mut self, mesh: Mesh) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// The simulator configuration this strategy implies.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper();
        if let Some(mesh) = &self.mesh {
            cfg.mesh = mesh.clone();
        }
        cfg.snapshot_interval = self.snapshot_interval;
        cfg.trace = self.trace;
        cfg.threads = self.threads;
        match &self.strategy {
            Strategy::Unprotected | Strategy::E2eObfuscation | Strategy::Reroute => {
                cfg.mitigation = false;
            }
            Strategy::Tdm { domains } => {
                cfg.mitigation = false;
                cfg.qos = QosMode::Tdm { domains: *domains };
                // Per-VC retransmission slots keep one domain's stalls from
                // head-of-line-blocking the other.
                cfg.retx_scheme = RetxScheme::PerVc;
            }
            Strategy::S2sLob => {
                cfg.mitigation = true;
            }
        }
        cfg
    }

    /// Build the configured simulator (trojans mounted but **not armed**;
    /// the experiment loop asserts the kill switch after warm-up).
    ///
    /// Panics when the rerouting baseline cannot route around the
    /// infected links; use [`Scenario::try_build_sim`] to handle that
    /// case gracefully.
    pub fn build_sim(&self) -> Simulator {
        self.try_build_sim()
            .expect("infection fractions must not disconnect the mesh")
    }

    /// Fallible [`Scenario::build_sim`]: returns
    /// [`noc_sim::SimError::MeshDisconnected`] when the rerouting
    /// baseline's dead-link set leaves some router pair unroutable.
    pub fn try_build_sim(&self) -> Result<Simulator, noc_sim::SimError> {
        let mut sim = Simulator::new(self.sim_config());
        for (i, link) in self.infected.iter().enumerate() {
            let cfg = TaspConfig::new(self.target.clone()).with_cooldown(self.cooldown);
            let ht = TaspHt::new(cfg);
            let faults = std::mem::replace(
                sim.link_faults_mut(*link),
                noc_sim::fault::LinkFaults::healthy(i as u64),
            );
            *sim.link_faults_mut(*link) = faults.with_trojan(ht);
        }
        // With nothing to avoid, the rerouting baseline keeps XY (its
        // up*/down* reconfiguration is only triggered by flagged links).
        if self.strategy == Strategy::Reroute && !self.infected.is_empty() {
            let ok = reroute::apply_reroute(&mut sim, &self.infected);
            if !ok {
                return Err(noc_sim::SimError::MeshDisconnected {
                    cycle: 0,
                    dead: self.infected.clone(),
                });
            }
        }
        Ok(sim)
    }

    /// Build the traffic source (wrapped for e2e obfuscation if selected).
    pub fn build_traffic(&self, mesh: &Mesh) -> Box<dyn TrafficSource> {
        let mut model =
            AppModel::new(self.app.clone(), mesh.clone(), self.seed).until(self.inject_until);
        if !self.vcs.is_empty() {
            model = model.with_vcs(self.vcs.clone());
        }
        match self.strategy {
            Strategy::E2eObfuscation => {
                Box::new(E2eObfuscation::new(model, 0x5EED ^ self.seed as u32))
            }
            _ => Box::new(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_maps_to_sim_config() {
        let s = |strategy| Scenario::paper_default(AppSpec::blackscholes(), strategy);
        assert!(!s(Strategy::Unprotected).sim_config().mitigation);
        assert!(s(Strategy::S2sLob).sim_config().mitigation);
        let tdm = s(Strategy::Tdm { domains: 2 }).sim_config();
        assert_eq!(tdm.qos, QosMode::Tdm { domains: 2 });
        assert_eq!(tdm.retx_scheme, RetxScheme::PerVc);
    }

    #[test]
    fn build_mounts_trojans_on_infected_links() {
        let mesh = Mesh::paper();
        let links: Vec<LinkId> = mesh.all_links().take(3).collect();
        let sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
            .with_infected(links.clone());
        let sim = sc.build_sim();
        for l in &links {
            assert!(sim.link_faults(*l).trojan.is_some());
        }
        assert!(sim.link_faults(LinkId(40)).trojan.is_none());
    }

    #[test]
    fn target_defaults_to_the_apps_primary() {
        let sc = Scenario::paper_default(AppSpec::facesim(), Strategy::S2sLob);
        assert_eq!(
            sc.target,
            TargetSpec::dest((AppSpec::facesim().primary.0 & 0xF) as u8)
        );
    }

    #[test]
    fn traffic_source_honours_schedule() {
        let sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::Unprotected);
        let mesh = Mesh::paper();
        let mut src = sc.build_traffic(&mesh);
        assert!(!src.done(), "not done before the schedule is polled out");
        let mut out = Vec::new();
        src.poll(sc.inject_until + 1, &mut out);
        assert!(out.is_empty(), "no injection past the schedule");
        assert!(src.done(), "done once polled past the schedule");
    }
}
