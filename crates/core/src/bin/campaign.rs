//! Run the deterministic fault-injection campaign from the command line:
//!
//! ```text
//! cargo run -p htnoc-core --bin campaign [seed] [--trace out.json]
//! ```
//!
//! Replays every seeded failure scenario (transient storm, stuck-at
//! burst, trojan kill-switch toggling, multi-trojan placement, link
//! death/revival, and the unmitigated trojan flood) against the
//! resilience layer. Each scenario asserts packet/flit conservation and
//! a clean invariant audit, so the process exits non-zero on any
//! violation.
//!
//! With `--trace PATH`, the trojan-flood scenario is re-run with the
//! structured tracer armed: the full event stream lands next to `PATH`
//! as JSONL (`<stem>.jsonl`, one canonical event per line — the file
//! `trace_validate` checks), the bounded ring is exported as a Chrome
//! `trace_event` file at `PATH` (load it in Perfetto or
//! `chrome://tracing`), and the per-link metrics table prints with the
//! infected link at the top.

use htnoc_core::campaign::{run_campaign, trojan_flood_traced_with_sink, CAMPAIGN_SEED};
use htnoc_core::viz;
use noc_sim::{JsonlSink, TraceConfig};
use std::io::Write;

fn main() {
    let mut seed = CAMPAIGN_SEED;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let Some(p) = args.next() else {
                eprintln!("usage: campaign [seed] [--trace out.json]");
                std::process::exit(2);
            };
            trace_path = Some(p.into());
        } else {
            seed = arg.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("usage: campaign [seed] [--trace out.json]   (got {arg:?})");
                std::process::exit(2);
            });
        }
    }

    println!("fault-injection campaign, seed {seed:#x}");
    println!();
    let reports = run_campaign(seed);
    for rep in &reports {
        println!("{rep}");
    }
    println!();
    let stalls: usize = reports.iter().map(|r| r.stalls.len()).sum();
    let quarantines: u64 = reports.iter().map(|r| r.quarantined_links).sum();
    println!(
        "{} scenario(s) drained with conservation and invariants intact \
         ({stalls} watchdog trip(s), {quarantines} quarantined link(s))",
        reports.len()
    );

    let Some(path) = trace_path else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("campaign: cannot create {}: {e}", parent.display());
                std::process::exit(2);
            });
        }
    }
    let jsonl_path = path.with_extension("jsonl");
    let file = std::fs::File::create(&jsonl_path).unwrap_or_else(|e| {
        eprintln!("campaign: cannot create {}: {e}", jsonl_path.display());
        std::process::exit(2);
    });
    println!();
    println!("re-running trojan_flood with the tracer armed...");
    let (rep, sim) = trojan_flood_traced_with_sink(
        seed.wrapping_add(5),
        TraceConfig::default(),
        Box::new(JsonlSink::new(file)),
    );
    let tracer = sim.tracer().expect("the traced run keeps its recorder");
    println!(
        "  {} events emitted ({} retained in the ring, {} evicted)",
        tracer.emitted(),
        tracer.len(),
        tracer.dropped()
    );
    println!("  full stream: {}", jsonl_path.display());
    let chrome = tracer.to_chrome_trace();
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(chrome.as_bytes()))
        .unwrap_or_else(|e| {
            eprintln!("campaign: cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
    println!("  chrome trace: {} (open in Perfetto)", path.display());
    println!();
    println!("per-link metrics, hottest first (cycles={}):", rep.cycles);
    print!("{}", viz::link_metrics_table(sim.metrics(), rep.cycles, 12));
    println!();
    println!("retransmission heatmap (trojan on the 5->9 hop):");
    print!("{}", viz::retx_heatmap(sim.mesh(), sim.metrics()));
}
