//! Run the deterministic fault-injection campaign from the command line:
//!
//! ```text
//! cargo run -p htnoc-core --bin campaign [seed] [--trace out.json]
//!     [--checkpoint-dir D [--checkpoint-every N] [--resume] [--halt-at C]]
//! ```
//!
//! Replays every seeded failure scenario (transient storm, stuck-at
//! burst, trojan kill-switch toggling, multi-trojan placement, link
//! death/revival, and the unmitigated trojan flood) against the
//! resilience layer. Each scenario asserts packet/flit conservation and
//! a clean invariant audit, so the process exits non-zero on any
//! violation.
//!
//! With `--trace PATH`, the trojan-flood scenario is re-run with the
//! structured tracer armed: the full event stream lands next to `PATH`
//! as JSONL (`<stem>.jsonl`, one canonical event per line — the file
//! `trace_validate` checks), the bounded ring is exported as a Chrome
//! `trace_event` file at `PATH` (load it in Perfetto or
//! `chrome://tracing`), and the per-link metrics table prints with the
//! infected link at the top.
//!
//! With `--checkpoint-dir`, the trojan-flood acceptance scenario runs
//! under periodic crash-safe checkpointing instead: the full simulator
//! state (plus traffic cursor and stall log) is snapshotted every
//! `--checkpoint-every` cycles, and `--resume` continues from the newest
//! valid checkpoint — bit-identically to an uninterrupted run. `--halt-at`
//! simulates a crash at a given cycle (used by the kill-and-resume CI
//! job alongside a real SIGKILL).
//!
//! With `--telemetry-out DIR`, the clean uniform baseline and the
//! trojan flood re-run with the side-band telemetry plane armed:
//! `DIR/baseline/` and `DIR/trojan_flood/` each receive an atomically
//! replaced Prometheus exposition (`metrics.prom`, refreshed every
//! `--telemetry-every` cycles, default 100), an append-only heartbeat
//! log (`heartbeat.jsonl`: cycle, cycles/sec, RSS, alerts fired), and
//! the engine self-profile as a Chrome trace (`engine_trace.json`).
//! Telemetry never perturbs the run — the reports are bit-identical to
//! the plain scenarios (pinned by the zero-perturbation suite).

use htnoc_core::campaign::{
    baseline_telemetry_streamed, run_campaign, trojan_flood_checkpointed,
    trojan_flood_telemetry_streamed, trojan_flood_traced_with_sink, CheckpointOpts, CAMPAIGN_SEED,
};
use htnoc_core::viz;
use noc_sim::{JsonlSink, TelemetryOut, TraceConfig};
use std::io::Write;

const USAGE: &str = "usage: campaign [seed] [--trace out.json] \
    [--telemetry-out DIR [--telemetry-every N]] \
    [--checkpoint-dir D [--checkpoint-every N] [--resume] [--halt-at C]]";

fn main() {
    let mut seed = CAMPAIGN_SEED;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut ckpt_dir: Option<std::path::PathBuf> = None;
    let mut ckpt_every: u64 = 500;
    let mut tel_dir: Option<std::path::PathBuf> = None;
    let mut tel_every: u64 = 100;
    let mut resume = false;
    let mut halt_at: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--trace" => trace_path = Some(value("--trace").into()),
            "--checkpoint-dir" => ckpt_dir = Some(value("--checkpoint-dir").into()),
            "--checkpoint-every" => {
                ckpt_every = value("--checkpoint-every").parse().unwrap_or_else(|_| {
                    eprintln!("--checkpoint-every needs a cycle count\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--telemetry-out" => tel_dir = Some(value("--telemetry-out").into()),
            "--telemetry-every" => {
                tel_every = value("--telemetry-every").parse().unwrap_or_else(|_| {
                    eprintln!("--telemetry-every needs a cycle count\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--resume" => resume = true,
            "--halt-at" => {
                halt_at = Some(value("--halt-at").parse().unwrap_or_else(|_| {
                    eprintln!("--halt-at needs a cycle count\n{USAGE}");
                    std::process::exit(2);
                }))
            }
            _ => {
                seed = arg.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("{USAGE}   (got {arg:?})");
                    std::process::exit(2);
                })
            }
        }
    }

    if let Some(dir) = ckpt_dir {
        // Checkpointed acceptance run: the trojan-flood scenario under
        // periodic crash-safe snapshots (what the CI kill-and-resume job
        // drives). The finished report is bit-identical to an
        // uninterrupted run of the same seed.
        let mut opts = CheckpointOpts::new(&dir, ckpt_every);
        opts.resume = resume;
        opts.halt_at = halt_at;
        println!(
            "trojan_flood (checkpointed), seed {seed:#x}, every {ckpt_every} \
             cycles into {}{}",
            dir.display(),
            if resume { ", resuming" } else { "" },
        );
        match trojan_flood_checkpointed(seed, &opts) {
            Some(rep) => println!("{rep}"),
            None => {
                println!(
                    "halted at cycle {} (simulated crash); rerun with --resume",
                    opts.halt_at.unwrap()
                );
            }
        }
        return;
    }

    println!("fault-injection campaign, seed {seed:#x}");
    println!();
    let reports = run_campaign(seed);
    for rep in &reports {
        println!("{rep}");
    }
    println!();
    let stalls: usize = reports.iter().map(|r| r.stalls.len()).sum();
    let quarantines: u64 = reports.iter().map(|r| r.quarantined_links).sum();
    println!(
        "{} scenario(s) drained with conservation and invariants intact \
         ({stalls} watchdog trip(s), {quarantines} quarantined link(s))",
        reports.len()
    );

    if let Some(dir) = tel_dir {
        run_telemetry(&dir, tel_every, seed);
    }

    let Some(path) = trace_path else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("campaign: cannot create {}: {e}", parent.display());
                std::process::exit(2);
            });
        }
    }
    let jsonl_path = path.with_extension("jsonl");
    let file = std::fs::File::create(&jsonl_path).unwrap_or_else(|e| {
        eprintln!("campaign: cannot create {}: {e}", jsonl_path.display());
        std::process::exit(2);
    });
    println!();
    println!("re-running trojan_flood with the tracer armed...");
    let (rep, sim) = trojan_flood_traced_with_sink(
        seed.wrapping_add(5),
        TraceConfig::default(),
        Box::new(JsonlSink::new(file)),
    );
    let tracer = sim.tracer().expect("the traced run keeps its recorder");
    println!(
        "  {} events emitted ({} retained in the ring, {} evicted)",
        tracer.emitted(),
        tracer.len(),
        tracer.dropped()
    );
    println!("  full stream: {}", jsonl_path.display());
    let chrome = tracer.to_chrome_trace();
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(chrome.as_bytes()))
        .unwrap_or_else(|e| {
            eprintln!("campaign: cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
    println!("  chrome trace: {} (open in Perfetto)", path.display());
    println!();
    println!("per-link metrics, hottest first (cycles={}):", rep.cycles);
    print!("{}", viz::link_metrics_table(sim.metrics(), rep.cycles, 12));
    println!();
    println!("retransmission heatmap (trojan on the 5->9 hop):");
    print!("{}", viz::retx_heatmap(sim.mesh(), sim.metrics()));
}

/// Re-run the alert-rule control pair with telemetry streaming to disk:
/// the clean baseline (must stay alert-free) and the trojan flood (must
/// alert before the watchdog trips).
fn run_telemetry(dir: &std::path::Path, every: u64, seed: u64) {
    let open = |name: &str| {
        TelemetryOut::new(dir.join(name), every).unwrap_or_else(|e| {
            eprintln!("campaign: cannot open {}/{name}: {e}", dir.display());
            std::process::exit(2);
        })
    };
    println!();
    println!(
        "re-running the baseline + trojan flood with telemetry armed \
         (every {every} cycles into {})...",
        dir.display()
    );
    let mut base_out = open("baseline");
    let (base_rep, base_sim) =
        baseline_telemetry_streamed(seed, 1, &mut base_out).unwrap_or_else(|e| {
            eprintln!("campaign: baseline telemetry write failed: {e}");
            std::process::exit(2);
        });
    let base_alerts = base_sim.telemetry().map_or(0, |t| t.alerts().fired_total());
    println!("  {base_rep}");
    println!("    alerts fired: {base_alerts}");
    let mut flood_out = open("trojan_flood");
    let (flood_rep, flood_sim) =
        trojan_flood_telemetry_streamed(seed.wrapping_add(5), 1, &mut flood_out).unwrap_or_else(
            |e| {
                eprintln!("campaign: trojan-flood telemetry write failed: {e}");
                std::process::exit(2);
            },
        );
    let tel = flood_sim.telemetry().expect("telemetry armed");
    println!("  {flood_rep}");
    let cycle_or_never = |c: Option<u64>| c.map_or("never".into(), |c| c.to_string());
    println!(
        "    alerts fired: {} (first at cycle {}, watchdog at cycle {})",
        tel.alerts().fired_total(),
        cycle_or_never(tel.alerts().first_alert_cycle()),
        cycle_or_never(tel.first_watchdog_cycle())
    );
    println!(
        "  exported: {0}/baseline/{{metrics.prom,heartbeat.jsonl,engine_trace.json}} \
         and {0}/trojan_flood/...",
        dir.display()
    );
}
