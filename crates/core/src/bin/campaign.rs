//! Run the deterministic fault-injection campaign from the command line:
//!
//! ```text
//! cargo run -p htnoc-core --bin campaign [seed]
//! ```
//!
//! Replays every seeded failure scenario (transient storm, stuck-at
//! burst, trojan kill-switch toggling, multi-trojan placement, link
//! death/revival, and the unmitigated trojan flood) against the
//! resilience layer. Each scenario asserts packet/flit conservation and
//! a clean invariant audit, so the process exits non-zero on any
//! violation.

use htnoc_core::campaign::{run_campaign, CAMPAIGN_SEED};

fn main() {
    let seed = match std::env::args().nth(1) {
        None => CAMPAIGN_SEED,
        Some(s) => s.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("usage: campaign [seed]   (seed must be an unsigned integer, got {s:?})");
            std::process::exit(2);
        }),
    };
    println!("fault-injection campaign, seed {seed:#x}");
    println!();
    let reports = run_campaign(seed);
    for rep in &reports {
        println!("{rep}");
    }
    println!();
    let stalls: usize = reports.iter().map(|r| r.stalls.len()).sum();
    let quarantines: u64 = reports.iter().map(|r| r.quarantined_links).sum();
    println!(
        "{} scenario(s) drained with conservation and invariants intact \
         ({stalls} watchdog trip(s), {quarantines} quarantined link(s))",
        reports.len()
    );
}
