//! Strictly validate a Prometheus exposition written by the telemetry
//! plane, and assert campaign health properties over it:
//!
//! ```text
//! cargo run -p htnoc-core --bin prom_validate -- FILE.prom
//!     [--expect-alerts-min N] [--expect-no-alerts]
//!     [--expect-alert-before-watchdog]
//! ```
//!
//! Every line must parse under the strict grammar ([`parse_prometheus`]:
//! `# HELP`/`# TYPE` comments, `name{labels} value`, finite floats) or
//! the process exits non-zero. The expectation flags are what the CI
//! telemetry job pins: the trojan-flood exposition must carry at least
//! one fired alert whose first cycle precedes the watchdog trip, while
//! the clean baseline must be alert-free.

use noc_sim::{parse_prometheus, prom_value, AlertClass, PromSample};

const USAGE: &str = "usage: prom_validate FILE.prom [--expect-alerts-min N] \
    [--expect-no-alerts] [--expect-alert-before-watchdog]";

fn fail(msg: &str) -> ! {
    eprintln!("prom_validate: {msg}");
    std::process::exit(1);
}

fn require(samples: &[PromSample], name: &str) -> f64 {
    prom_value(samples, name).unwrap_or_else(|| fail(&format!("metric {name} missing")))
}

fn main() {
    let mut path: Option<std::path::PathBuf> = None;
    let mut alerts_min: Option<u64> = None;
    let mut no_alerts = false;
    let mut before_watchdog = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-alerts-min" => {
                let v = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--expect-alerts-min needs a count\n{USAGE}");
                    std::process::exit(2);
                });
                alerts_min = Some(v);
            }
            "--expect-no-alerts" => no_alerts = true,
            "--expect-alert-before-watchdog" => before_watchdog = true,
            _ if path.is_none() && !arg.starts_with("--") => path = Some(arg.into()),
            _ => {
                eprintln!("{USAGE}   (got {arg:?})");
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let samples = parse_prometheus(&text)
        .unwrap_or_else(|e| fail(&format!("{}: strict parse failed: {e}", path.display())));

    // Core gauges every *simulator* exposition carries. Driver-liveness
    // expositions (the fuzz campaign's scenario counters, sweep
    // progress) have no noc_ metrics and skip the shape checks — the
    // strict parse and the alert expectations still apply.
    let simulator_export = samples.iter().any(|s| s.name.starts_with("noc_"));
    let mut cycle = 0.0;
    if simulator_export {
        cycle = require(&samples, "noc_cycle");
        require(&samples, "noc_delivered_flits_total");
    }
    let fired = prom_value(&samples, "noc_alerts_fired_total").unwrap_or_else(|| {
        if simulator_export {
            fail("metric noc_alerts_fired_total missing")
        }
        0.0
    });

    // Per-class counters must sum to the total and carry known labels.
    let mut by_class = 0.0;
    for s in samples
        .iter()
        .filter(|s| s.name == "noc_alerts_by_class_total")
    {
        let label = s
            .labels
            .iter()
            .find(|(k, _)| k == "class")
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| fail("noc_alerts_by_class_total sample without a class label"));
        if AlertClass::from_label(label).is_none() {
            fail(&format!("unknown alert class label {label:?}"));
        }
        by_class += s.value;
    }
    if simulator_export && by_class != fired {
        fail(&format!(
            "per-class alert counters sum to {by_class} but noc_alerts_fired_total is {fired}"
        ));
    }

    if let Some(min) = alerts_min {
        if fired < min as f64 {
            fail(&format!(
                "expected at least {min} alert(s), exposition has {fired}"
            ));
        }
    }
    if no_alerts && fired != 0.0 {
        fail(&format!(
            "expected an alert-free run, exposition has {fired} alert(s)"
        ));
    }
    if before_watchdog {
        let first_alert = prom_value(&samples, "noc_first_alert_cycle")
            .unwrap_or_else(|| fail("noc_first_alert_cycle missing (no alert fired?)"));
        let first_trip = prom_value(&samples, "noc_first_watchdog_cycle")
            .unwrap_or_else(|| fail("noc_first_watchdog_cycle missing (watchdog never tripped?)"));
        if first_alert >= first_trip {
            fail(&format!(
                "first alert at cycle {first_alert} did not precede the watchdog trip at {first_trip}"
            ));
        }
        println!(
            "  online detection at cycle {first_alert} beat the watchdog at {first_trip} \
             ({} cycle(s) of lead time)",
            first_trip - first_alert
        );
    }
    println!(
        "{}: {} sample(s) parsed strictly, cycle {cycle}, {fired} alert(s) fired — OK",
        path.display(),
        samples.len()
    );
}
