//! Deterministic fault-injection campaigns.
//!
//! Each scenario replays one seeded failure mode against the resilience
//! layer — transient storms, stuck-at bursts, trojan kill-switch toggling
//! mid-run, multi-trojan placements, link death and revival — and asserts
//! the two properties the layer exists to provide:
//!
//! * **conservation** — every injected flit/packet is either delivered or
//!   explicitly dropped by a quarantine purge
//!   (`delivered + dropped == injected` at quiescence, never a silent
//!   loss);
//! * **integrity** — [`noc_sim::Simulator::check_invariants`] finds zero
//!   micro-architectural violations after the dust settles (and the
//!   guarded step audits periodically along the way).
//!
//! Scenarios run through the guarded APIs, so a deadlock surfaces as a
//! structured [`StallReport`] the driver acts on (quarantine the culprit
//! and resume) instead of a silent spin to the cycle cap. The
//! [`trojan_flood`] scenario is the acceptance case: an unmitigated
//! trojan DoS that previously spun forever now terminates with a
//! watchdog diagnosis, a quarantined link, and a full drain.
//!
//! Everything is seeded: same seed, same run, bit for bit.

use noc_sim::fault::StuckWires;
use noc_sim::routing::{xy_direction, xy_path, Routing};
use noc_sim::{
    SimConfig, SimError, Simulator, StallReport, TelemetryConfig, TelemetryOut, TraceConfig,
    TraceSink, TrafficSource, WatchdogConfig,
};
use noc_traffic::{Pattern, SyntheticTraffic};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::{LinkId, NodeId};

/// Default campaign seed (any seed works; this one is the published run).
pub const CAMPAIGN_SEED: u64 = 0xD15EA5E;

/// What one campaign scenario did, after its assertions passed.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (one of the `campaign` module's scenario functions).
    pub name: &'static str,
    /// Seed the scenario ran with.
    pub seed: u64,
    /// Cycle the run ended at (quiescent).
    pub cycles: u64,
    /// Flits injected over the run.
    pub injected_flits: u64,
    /// Flits delivered to their destination cores.
    pub delivered_flits: u64,
    /// Flits explicitly dropped by quarantine purges.
    pub dropped_flits: u64,
    /// Links quarantined (budget exhaustion, watchdog, or scripted death).
    pub quarantined_links: u64,
    /// Retry-budget escalations that forced L-Ob on a stuck entry.
    pub budget_escalations: u64,
    /// Every watchdog diagnosis raised (and acted on) during the run.
    pub stalls: Vec<StallReport>,
}

impl std::fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<20} cycles={:<6} flits {}/{} delivered, {} dropped, \
             {} quarantined link(s), {} escalation(s), {} stall(s)",
            self.name,
            self.cycles,
            self.delivered_flits,
            self.injected_flits,
            self.dropped_flits,
            self.quarantined_links,
            self.budget_escalations,
            self.stalls.len()
        )?;
        for s in &self.stalls {
            write!(f, "\n    watchdog: {s}")?;
        }
        Ok(())
    }
}

/// How a scenario responds to a watchdog diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallPolicy {
    /// No stall is expected; one is a scenario failure.
    Fatal,
    /// Quarantine the blamed link and resume (graceful degradation).
    QuarantineCulprit,
}

/// Periodic Prometheus + heartbeat emission for a running scenario: the
/// driver loop pumps this once per cycle and [`TelemetryOut`] decides
/// when an interval boundary has been crossed.
pub struct TelemetryStream<'a> {
    out: &'a mut TelemetryOut,
    scenario: &'static str,
}

impl<'a> TelemetryStream<'a> {
    /// Stream scenario telemetry into `out`, labelling every Prometheus
    /// sample with `scenario`.
    pub fn new(out: &'a mut TelemetryOut, scenario: &'static str) -> Self {
        Self { out, scenario }
    }

    /// Write the final exposition plus the engine Chrome trace, after
    /// the run has drained.
    pub fn finish(&mut self, sim: &Simulator) -> std::io::Result<noc_sim::Heartbeat> {
        if let Some(tel) = sim.telemetry() {
            self.out
                .write_artifact("engine_trace.json", tel.engine_chrome_trace().as_bytes())?;
        }
        let prom = sim.prometheus_text(&[("scenario", self.scenario)]);
        let alerts = sim.telemetry().map_or(0, |t| t.alerts().fired_total());
        self.out.write_now(sim.cycle(), &prom, None, alerts)
    }
}

fn pump_telemetry(stream: Option<&mut TelemetryStream<'_>>, sim: &Simulator) {
    let Some(s) = stream else { return };
    let cycle = sim.cycle();
    if !s.out.due(cycle) {
        return;
    }
    let prom = sim.prometheus_text(&[("scenario", s.scenario)]);
    let alerts = sim.telemetry().map_or(0, |t| t.alerts().fired_total());
    // Telemetry IO must never kill a healthy simulation.
    let _ = s.out.write_now(cycle, &prom, None, alerts);
}

fn handle_stall(sim: &mut Simulator, report: &StallReport, policy: StallPolicy) {
    match policy {
        StallPolicy::Fatal => panic!("unexpected stall: {report}"),
        StallPolicy::QuarantineCulprit => {
            let (router, dir) = report
                .culprit()
                .unwrap_or_else(|| panic!("stall names no culprit to quarantine: {report}"));
            let link = sim
                .mesh()
                .link_out(router, dir)
                .expect("a blamed output port always has a link");
            if !sim.dead_links().contains(&link) {
                sim.quarantine_link(link)
                    .unwrap_or_else(|e| panic!("quarantine of {link:?} failed: {e}"));
            }
        }
    }
}

/// Step guarded until `until_cycle`, applying `policy` to any stall.
fn drive_until(
    sim: &mut Simulator,
    traffic: &mut dyn TrafficSource,
    until_cycle: u64,
    policy: StallPolicy,
    stalls: &mut Vec<StallReport>,
) {
    drive_until_streamed(sim, traffic, until_cycle, policy, stalls, None)
}

fn drive_until_streamed(
    sim: &mut Simulator,
    traffic: &mut dyn TrafficSource,
    until_cycle: u64,
    policy: StallPolicy,
    stalls: &mut Vec<StallReport>,
    mut stream: Option<&mut TelemetryStream<'_>>,
) {
    while sim.cycle() < until_cycle {
        pump_telemetry(stream.as_deref_mut(), sim);
        match sim.try_step(traffic) {
            Ok(()) => {}
            Err(SimError::Stalled(report)) => {
                stalls.push(*report);
                handle_stall(sim, &report, policy);
            }
            Err(err) => panic!("fatal simulator error at cycle {}: {err}", sim.cycle()),
        }
    }
}

/// Step guarded until the schedule is exhausted and the network drains.
fn drain(
    sim: &mut Simulator,
    traffic: &mut dyn TrafficSource,
    max_cycles: u64,
    policy: StallPolicy,
    stalls: &mut Vec<StallReport>,
) -> bool {
    drain_streamed(sim, traffic, max_cycles, policy, stalls, None)
}

fn drain_streamed(
    sim: &mut Simulator,
    traffic: &mut dyn TrafficSource,
    max_cycles: u64,
    policy: StallPolicy,
    stalls: &mut Vec<StallReport>,
    mut stream: Option<&mut TelemetryStream<'_>>,
) -> bool {
    while sim.cycle() < max_cycles {
        pump_telemetry(stream.as_deref_mut(), sim);
        if traffic.done() && sim.is_quiescent() {
            return true;
        }
        match sim.try_step(traffic) {
            Ok(()) => {}
            Err(SimError::Stalled(report)) => {
                stalls.push(*report);
                handle_stall(sim, &report, policy);
            }
            Err(err) => panic!("fatal simulator error at cycle {}: {err}", sim.cycle()),
        }
    }
    traffic.done() && sim.is_quiescent()
}

/// Final audit: drained, conserved, and invariant-clean — then report.
fn finish(
    name: &'static str,
    seed: u64,
    sim: &Simulator,
    drained: bool,
    stalls: Vec<StallReport>,
) -> ScenarioReport {
    assert!(
        drained,
        "{name}: failed to drain by cycle {} ({} resident, {} queued)",
        sim.cycle(),
        sim.resident_flits(),
        sim.queued_flits()
    );
    let violations = sim.check_invariants();
    assert!(
        violations.is_empty(),
        "{name}: {} invariant violation(s) at cycle {}: {violations:?}",
        violations.len(),
        sim.cycle()
    );
    let s = sim.stats();
    assert!(
        s.flits_conserved(),
        "{name}: flit conservation broken: injected={} delivered={} dropped={}",
        s.injected_flits,
        s.delivered_flits,
        s.dropped_flits
    );
    assert!(
        s.packets_conserved(),
        "{name}: packet conservation broken: injected={} delivered={} dropped={}",
        s.injected_packets,
        s.delivered_packets,
        s.dropped_packets
    );
    ScenarioReport {
        name,
        seed,
        cycles: sim.cycle(),
        injected_flits: s.injected_flits,
        delivered_flits: s.delivered_flits,
        dropped_flits: s.dropped_flits,
        quarantined_links: s.quarantined_links,
        budget_escalations: s.budget_escalations,
        stalls,
    }
}

/// Mount an (unarmed) TASP trojan hunting `dest` on `link`.
fn mount_trojan(sim: &mut Simulator, link: LinkId, dest: NodeId) {
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((dest.0 & 0xF) as u8)));
    let faults = std::mem::replace(
        sim.link_faults_mut(link),
        noc_sim::LinkFaults::healthy(link.0 as u64),
    );
    *sim.link_faults_mut(link) = faults.with_trojan(ht);
}

/// The XY link between two adjacent routers.
fn hop(sim: &Simulator, from: NodeId, to: NodeId) -> LinkId {
    let dir = xy_direction(sim.mesh(), from, to);
    sim.mesh()
        .link_out(from, dir)
        .expect("adjacent routers share a link")
}

/// **Transient storm** — a burst window where four central links flip
/// bits at high probability. SECDED corrects the singles, NACK/replay
/// absorbs the doubles; everything still arrives, nothing is dropped.
pub fn transient_storm(seed: u64) -> ScenarioReport {
    let mut sim = Simulator::new(SimConfig::paper_resilient());
    let mesh = sim.mesh().clone();
    let mut traffic =
        SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.05, seed).until(1200);
    let mut stalls = Vec::new();
    drive_until(&mut sim, &mut traffic, 200, StallPolicy::Fatal, &mut stalls);
    // The storm strikes the four busiest central links for 300 cycles.
    let storm: Vec<LinkId> = [(5, 6), (6, 5), (9, 10), (10, 9)]
        .iter()
        .map(|&(a, b)| hop(&sim, NodeId(a), NodeId(b)))
        .collect();
    for l in &storm {
        sim.link_faults_mut(*l).transient_bit_prob = 1e-3;
    }
    drive_until(&mut sim, &mut traffic, 500, StallPolicy::Fatal, &mut stalls);
    for l in &storm {
        sim.link_faults_mut(*l).transient_bit_prob = 0.0;
    }
    let drained = drain(
        &mut sim,
        &mut traffic,
        8_000,
        StallPolicy::Fatal,
        &mut stalls,
    );
    let rep = finish("transient_storm", seed, &sim, drained, stalls);
    assert!(
        sim.stats().corrected_faults > 0,
        "the storm must exercise SECDED correction"
    );
    assert_eq!(rep.dropped_flits, 0, "transients never cost a flit");
    rep
}

/// **Stuck-at burst** — two wires of one central link fail hard mid-run.
/// Flits whose codewords disagree with both stuck values see a 2-bit
/// (uncorrectable) error on every traversal; with no mitigation rung the
/// retry budget escalates straight to quarantine, traffic reroutes, and
/// the run drains with the purge accounted for.
pub fn stuck_at_burst(seed: u64) -> ScenarioReport {
    let mut cfg = SimConfig::paper_resilient();
    cfg.mitigation = false; // no L-Ob rung: budget exhaustion goes straight to quarantine
    let mut sim = Simulator::new(cfg);
    let mesh = sim.mesh().clone();
    let mut traffic =
        SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.04, seed).until(1000);
    let mut stalls = Vec::new();
    drive_until(&mut sim, &mut traffic, 300, StallPolicy::Fatal, &mut stalls);
    let victim = hop(&sim, NodeId(5), NodeId(6));
    sim.link_faults_mut(victim).stuck = StuckWires::new((1 << 10) | (1 << 21), 0);
    let drained = drain(
        &mut sim,
        &mut traffic,
        15_000,
        StallPolicy::QuarantineCulprit,
        &mut stalls,
    );
    let rep = finish("stuck_at_burst", seed, &sim, drained, stalls);
    assert!(
        rep.quarantined_links >= 1,
        "stuck wires must exhaust the retry budget and quarantine the link"
    );
    rep
}

/// **Trojan toggle** — an attacker flips the kill switch up, down, and up
/// again mid-run while the mitigation ladder is active. L-Ob defeats each
/// armed window; every flit is delivered and the topology is untouched.
pub fn trojan_toggle(seed: u64) -> ScenarioReport {
    let mut sim = Simulator::new(SimConfig::paper_resilient());
    let mesh = sim.mesh().clone();
    let victim_dest = NodeId(9);
    let hot = hop(&sim, NodeId(5), victim_dest);
    mount_trojan(&mut sim, hot, victim_dest);
    let mut traffic = SyntheticTraffic::new(
        mesh.clone(),
        Pattern::Hotspot(vec![victim_dest]),
        0.03,
        seed,
    )
    .until(1400);
    let mut stalls = Vec::new();
    drive_until(&mut sim, &mut traffic, 200, StallPolicy::Fatal, &mut stalls);
    sim.arm_trojans(true);
    drive_until(&mut sim, &mut traffic, 600, StallPolicy::Fatal, &mut stalls);
    sim.arm_trojans(false);
    drive_until(&mut sim, &mut traffic, 900, StallPolicy::Fatal, &mut stalls);
    sim.arm_trojans(true);
    let drained = drain(
        &mut sim,
        &mut traffic,
        10_000,
        StallPolicy::Fatal,
        &mut stalls,
    );
    let rep = finish("trojan_toggle", seed, &sim, drained, stalls);
    assert_eq!(rep.dropped_flits, 0, "L-Ob delivers everything");
    assert_eq!(
        rep.quarantined_links, 0,
        "mitigation absorbs the attack without degrading the topology"
    );
    rep
}

/// **Multi-trojan placement** — three trojans hunting three different
/// destinations, all armed for the whole attack window, with the full
/// mitigation ladder up. All traffic is delivered.
pub fn multi_trojan(seed: u64) -> ScenarioReport {
    let mut sim = Simulator::new(SimConfig::paper_resilient());
    let mesh = sim.mesh().clone();
    let dests = [NodeId(3), NodeId(9), NodeId(12)];
    for d in dests {
        // Mount each trojan on the last XY hop of the 0→dest path: a link
        // every west/north flow to that destination must cross.
        let path = xy_path(&mesh, NodeId(0), d);
        let last = *path.last().expect("0 and dest are distinct");
        mount_trojan(&mut sim, last, d);
    }
    let mut traffic =
        SyntheticTraffic::new(mesh.clone(), Pattern::Hotspot(dests.to_vec()), 0.03, seed)
            .until(1200);
    let mut stalls = Vec::new();
    drive_until(&mut sim, &mut traffic, 200, StallPolicy::Fatal, &mut stalls);
    sim.arm_trojans(true);
    let drained = drain(
        &mut sim,
        &mut traffic,
        10_000,
        StallPolicy::Fatal,
        &mut stalls,
    );
    let rep = finish("multi_trojan", seed, &sim, drained, stalls);
    assert_eq!(rep.dropped_flits, 0, "L-Ob delivers everything");
    rep
}

/// **Link death and revival** — a healthy link dies without warning
/// (scripted quarantine: victims purged, traffic rerouted over up*/down*
/// tables), then comes back after field replacement and XY routing is
/// restored over the full mesh. Conservation holds across both
/// transitions.
pub fn link_death_revival(seed: u64) -> ScenarioReport {
    let mut sim = Simulator::new(SimConfig::paper_resilient());
    let mesh = sim.mesh().clone();
    let mut traffic =
        SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.04, seed).until(1300);
    let mut stalls = Vec::new();
    drive_until(&mut sim, &mut traffic, 300, StallPolicy::Fatal, &mut stalls);
    let victim = hop(&sim, NodeId(6), NodeId(7));
    sim.quarantine_link(victim)
        .expect("one dead link keeps the paper mesh connected");
    drive_until(&mut sim, &mut traffic, 800, StallPolicy::Fatal, &mut stalls);
    // Field replacement: the link comes back, XY resumes over the mesh.
    sim.set_dead_links(Vec::new());
    sim.set_routing(Routing::Xy);
    let drained = drain(
        &mut sim,
        &mut traffic,
        10_000,
        StallPolicy::Fatal,
        &mut stalls,
    );
    assert!(sim.dead_links().is_empty(), "revival clears the dead set");
    let rep = finish("link_death_revival", seed, &sim, drained, stalls);
    assert_eq!(rep.quarantined_links, 1);
    rep
}

/// **Trojan flood (acceptance)** — an armed trojan on the hotspot's
/// last-hop link with the mitigation ladder *disabled*: the exact run
/// that used to spin to the cycle cap as a silent deadlock. Now the
/// watchdog diagnoses the retransmission livelock, the driver
/// quarantines the blamed link, traffic reroutes, and the run drains
/// with every flit accounted for.
pub fn trojan_flood(seed: u64) -> ScenarioReport {
    trojan_flood_run(seed, None, None, 1, false, None).0
}

/// [`trojan_flood`] on `threads` shards, telemetry off — the control arm
/// of the zero-perturbation suite.
pub fn trojan_flood_threads(seed: u64, threads: usize) -> (ScenarioReport, Simulator) {
    trojan_flood_run(seed, None, None, threads, false, None)
}

/// [`trojan_flood`] with the side-band telemetry plane armed
/// ([`noc_sim::Telemetry`]): engine self-profiling, latency/retx
/// sketches, and the default alert rules run alongside the attack. The
/// zero-perturbation suite pins that the returned report (and the full
/// statistics) are bit-identical to the telemetry-off run at every
/// thread count; the alert suite pins that the flood raises at least one
/// alert *before* the watchdog trips.
pub fn trojan_flood_telemetry(seed: u64, threads: usize) -> (ScenarioReport, Simulator) {
    trojan_flood_run(seed, None, None, threads, true, None)
}

/// [`trojan_flood_telemetry`] streaming interval Prometheus expositions
/// and heartbeats into `out` as the run progresses, then writing the
/// final exposition plus the engine Chrome trace on completion.
pub fn trojan_flood_telemetry_streamed(
    seed: u64,
    threads: usize,
    out: &mut TelemetryOut,
) -> std::io::Result<(ScenarioReport, Simulator)> {
    let mut stream = TelemetryStream::new(out, "trojan_flood");
    let (rep, sim) = trojan_flood_run(seed, None, None, threads, true, Some(&mut stream));
    stream.finish(&sim)?;
    Ok((rep, sim))
}

/// Clean uniform-random traffic with telemetry armed — the control run
/// for the alert rules: a healthy mesh must produce **zero** alerts
/// (pinned by the alert suite, asserted by the CI telemetry job).
pub fn baseline_telemetry(seed: u64, threads: usize) -> (ScenarioReport, Simulator) {
    baseline_run(seed, threads, None)
}

/// [`baseline_telemetry`] streaming interval expositions into `out`; the
/// CI telemetry job asserts this directory stays alert-free.
pub fn baseline_telemetry_streamed(
    seed: u64,
    threads: usize,
    out: &mut TelemetryOut,
) -> std::io::Result<(ScenarioReport, Simulator)> {
    let mut stream = TelemetryStream::new(out, "baseline_uniform");
    let (rep, sim) = baseline_run(seed, threads, Some(&mut stream));
    stream.finish(&sim)?;
    Ok((rep, sim))
}

fn baseline_run(
    seed: u64,
    threads: usize,
    stream: Option<&mut TelemetryStream<'_>>,
) -> (ScenarioReport, Simulator) {
    let mut cfg = SimConfig::paper_resilient();
    cfg.threads = Some(threads);
    let mut sim = Simulator::new(cfg);
    sim.set_telemetry(TelemetryConfig::default());
    let mesh = sim.mesh().clone();
    let mut traffic =
        SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.05, seed).until(1200);
    let mut stalls = Vec::new();
    let drained = drain_streamed(
        &mut sim,
        &mut traffic,
        8_000,
        StallPolicy::Fatal,
        &mut stalls,
        stream,
    );
    let rep = finish("baseline_uniform", seed, &sim, drained, stalls);
    assert_eq!(rep.dropped_flits, 0, "a healthy mesh drops nothing");
    (rep, sim)
}

/// [`trojan_flood`] with the structured tracer armed: returns the report
/// plus the drained simulator so callers can query forensics
/// ([`Simulator::packet_history`], [`Simulator::link_timeline`]), read
/// the [`noc_sim::MetricsRegistry`], and export the trace.
pub fn trojan_flood_traced(seed: u64, trace: TraceConfig) -> (ScenarioReport, Simulator) {
    trojan_flood_run(seed, Some(trace), None, 1, false, None)
}

/// [`trojan_flood_traced`] on the sharded parallel engine: bit-identical
/// to the sequential run at every `threads` value (the golden
/// determinism suite pins this).
pub fn trojan_flood_traced_threads(
    seed: u64,
    trace: TraceConfig,
    threads: usize,
) -> (ScenarioReport, Simulator) {
    trojan_flood_run(seed, Some(trace), None, threads, false, None)
}

/// [`trojan_flood_traced`] streaming every event through `sink` as it is
/// emitted (so a file sink sees the full history even after the bounded
/// ring wraps). The sink is flushed/closed before this returns.
pub fn trojan_flood_traced_with_sink(
    seed: u64,
    trace: TraceConfig,
    sink: Box<dyn TraceSink>,
) -> (ScenarioReport, Simulator) {
    trojan_flood_run(seed, Some(trace), Some(sink), 1, false, None)
}

fn trojan_flood_run(
    seed: u64,
    trace: Option<TraceConfig>,
    sink: Option<Box<dyn TraceSink>>,
    threads: usize,
    telemetry: bool,
    mut stream: Option<&mut TelemetryStream<'_>>,
) -> (ScenarioReport, Simulator) {
    let mut cfg = SimConfig::paper_unprotected();
    cfg.threads = Some(threads);
    cfg.watchdog = Some(WatchdogConfig {
        retx_attempt_limit: 24,
        credit_stall_cycles: 600,
        global_stall_cycles: 1500,
    });
    cfg.check_invariants_every = Some(64);
    cfg.trace = trace;
    let mut sim = Simulator::new(cfg);
    if telemetry {
        sim.set_telemetry(TelemetryConfig::default());
    }
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    let mesh = sim.mesh().clone();
    let victim_dest = NodeId(9);
    let hot = hop(&sim, NodeId(5), victim_dest);
    mount_trojan(&mut sim, hot, victim_dest);
    let mut traffic = SyntheticTraffic::new(
        mesh.clone(),
        Pattern::Hotspot(vec![victim_dest]),
        0.05,
        seed,
    )
    .until(1200);
    let mut stalls = Vec::new();
    drive_until_streamed(
        &mut sim,
        &mut traffic,
        200,
        StallPolicy::Fatal,
        &mut stalls,
        stream.as_deref_mut(),
    );
    sim.arm_trojans(true);
    let drained = drain_streamed(
        &mut sim,
        &mut traffic,
        20_000,
        StallPolicy::QuarantineCulprit,
        &mut stalls,
        stream,
    );
    let rep = finish("trojan_flood", seed, &sim, drained, stalls);
    assert!(
        !rep.stalls.is_empty(),
        "the unmitigated flood must trip the watchdog"
    );
    assert!(
        rep.quarantined_links >= 1,
        "the diagnosis must lead to a quarantine"
    );
    if let Some(t) = sim.tracer_mut() {
        t.close_sink();
    }
    (rep, sim)
}

/// Options for the checkpointed acceptance run
/// ([`trojan_flood_checkpointed`]).
#[derive(Debug, Clone)]
pub struct CheckpointOpts {
    /// Snapshot the simulator every this-many cycles (0 = never).
    pub every: u64,
    /// Directory the rotating checkpoint files live in.
    pub dir: std::path::PathBuf,
    /// How many checkpoints to keep (oldest pruned first).
    pub keep: usize,
    /// Resume from the newest valid checkpoint in `dir` instead of
    /// starting at cycle 0.
    pub resume: bool,
    /// Stop the driver loop when the simulator reaches this cycle, as a
    /// crash would — the hook the kill-and-resume tests use. `None` runs
    /// to completion.
    pub halt_at: Option<u64>,
}

impl CheckpointOpts {
    /// Checkpoint into `dir` every `every` cycles, keeping 3 files.
    pub fn new(dir: impl Into<std::path::PathBuf>, every: u64) -> Self {
        Self {
            every,
            dir: dir.into(),
            keep: 3,
            resume: false,
            halt_at: None,
        }
    }
}

/// [`trojan_flood`] under periodic crash-safe checkpointing: every
/// `opts.every` cycles the complete simulator state plus the traffic
/// cursor and the stall log land in `opts.dir` (atomic write, rotated).
/// With `opts.resume`, the run continues from the newest valid
/// checkpoint and finishes **bit-identically** to an uninterrupted run —
/// same cycles, same stats, same stall diagnoses.
///
/// Returns `None` when `opts.halt_at` stopped the run mid-flight (the
/// simulated crash); otherwise the report, which matches
/// [`trojan_flood`] for the same seed exactly.
pub fn trojan_flood_checkpointed(seed: u64, opts: &CheckpointOpts) -> Option<ScenarioReport> {
    use noc_sim::snapshot::{encode_stall_report, put_u64, Checkpointer};

    const ARM_AT: u64 = 200;
    const MAX_CYCLES: u64 = 20_000;

    let mut cfg = SimConfig::paper_unprotected();
    cfg.watchdog = Some(WatchdogConfig {
        retx_attempt_limit: 24,
        credit_stall_cycles: 600,
        global_stall_cycles: 1500,
    });
    cfg.check_invariants_every = Some(64);
    let mut sim = Simulator::new(cfg);
    // Watchdog trips dump a forensic snapshot next to the checkpoints, so
    // a CI failure ships the stalled simulator state as an artifact.
    sim.set_post_mortem_dir(Some(opts.dir.join("post-mortem")));
    let mesh = sim.mesh().clone();
    let victim_dest = NodeId(9);
    let hot = hop(&sim, NodeId(5), victim_dest);
    mount_trojan(&mut sim, hot, victim_dest);
    let mut traffic = SyntheticTraffic::new(
        mesh.clone(),
        Pattern::Hotspot(vec![victim_dest]),
        0.05,
        seed,
    )
    .until(1200);
    let mut stalls: Vec<StallReport> = Vec::new();

    let ck = Checkpointer::new(&opts.dir, opts.keep);
    if opts.resume {
        if let Some((path, snap)) = ck.load_latest().expect("checkpoint dir must be readable") {
            sim.restore(&snap)
                .unwrap_or_else(|e| panic!("resume from {} failed: {e}", path.display()));
            let mut ud = snap.user_data();
            stalls = decode_stall_log(&mut ud)
                .unwrap_or_else(|| panic!("corrupt stall log in {}", path.display()));
            traffic.load_cursor(&mut ud);
        }
    }

    let save = |sim: &Simulator, traffic: &SyntheticTraffic, stalls: &[StallReport]| {
        let mut snap = sim.snapshot();
        let mut ud = Vec::new();
        put_u64(&mut ud, stalls.len() as u64);
        for s in stalls {
            encode_stall_report(&mut ud, s);
        }
        traffic.save_cursor(&mut ud);
        snap.set_user_data(ud);
        ck.save(&snap)
            .unwrap_or_else(|e| panic!("checkpoint save failed: {e}"));
    };

    let mut drained = false;
    while sim.cycle() < MAX_CYCLES {
        let now = sim.cycle();
        // Arming is keyed off the cycle counter (and the kill switches are
        // part of the snapshot), so a resumed run never re-arms or skips
        // the arming edge.
        if now == ARM_AT {
            sim.arm_trojans(true);
        }
        if opts.every > 0 && now > 0 && now.is_multiple_of(opts.every) {
            save(&sim, &traffic, &stalls);
        }
        if opts.halt_at.is_some_and(|h| now >= h) {
            return None;
        }
        if traffic.done() && sim.is_quiescent() {
            drained = true;
            break;
        }
        // Fast-forward idle stretches, but never across a driver-loop
        // deadline: the arming edge, the next checkpoint multiple, and
        // the simulated-crash cycle must all land on exactly the cycle
        // the naive loop would have visited, so a skip truncated by any
        // of them resumes the bookkeeping above bit-identically.
        let mut cap = MAX_CYCLES;
        if now < ARM_AT {
            cap = cap.min(ARM_AT);
        }
        if let Some(gap) = now.checked_div(opts.every) {
            cap = cap.min((gap + 1) * opts.every);
        }
        if let Some(h) = opts.halt_at {
            cap = cap.min(h);
        }
        if cap > now {
            match sim.skip_idle_cycles_guarded(cap - now, &mut traffic) {
                Ok(0) => {}
                Ok(_) => continue,
                Err(err) => panic!("fatal simulator error at cycle {}: {err}", sim.cycle()),
            }
        }
        match sim.try_step(&mut traffic) {
            Ok(()) => {}
            Err(SimError::Stalled(report)) => {
                stalls.push(*report);
                handle_stall(&mut sim, &report, StallPolicy::QuarantineCulprit);
            }
            Err(err) => panic!("fatal simulator error at cycle {}: {err}", sim.cycle()),
        }
    }

    let rep = finish("trojan_flood", seed, &sim, drained, stalls);
    assert!(
        !rep.stalls.is_empty(),
        "the unmitigated flood must trip the watchdog"
    );
    assert!(
        rep.quarantined_links >= 1,
        "the diagnosis must lead to a quarantine"
    );
    Some(rep)
}

/// Decode the stall log that [`trojan_flood_checkpointed`] stores at the
/// front of the snapshot `user_data`, advancing `input` past it.
fn decode_stall_log(input: &mut &[u8]) -> Option<Vec<StallReport>> {
    use noc_sim::snapshot::{decode_stall_report, take_u64};
    let n = take_u64(input)?;
    let mut stalls = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        stalls.push(decode_stall_report(input)?);
    }
    Some(stalls)
}

/// Run every scenario on seeds derived from `seed`. Each scenario panics
/// on any conservation or invariant failure, so a returned vector means
/// the whole campaign passed.
pub fn run_campaign(seed: u64) -> Vec<ScenarioReport> {
    vec![
        transient_storm(seed),
        stuck_at_burst(seed.wrapping_add(1)),
        trojan_toggle(seed.wrapping_add(2)),
        multi_trojan(seed.wrapping_add(3)),
        link_death_revival(seed.wrapping_add(4)),
        trojan_flood(seed.wrapping_add(5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trojan_flood_recovers_via_watchdog_and_quarantine() {
        // The acceptance scenario: previously a silent deadlock, now a
        // diagnosed stall, a quarantine, and a conserved drain.
        let rep = trojan_flood(CAMPAIGN_SEED.wrapping_add(5));
        assert!(rep.stalls.iter().any(|s| s.culprit().is_some()));
        assert!(
            rep.dropped_flits > 0,
            "quarantine purges are explicit drops"
        );
        assert_eq!(rep.injected_flits, rep.delivered_flits + rep.dropped_flits);
    }

    #[test]
    fn traced_flood_matches_untraced_and_blames_the_trojan_link() {
        let seed = CAMPAIGN_SEED.wrapping_add(5);
        let plain = trojan_flood(seed);
        // A flood-to-quiescence run emits more than the default 64k ring
        // holds; size the ring to keep the whole history for forensics.
        let (traced, sim) = trojan_flood_traced(seed, TraceConfig { capacity: 1 << 21 });
        // Tracing is observation-only: the report is bit-identical.
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.injected_flits, traced.injected_flits);
        assert_eq!(plain.delivered_flits, traced.delivered_flits);
        assert_eq!(plain.dropped_flits, traced.dropped_flits);
        assert_eq!(plain.stalls, traced.stalls);
        // The metrics registry names the infected link as the retx leader.
        let hot = hop(&sim, NodeId(5), NodeId(9));
        let (leader, retx) = sim.metrics().max_retx_link().unwrap();
        assert_eq!(leader, hot, "trojan link must top the retx table");
        assert!(retx > 0);
        // The forensic timeline of that link saw faults and a quarantine.
        let timeline = sim.link_timeline(hot);
        assert!(timeline
            .iter()
            .any(|r| matches!(r.kind, noc_sim::TraceKind::EccDetected { .. })));
        assert!(timeline
            .iter()
            .any(|r| matches!(r.kind, noc_sim::TraceKind::LinkQuarantined { .. })));
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("htnoc-campaign-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpointed_flood_matches_uninterrupted_run() {
        let seed = CAMPAIGN_SEED.wrapping_add(5);
        let plain = trojan_flood(seed);
        let dir = scratch_dir("full");
        let rep = trojan_flood_checkpointed(seed, &CheckpointOpts::new(&dir, 500))
            .expect("no halt requested");
        assert_eq!(plain.cycles, rep.cycles);
        assert_eq!(plain.injected_flits, rep.injected_flits);
        assert_eq!(plain.delivered_flits, rep.delivered_flits);
        assert_eq!(plain.dropped_flits, rep.dropped_flits);
        assert_eq!(plain.stalls, rep.stalls);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_and_resumed_flood_matches_uninterrupted_run() {
        let seed = CAMPAIGN_SEED.wrapping_add(5);
        let plain = trojan_flood(seed);
        let dir = scratch_dir("kill");
        // Crash mid-attack, past several checkpoints and at least one
        // watchdog quarantine...
        let mut opts = CheckpointOpts::new(&dir, 300);
        opts.halt_at = Some(1700);
        assert!(trojan_flood_checkpointed(seed, &opts).is_none());
        // ...then resume from the newest checkpoint: the finished run must
        // be indistinguishable from one that never crashed.
        opts.halt_at = None;
        opts.resume = true;
        let rep = trojan_flood_checkpointed(seed, &opts).expect("resumed run completes");
        assert_eq!(plain.cycles, rep.cycles);
        assert_eq!(plain.injected_flits, rep.injected_flits);
        assert_eq!(plain.delivered_flits, rep.delivered_flits);
        assert_eq!(plain.dropped_flits, rep.dropped_flits);
        assert_eq!(plain.stalls, rep.stalls);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_skip_truncates_exactly_at_driver_deadlines() {
        // The checkpoint loop feeds `skip_idle_cycles_guarded` a budget of
        // `deadline - now` (arming edge, checkpoint multiple, --halt-at).
        // A skip must land exactly on that deadline — never a cycle past
        // it — and otherwise stop exactly at the source's horizon.
        use noc_traffic::FloodAttack;
        use noc_types::CoreId;
        let mut sim = Simulator::new(SimConfig::paper_resilient());
        let mut src = FloodAttack::new(sim.mesh().clone(), vec![CoreId(20)], vec![NodeId(0)], 1)
            .window(900, 910);
        // One settle step so the conservative all-set bitmaps compact.
        sim.step(&mut src);
        assert_eq!(sim.cycle(), 1);
        let skipped = sim
            .skip_idle_cycles_guarded(511, &mut src)
            .expect("empty network audits clean");
        assert_eq!(skipped, 511, "a mid-gap deadline truncates the skip");
        assert_eq!(sim.cycle(), 512);
        let skipped = sim
            .skip_idle_cycles_guarded(10_000, &mut src)
            .expect("empty network audits clean");
        assert_eq!(skipped, 900 - 512, "the horizon bounds a generous budget");
        assert_eq!(sim.cycle(), 900, "skip stops exactly at the attack window");
        // At the horizon itself nothing is provably idle.
        assert_eq!(sim.skip_idle_cycles_guarded(10_000, &mut src).unwrap(), 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = transient_storm(7);
        let b = transient_storm(7);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.injected_flits, b.injected_flits);
        assert_eq!(a.delivered_flits, b.delivered_flits);
    }

    #[test]
    fn full_campaign_passes_every_scenario() {
        let reports = run_campaign(CAMPAIGN_SEED);
        assert_eq!(reports.len(), 6);
        for rep in &reports {
            // `finish` already asserted conservation; spot-check the sums.
            assert_eq!(
                rep.injected_flits,
                rep.delivered_flits + rep.dropped_flits,
                "{}",
                rep.name
            );
        }
    }
}
