//! Parallel parameter sweeps.
//!
//! Every simulation run is independent, so sweeps are embarrassingly
//! parallel. We fan work out over `std::thread::scope` workers with a
//! shared atomic work index (no unsafe, no channels needed) and collect
//! results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` in parallel, preserving order. Uses up to
/// `threads` workers (defaults to the available parallelism).
pub fn par_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Move items behind Option slots so workers can take them by index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock never poisoned")
                    .take()
                    .expect("each slot taken once");
                let r = f(item);
                *results[i].lock().expect("result lock never poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock never poisoned")
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), Some(8), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), None, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback() {
        let out = par_map(vec![1, 2, 3], Some(1), |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        par_map((0..16).collect(), Some(4), |_: i32| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "no observed overlap");
    }

    #[test]
    fn works_with_simulation_runs() {
        use crate::scenario::{Scenario, Strategy};
        use noc_traffic::AppSpec;
        let mut scenarios = Vec::new();
        for seed in 0..4u64 {
            let mut sc =
                Scenario::paper_default(AppSpec::ferret(), Strategy::Unprotected).with_seed(seed);
            sc.warmup = 50;
            sc.inject_until = 150;
            sc.max_cycles = 3000;
            scenarios.push(sc);
        }
        let results = par_map(scenarios, None, |sc| crate::experiment::run_scenario(&sc));
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.drained));
    }
}
