//! Parallel parameter sweeps.
//!
//! Every simulation run is independent, so sweeps are embarrassingly
//! parallel. Items are pre-split into contiguous chunks; workers claim
//! whole chunks through one shared atomic index and hand the produced
//! results back through their scoped join handles, so the only
//! synchronisation on the work path is a single `fetch_add` per chunk —
//! no per-item locks, no channels.

use std::cell::UnsafeCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Chunk inbox for the workers. Each slot is taken exactly once, by
/// whichever worker wins that index from the shared atomic counter.
struct ChunkSlots<T>(Vec<UnsafeCell<Option<Vec<T>>>>);

// SAFETY: slot `i` is touched only by the single worker that received
// index `i` from the shared `fetch_add`, so no two threads ever access
// the same `UnsafeCell` (see the claim loop in `par_map`).
unsafe impl<T: Send> Sync for ChunkSlots<T> {}

/// Map `f` over `items` in parallel, preserving order. Uses up to
/// `threads` workers (defaults to the available parallelism).
///
/// A panic inside `f` is propagated to the caller after the remaining
/// workers finish their in-flight chunks.
pub fn par_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // More chunks than workers keeps one slow item from serialising the
    // tail of the sweep, while claiming stays one fetch_add per chunk.
    let chunk_count = (workers * 4).min(n);
    let chunk_size = n.div_ceil(chunk_count);
    let mut items = items;
    let mut chunks = Vec::with_capacity(chunk_count);
    while !items.is_empty() {
        let rest = items.split_off(chunk_size.min(items.len()));
        chunks.push(items);
        items = rest;
    }
    let nchunks = chunks.len();
    let slots = ChunkSlots(
        chunks
            .into_iter()
            .map(|c| UnsafeCell::new(Some(c)))
            .collect(),
    );
    let next = AtomicUsize::new(0);
    let (slots, next, f) = (&slots, &next, &f);
    let mut out: Vec<Option<Vec<R>>> = (0..nchunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut produced: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= nchunks {
                            break;
                        }
                        // SAFETY: the fetch_add above handed index `i` to
                        // this worker alone; no other thread reads or
                        // writes slot `i`.
                        let chunk = unsafe { (*slots.0[i].get()).take() }
                            .expect("each chunk claimed exactly once");
                        produced.push((i, chunk.into_iter().map(f).collect()));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            let produced = h
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            for (i, rs) in produced {
                out[i] = Some(rs);
            }
        }
    });
    out.into_iter()
        .flat_map(|c| c.expect("every chunk index was claimed"))
        .collect()
}

/// Prometheus exposition for sweep progress (strict-parse compatible
/// with [`noc_sim::parse_prometheus`]).
fn sweep_prom(sweep: &str, done: u64, total: u64) -> String {
    format!(
        "# HELP sweep_items_completed Sweep items finished so far.\n\
         # TYPE sweep_items_completed gauge\n\
         sweep_items_completed{{sweep=\"{sweep}\"}} {done}\n\
         # HELP sweep_items_total Sweep items in this run.\n\
         # TYPE sweep_items_total gauge\n\
         sweep_items_total{{sweep=\"{sweep}\"}} {total}\n"
    )
}

/// [`par_map`] with sweep-progress telemetry: each finished item ticks a
/// shared counter, and when an interval boundary passes, a Prometheus
/// exposition (items completed / total, labelled `sweep`) plus a
/// heartbeat record (whose `cycle` field counts items) land in `out`'s
/// directory. The results are identical to [`par_map`] — telemetry is a
/// side band off the work path (one mutex take per completed item).
pub fn par_map_telemetry<T, R, F>(
    items: Vec<T>,
    threads: Option<usize>,
    out: &mut noc_sim::TelemetryOut,
    sweep: &str,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;
    let total = items.len() as u64;
    let done = AtomicU64::new(0);
    let shared = Mutex::new(&mut *out);
    let (done_ref, shared_ref) = (&done, &shared);
    let results = par_map(items, threads, |item| {
        let r = f(item);
        let n = done_ref.fetch_add(1, Ordering::Relaxed) + 1;
        let mut guard = shared_ref.lock().expect("telemetry writer lock");
        if guard.due(n) {
            // Progress IO must never fail the sweep itself.
            let _ = guard.write_now(n, &sweep_prom(sweep, n, total), None, 0);
        }
        r
    });
    let n = done.load(Ordering::Relaxed);
    let _ = out.write_now(n, &sweep_prom(sweep, n, total), None, 0);
    results
}

/// Magic prefix of a per-item sweep result file.
const RESULT_MAGIC: &[u8; 8] = b"NOCRES\0\0";

/// Crash-safe variant of [`par_map`]: each item's result is persisted to
/// `dir/item-NNNNNN.res` (checksummed, written atomically) the moment it
/// is computed, and items whose result file already parses are **not**
/// recomputed on a rerun. Kill the sweep at any point and run it again
/// with the same items and directory: only the missing tail is redone.
///
/// `encode`/`decode` serialize one result; `decode` returning `None`
/// marks the file corrupt (truncated write, bad checksum survives the CRC
/// only if `decode` rejects it), and that item is recomputed.
pub fn par_map_checkpointed<T, R, F>(
    items: Vec<T>,
    threads: Option<usize>,
    dir: &Path,
    encode: impl Fn(&R) -> Vec<u8> + Sync,
    decode: impl Fn(&mut &[u8]) -> Option<R> + Sync,
    f: F,
) -> std::io::Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::fs::create_dir_all(dir)?;
    let mut done: Vec<Option<R>> = Vec::with_capacity(items.len());
    let mut todo: Vec<(usize, T)> = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        match read_result(&result_path(dir, i), &decode) {
            Some(r) => done.push(Some(r)),
            None => {
                done.push(None);
                todo.push((i, item));
            }
        }
    }
    let computed = par_map(todo, threads, |(i, item)| {
        let r = f(item);
        // Persist before handing the result back: a crash after this
        // point costs nothing, a crash before it re-runs only this item.
        write_result(&result_path(dir, i), &encode(&r))
            .map(|()| (i, r))
            .map_err(|e| (i, e))
    });
    for c in computed {
        match c {
            Ok((i, r)) => done[i] = Some(r),
            Err((i, e)) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("persisting sweep item {i}: {e}"),
                ))
            }
        }
    }
    Ok(done
        .into_iter()
        .map(|r| r.expect("every item resumed or computed"))
        .collect())
}

fn result_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("item-{index:06}.res"))
}

/// Parse a persisted result; `None` on any corruption (recompute).
fn read_result<R>(path: &Path, decode: &(impl Fn(&mut &[u8]) -> Option<R> + Sync)) -> Option<R> {
    let bytes = std::fs::read(path).ok()?;
    let body = bytes.strip_prefix(RESULT_MAGIC)?;
    let (crc_bytes, payload) = body.split_at_checked(8)?;
    let crc = u64::from_le_bytes(crc_bytes.try_into().ok()?);
    if noc_sim::snapshot::crc64(payload) != crc {
        return None;
    }
    let mut input = payload;
    let r = decode(&mut input)?;
    input.is_empty().then_some(r)
}

/// Atomically persist one result: temp sibling + fsync + rename, so a
/// crash mid-write leaves either no file or a complete one.
fn write_result(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(RESULT_MAGIC);
    bytes.extend_from_slice(&noc_sim::snapshot::crc64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), Some(8), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_with_uneven_chunks() {
        // 103 items over 8 workers: 32 chunk slots, ragged final chunk.
        let out = par_map((0..103).collect(), Some(8), |x: i32| x - 7);
        assert_eq!(out, (0..103).map(|x| x - 7).collect::<Vec<_>>());
        // Fewer items than workers: every chunk is a single item.
        let out = par_map((0..3).collect(), Some(8), |x: i32| x + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), None, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_fallback() {
        let out = par_map(vec![1, 2, 3], Some(1), |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn propagates_worker_panics() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map((0..64).collect(), Some(4), |x: i32| {
                assert_ne!(x, 13, "unlucky");
                x
            })
        }));
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        par_map((0..16).collect(), Some(4), |_: i32| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "no observed overlap");
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("htnoc-sweep-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn enc(r: &u64) -> Vec<u8> {
        r.to_le_bytes().to_vec()
    }

    fn dec(input: &mut &[u8]) -> Option<u64> {
        noc_sim::snapshot::take_u64(input)
    }

    #[test]
    fn checkpointed_sweep_resumes_without_recomputing() {
        let dir = scratch_dir("resume");
        let calls = AtomicUsize::new(0);
        let run = |items: Vec<u64>| {
            par_map_checkpointed(items, Some(4), &dir, enc, dec, |x| {
                calls.fetch_add(1, Ordering::SeqCst);
                x * x
            })
            .unwrap()
        };
        let expect: Vec<u64> = (0..40).map(|x| x * x).collect();
        assert_eq!(run((0..40).collect()), expect);
        assert_eq!(calls.load(Ordering::SeqCst), 40);
        // Second pass over the same directory: every result is replayed
        // from disk, nothing recomputes.
        assert_eq!(run((0..40).collect()), expect);
        assert_eq!(calls.load(Ordering::SeqCst), 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_sweep_recomputes_corrupt_results() {
        let dir = scratch_dir("corrupt");
        let first =
            par_map_checkpointed((0..8).collect(), Some(2), &dir, enc, dec, |x: u64| x + 100)
                .unwrap();
        assert_eq!(first[3], 103);
        // A torn write (here: garbage) must not be trusted on resume.
        std::fs::write(result_path(&dir, 3), b"torn").unwrap();
        let calls = AtomicUsize::new(0);
        let second = par_map_checkpointed((0..8).collect(), Some(2), &dir, enc, dec, |x: u64| {
            calls.fetch_add(1, Ordering::SeqCst);
            x + 100
        })
        .unwrap();
        assert_eq!(second, first);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "only the torn item reruns");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn works_with_simulation_runs() {
        use crate::scenario::{Scenario, Strategy};
        use noc_traffic::AppSpec;
        let mut scenarios = Vec::new();
        for seed in 0..4u64 {
            let mut sc =
                Scenario::paper_default(AppSpec::ferret(), Strategy::Unprotected).with_seed(seed);
            sc.warmup = 50;
            sc.inject_until = 150;
            sc.max_cycles = 3000;
            scenarios.push(sc);
        }
        let results = par_map(scenarios, None, |sc| crate::experiment::run_scenario(&sc));
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.drained));
    }
}
