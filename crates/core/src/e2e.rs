//! The Fort-NoCs-style **end-to-end obfuscation** baseline.
//!
//! Fort-NoCs scrambles packet *data* between source and destination network
//! interfaces. Routing information — source, destination, VC — must remain
//! readable by every router on the path, so it cannot be scrambled
//! end-to-end. A TASP comparator keyed on the destination field therefore
//! still sees its target on every hop: **e2e obfuscation fails against
//! header-targeting link trojans**, which is exactly the premise of the
//! paper's Fig. 11(a). A memory-address-targeting trojan, in contrast, is
//! defeated (the address field is scrambled), up to the residual risk of a
//! scrambled value *accidentally* matching the target ("masking an
//! unintended target").

use noc_sim::TrafficSource;
use noc_types::Packet;

/// Wraps a traffic source, scrambling the memory-address field of every
/// packet with a keyed permutation (and leaving src/dest/vc plaintext, as
/// any e2e scheme must).
pub struct E2eObfuscation<S> {
    inner: S,
    key: u32,
}

impl<S> E2eObfuscation<S> {
    /// Wrap a source, scrambling memory addresses with `key`.
    pub fn new(inner: S, key: u32) -> Self {
        Self { inner, key }
    }

    /// The scrambled wire value of a memory address under this key.
    pub fn scramble_mem(&self, mem: u32) -> u32 {
        // xorshift-style keyed mix — bijective, so the destination NI can
        // recover the address.
        let mut v = mem ^ self.key;
        v ^= v << 13;
        v ^= v >> 17;
        v ^= v << 5;
        v
    }

    /// Inverse of [`Self::scramble_mem`].
    pub fn unscramble_mem(&self, wire: u32) -> u32 {
        // Invert the xorshift steps in reverse order.
        let mut v = wire;
        // Invert v ^= v << 5.
        v = invert_xorshift_left(v, 5);
        // Invert v ^= v >> 17.
        v = invert_xorshift_right(v, 17);
        // Invert v ^= v << 13.
        v = invert_xorshift_left(v, 13);
        v ^ self.key
    }
}

/// Solve `x ^ (x << k) == v` for `x` by fixed-point iteration (converges
/// in ⌈32/k⌉ steps because each step fixes k more low bits).
fn invert_xorshift_left(v: u32, k: u32) -> u32 {
    let mut x = v;
    for _ in 0..(32 / k + 1) {
        x = v ^ (x << k);
    }
    x
}

fn invert_xorshift_right(v: u32, k: u32) -> u32 {
    let mut x = v;
    for _ in 0..(32 / k + 1) {
        x = v ^ (x >> k);
    }
    x
}

impl<S: TrafficSource> TrafficSource for E2eObfuscation<S> {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let start = out.len();
        self.inner.poll(cycle, out);
        for p in &mut out[start..] {
            p.mem_addr = self.scramble_mem(p.mem_addr);
        }
    }

    fn done(&self) -> bool {
        self.inner.done()
    }

    // Scrambling rewrites packets but never creates or delays them, so
    // the inner source's lookahead holds verbatim.
    fn next_injection_at(&self, now: u64) -> Option<u64> {
        self.inner.next_injection_at(now)
    }

    fn skip_to(&mut self, to: u64) {
        self.inner.skip_to(to);
    }

    // The scrambling key is construction state, not progress: the cursor
    // is exactly the inner source's.
    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.inner.save_cursor(out);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        self.inner.load_cursor(input);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::{Pattern, SyntheticTraffic};
    use noc_trojan::TargetSpec;
    use noc_types::{Mesh, NodeId};

    #[test]
    fn scramble_is_bijective() {
        let e = E2eObfuscation::new(NoSource, 0xDEAD_BEEF);
        for mem in [0u32, 1, 0xFFFF_FFFF, 0x1234_5678, 0x8000_0000] {
            assert_eq!(e.unscramble_mem(e.scramble_mem(mem)), mem, "{mem:#x}");
        }
    }

    struct NoSource;
    impl TrafficSource for NoSource {
        fn poll(&mut self, _c: u64, _o: &mut Vec<Packet>) {}
    }

    #[test]
    fn mem_field_is_scrambled_but_route_fields_are_not() {
        let mesh = Mesh::paper();
        let inner = SyntheticTraffic::new(mesh.clone(), Pattern::Hotspot(vec![NodeId(3)]), 1.0, 1);
        let mut plain = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![NodeId(3)]), 1.0, 1);
        let mut e2e = E2eObfuscation::new(inner, 0x5555_AAAA);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        e2e.poll(0, &mut a);
        plain.poll(0, &mut b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dest, y.dest);
            assert_eq!(x.vc, y.vc);
            assert_ne!(x.mem_addr, y.mem_addr, "mem must be scrambled");
        }
    }

    #[test]
    fn dest_targeting_trojan_still_matches_under_e2e() {
        // The baseline's failure mode: headers can't be hidden end-to-end.
        let mesh = Mesh::paper();
        let inner = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![NodeId(3)]), 1.0, 1);
        let mut e2e = E2eObfuscation::new(inner, 0x1357_9BDF);
        let mut out = Vec::new();
        e2e.poll(0, &mut out);
        let target = TargetSpec::dest(3);
        assert!(!out.is_empty());
        assert!(out.iter().all(|p| target.matches_header(&p.header())));
    }

    #[test]
    fn mem_targeting_trojan_is_defeated_by_e2e() {
        let mesh = Mesh::paper();
        let inner = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![NodeId(3)]), 1.0, 7);
        let mut e2e = E2eObfuscation::new(inner, 0x0F0F_F0F0);
        let mut out = Vec::new();
        for c in 0..50 {
            e2e.poll(c, &mut out);
        }
        // A trojan watching a narrow plaintext range almost never matches
        // the scrambled addresses.
        let target = TargetSpec::mem_range(0x1000_0000..=0x1000_FFFF);
        let matches = out
            .iter()
            .filter(|p| target.matches_header(&p.header()))
            .count();
        assert!(
            matches * 100 < out.len(),
            "{matches}/{} scrambled packets matched",
            out.len()
        );
    }
}
