//! The Ariadne-style **rerouting** baseline: once links are flagged (by
//! BIST or by policy), disable them and rebuild deadlock-free routing
//! tables so all traffic detours around the infected hardware. The cost is
//! extra hops and lost path diversity — exactly what Fig. 10 charges this
//! baseline with.

use noc_sim::routing::{RouteTables, Routing};
use noc_sim::Simulator;
use noc_types::{LinkId, Mesh};

/// Build the table-based routing that avoids `dead` links, using the
/// deadlock-free up*/down* construction (what Ariadne reconfigures to).
///
/// Returns `None` if removing those links disconnects the mesh (the
/// baseline cannot run; the paper's infection fractions never disconnect a
/// 4×4 mesh, but callers must handle the general case).
pub fn routes_avoiding(mesh: &Mesh, dead: &[LinkId]) -> Option<RouteTables> {
    let tables = RouteTables::build_updown(mesh, dead)?;
    tables.fully_connected().then_some(tables)
}

/// Configure a simulator for the rerouting baseline: infected links are
/// disabled outright and tables steer around them.
pub fn apply_reroute(sim: &mut Simulator, dead: &[LinkId]) -> bool {
    let Some(tables) = routes_avoiding(sim.mesh(), dead) else {
        return false;
    };
    sim.set_routing(Routing::Table(tables));
    sim.set_dead_links(dead.to_vec());
    true
}

/// Average hop inflation caused by avoiding `dead` links: mean shortest
/// path with detours over mean Manhattan distance, across all pairs.
pub fn hop_inflation(mesh: &Mesh, dead: &[LinkId]) -> Option<f64> {
    let tables = routes_avoiding(mesh, dead)?;
    let mut base = 0u64;
    let mut detour = 0u64;
    for s in 0..mesh.routers() {
        for d in 0..mesh.routers() {
            if s == d {
                continue;
            }
            let s = noc_types::NodeId(s as u16);
            let d = noc_types::NodeId(d as u16);
            base += mesh.hop_distance(s, d) as u64;
            detour += tables.path_len(mesh, s, d)? as u64;
        }
    }
    Some(detour as f64 / base as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Direction, NodeId};

    #[test]
    fn no_dead_links_means_no_inflation() {
        let mesh = Mesh::paper();
        assert_eq!(hop_inflation(&mesh, &[]), Some(1.0));
    }

    #[test]
    fn dead_links_inflate_paths() {
        let mesh = Mesh::paper();
        let dead = vec![
            mesh.link_out(NodeId(5), Direction::East).unwrap(),
            mesh.link_out(NodeId(6), Direction::North).unwrap(),
        ];
        let inflation = hop_inflation(&mesh, &dead).unwrap();
        assert!(inflation > 1.0, "{inflation}");
        assert!(inflation < 1.5, "two links cannot devastate a 4×4 mesh");
    }

    #[test]
    fn disconnection_is_detected() {
        // Cut both links of the only neighbour pair in a 1×2 mesh.
        let mesh = Mesh::new(2, 1, 1);
        let dead: Vec<LinkId> = mesh.all_links().collect();
        assert!(routes_avoiding(&mesh, &dead).is_none());
        assert!(hop_inflation(&mesh, &dead).is_none());
    }

    #[test]
    fn apply_reroute_configures_the_simulator() {
        use noc_sim::SimConfig;
        let mut sim = Simulator::new(SimConfig::paper());
        let dead = vec![sim.mesh().link_out(NodeId(0), Direction::East).unwrap()];
        assert!(apply_reroute(&mut sim, &dead));
    }
}
