//! Golden determinism tests: fixed-seed runs of the baseline and
//! trojan-flood scenarios must produce byte-identical `SimStats` (and,
//! with tracing armed, byte-identical canonical JSONL) across runs —
//! and across hot-path rewrites such as the active-set optimisation.
//!
//! The golden files under `tests/golden/` were recorded against the
//! pre-optimisation simulator; any divergence means a behavioural (not
//! just performance) change. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p htnoc-core --test golden_determinism`.

use htnoc_core::campaign::trojan_flood_traced;
use htnoc_core::prelude::*;
use noc_sim::TraceConfig;
use noc_traffic::AppSpec;
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a 64-bit: a stable, dependency-free content fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `got` against the committed golden file, or rewrite it when
/// `UPDATE_GOLDEN` is set.
fn compare_or_update(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing: {} (record it with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: output diverged from the committed golden; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The baseline scenario: clean blackscholes traffic on the paper mesh,
/// no trojans armed, fixed seed — a pure hot-loop workout.
fn baseline_digest() -> String {
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::Unprotected);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 4_000;
    sc.snapshot_interval = 50;
    let result = run_scenario(&sc);
    let stats = format!("{:?}", result.stats);
    let mut out = String::new();
    writeln!(out, "cycles: {}", result.cycles).unwrap();
    writeln!(out, "drained: {}", result.drained).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

/// The trojan-flood scenario with the structured tracer armed: the
/// watchdog-guarded retransmission storm from the resilience campaign.
fn trojan_flood_digest() -> String {
    let (report, sim) = trojan_flood_traced(0x0D15_EA5E, TraceConfig::default());
    let stats = format!("{:?}", sim.stats());
    let tracer = sim.tracer().expect("tracing was armed");
    let mut jsonl = String::new();
    let mut lines = 0usize;
    for rec in tracer.records() {
        jsonl.push_str(&rec.to_jsonl());
        jsonl.push('\n');
        lines += 1;
    }
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "stalls: {}", report.stalls.len()).unwrap();
    writeln!(out, "quarantined_links: {}", report.quarantined_links).unwrap();
    writeln!(out, "trace_lines: {lines}").unwrap();
    writeln!(out, "trace_fnv64: {:016x}", fnv64(jsonl.as_bytes())).unwrap();
    writeln!(out, "stats_bytes: {}", stats.len()).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    // The full stats Debug string runs to megabytes (one snapshot per
    // cycle); the fingerprint above pins it, the head keeps diffs legible.
    let head_end = stats
        .char_indices()
        .nth(400)
        .map_or(stats.len(), |(i, _)| i);
    writeln!(out, "stats_head: {}", &stats[..head_end]).unwrap();
    out
}

#[test]
fn baseline_fixed_seed_is_golden() {
    let first = baseline_digest();
    let second = baseline_digest();
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("baseline_stats.txt", &first);
}

#[test]
fn trojan_flood_fixed_seed_is_golden() {
    let first = trojan_flood_digest();
    let second = trojan_flood_digest();
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("trojan_flood.txt", &first);
}
