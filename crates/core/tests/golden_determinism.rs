//! Golden determinism tests: fixed-seed runs of the baseline and
//! trojan-flood scenarios must produce byte-identical `SimStats` (and,
//! with tracing armed, byte-identical canonical JSONL) across runs —
//! and across hot-path rewrites such as the active-set optimisation.
//!
//! The golden files under `tests/golden/` were recorded against the
//! pre-optimisation simulator; any divergence means a behavioural (not
//! just performance) change. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p htnoc-core --test golden_determinism`.
//!
//! The `*_parallel_matches_sequential_golden` tests re-run each scenario
//! on the sharded cycle engine at 2, 4, and 8 worker threads and require
//! byte-identity with the *committed sequential* golden — the parallel
//! path can never regenerate a golden, only match one.

use htnoc_core::campaign::trojan_flood_traced_threads;
use htnoc_core::prelude::*;
use noc_sim::TraceConfig;
use noc_traffic::AppSpec;
use noc_types::Direction;
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a 64-bit: a stable, dependency-free content fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `got` against the committed golden file, or rewrite it when
/// `UPDATE_GOLDEN` is set.
fn compare_or_update(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing: {} (record it with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: output diverged from the committed golden; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Verify a thread-sweep digest against the committed sequential golden.
/// Never rewrites the file: goldens are only ever recorded sequentially.
fn assert_matches_sequential_golden(name: &str, threads: usize, got: &str) {
    let path = golden_path(name);
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing: {} (record it sequentially with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: {threads}-thread sharded run diverged from the committed \
         sequential golden — the parallel engine must be bit-identical"
    );
}

/// The baseline scenario: clean blackscholes traffic on the paper mesh,
/// no trojans armed, fixed seed — a pure hot-loop workout.
fn baseline_digest(threads: usize) -> String {
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::Unprotected)
        .with_threads(threads);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 4_000;
    sc.snapshot_interval = 50;
    let result = run_scenario(&sc);
    let stats = format!("{:?}", result.stats);
    let mut out = String::new();
    writeln!(out, "cycles: {}", result.cycles).unwrap();
    writeln!(out, "drained: {}", result.drained).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

/// The trojan-flood scenario with the structured tracer armed: the
/// watchdog-guarded retransmission storm from the resilience campaign.
fn trojan_flood_digest(threads: usize) -> String {
    let (report, sim) = trojan_flood_traced_threads(0x0D15_EA5E, TraceConfig::default(), threads);
    let stats = format!("{:?}", sim.stats());
    let tracer = sim.tracer().expect("tracing was armed");
    let mut jsonl = String::new();
    let mut lines = 0usize;
    for rec in tracer.records() {
        jsonl.push_str(&rec.to_jsonl());
        jsonl.push('\n');
        lines += 1;
    }
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "stalls: {}", report.stalls.len()).unwrap();
    writeln!(out, "quarantined_links: {}", report.quarantined_links).unwrap();
    writeln!(out, "trace_lines: {lines}").unwrap();
    writeln!(out, "trace_fnv64: {:016x}", fnv64(jsonl.as_bytes())).unwrap();
    writeln!(out, "stats_bytes: {}", stats.len()).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    // The full stats Debug string runs to megabytes (one snapshot per
    // cycle); the fingerprint above pins it, the head keeps diffs legible.
    let head_end = stats
        .char_indices()
        .nth(400)
        .map_or(stats.len(), |(i, _)| i);
    writeln!(out, "stats_head: {}", &stats[..head_end]).unwrap();
    out
}

/// The three busiest feeder links of the blackscholes primary (corner
/// router 0): each carries a steady stream of target-dest headers, so a
/// TASP comparator mounted there fires constantly.
fn primary_feeder_links() -> Vec<LinkId> {
    let mesh = Mesh::paper();
    // XY routing funnels dest-0 traffic through 2→1→0 along row 0 and
    // down the 4→0 column hop; every one of these hops sees the target
    // header stream.
    [
        (NodeId(1), Direction::West),  // 1 → 0
        (NodeId(4), Direction::South), // 4 → 0
        (NodeId(2), Direction::West),  // 2 → 1
    ]
    .into_iter()
    .map(|(n, d)| mesh.link_out(n, d).expect("paper-mesh feeder hop"))
    .collect()
}

/// Three TASP trojans on distinct links under the paper's S2S L-Ob
/// mitigation: the detectors must classify and obfuscate around all of
/// them at once, and the whole dance must be fingerprint-stable.
fn multi_trojan_digest(threads: usize) -> String {
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
        .with_infected(primary_feeder_links())
        .with_threads(threads);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 6_000;
    sc.snapshot_interval = 50;
    let result = run_scenario(&sc);
    let stats = format!("{:?}", result.stats);
    let mut out = String::new();
    writeln!(out, "cycles: {}", result.cycles).unwrap();
    writeln!(out, "drained: {}", result.drained).unwrap();
    writeln!(out, "injected: {}", result.stats.injected_packets).unwrap();
    writeln!(out, "delivered: {}", result.stats.delivered_packets).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

/// Mid-run link quarantine with the automatic up*/down* reroute: arm a
/// trojan on a hot link, let the storm build, then kill the link and make
/// the survivors finish over the rebuilt routes. Pins both the purge's
/// credit settlement and the rerouted drain.
fn quarantine_reroute_digest(threads: usize) -> String {
    let infected = primary_feeder_links()[0];
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
        .with_infected(vec![infected]);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 6_000;
    sc.snapshot_interval = 50;
    let mut sim = sc.build_sim();
    // Exercises the runtime re-sharding path rather than the config knob.
    sim.set_threads(threads);
    let mut traffic = sc.build_traffic(sim.mesh());
    sim.run(sc.warmup, traffic.as_mut());
    sim.arm_trojans(true);
    // Let the attack play out, then kill the infected link mid-traffic:
    // the purge settles whatever is committed to it and the rebuilt
    // up*/down* routes must carry the rest of the workload.
    while sim.cycle() < 400 {
        sim.step(traffic.as_mut());
    }
    sim.quarantine_link(infected)
        .expect("the paper mesh survives one dead link");
    while sim.cycle() < sc.max_cycles {
        sim.step(traffic.as_mut());
        if traffic.done() && sim.is_quiescent() {
            break;
        }
    }
    // The conformance invariant oracles must hold after purge + reroute.
    let violations = sim.check_network_invariants();
    let stats = format!("{:?}", sim.stats());
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "quiescent: {}", sim.is_quiescent()).unwrap();
    writeln!(out, "invariant_violations: {}", violations.len()).unwrap();
    writeln!(out, "injected: {}", sim.stats().injected_packets).unwrap();
    writeln!(out, "delivered: {}", sim.stats().delivered_packets).unwrap();
    writeln!(out, "quarantined_links: {}", sim.stats().quarantined_links).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

/// Thread counts the sharded engine must reproduce bit-for-bit.
const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

#[test]
fn baseline_fixed_seed_is_golden() {
    let first = baseline_digest(1);
    let second = baseline_digest(1);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("baseline_stats.txt", &first);
}

#[test]
fn baseline_parallel_matches_sequential_golden() {
    for t in THREAD_SWEEP {
        assert_matches_sequential_golden("baseline_stats.txt", t, &baseline_digest(t));
    }
}

#[test]
fn trojan_flood_fixed_seed_is_golden() {
    let first = trojan_flood_digest(1);
    let second = trojan_flood_digest(1);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("trojan_flood.txt", &first);
}

#[test]
fn trojan_flood_parallel_matches_sequential_golden() {
    for t in THREAD_SWEEP {
        assert_matches_sequential_golden("trojan_flood.txt", t, &trojan_flood_digest(t));
    }
}

#[test]
fn multi_trojan_fixed_seed_is_golden() {
    let first = multi_trojan_digest(1);
    let second = multi_trojan_digest(1);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("multi_trojan.txt", &first);
}

#[test]
fn multi_trojan_parallel_matches_sequential_golden() {
    for t in THREAD_SWEEP {
        assert_matches_sequential_golden("multi_trojan.txt", t, &multi_trojan_digest(t));
    }
}

#[test]
fn quarantine_reroute_fixed_seed_is_golden() {
    let first = quarantine_reroute_digest(1);
    let second = quarantine_reroute_digest(1);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("quarantine_reroute.txt", &first);
}

#[test]
fn quarantine_reroute_parallel_matches_sequential_golden() {
    for t in THREAD_SWEEP {
        assert_matches_sequential_golden(
            "quarantine_reroute.txt",
            t,
            &quarantine_reroute_digest(t),
        );
    }
}
