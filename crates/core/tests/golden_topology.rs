//! Golden determinism tests for the non-mesh topologies: fixed-seed
//! runs on a 4×4 torus (clean baseline and a trojan flood mounted on a
//! wrap link) must produce byte-identical digests across worker-thread
//! counts {1, 4, 8} *and* with quiescence-aware cycle skipping on or
//! off — the dateline VC classes and table routing must not perturb the
//! sharded engine's bit-identity contract. A fault-degraded mesh runs
//! the mid-run quarantine dance through a checkpoint/restore boundary
//! and must land on the same golden as the uninterrupted run.
//!
//! Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p htnoc-core --test golden_topology`
//! (only the sequential, skip-on, uninterrupted arms ever record).

use htnoc_core::prelude::*;
use noc_sim::{SimSnapshot, Simulator, TrafficSource};
use noc_traffic::AppSpec;
use noc_types::Direction;
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a 64-bit: a stable, dependency-free content fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `got` against the committed golden file, or rewrite it when
/// `UPDATE_GOLDEN` is set.
fn compare_or_update(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing: {} (record it with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: output diverged from the committed golden; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Compare-only: sweep arms (threads > 1, skip off, checkpointed) must
/// match the committed golden and can never rewrite it.
fn assert_matches_committed_golden(name: &str, arm: &str, got: &str) {
    let path = golden_path(name);
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing: {} (record it with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: the {arm} arm diverged from the committed golden — every \
         arm must be bit-identical to the sequential skip-on recording"
    );
}

/// The paper's 4×4 fabric closed into a torus.
fn torus() -> Mesh {
    Mesh::new_torus(4, 4, 1)
}

/// The torus wrap feeder of the blackscholes primary (router 0): on the
/// 4×4 torus the wrap-minimal tables send dest-0 traffic from column 3
/// over the 3→0 East wrap hop, so a TASP comparator mounted there sees a
/// steady target-header stream — through a link that plain meshes do not
/// even have.
fn torus_wrap_feeder() -> LinkId {
    torus()
        .link_out(NodeId(3), Direction::East)
        .expect("the torus has an East wrap hop on every row")
}

/// Shared driver: warm up, arm the trojans, then run in fixed 64-cycle
/// slices with a quiescence early-out. The slice deadlines are the same
/// whether cycle skipping is on or off, so both arms observe the
/// identical schedule and must finish on the identical cycle.
fn digest(sc: &Scenario, threads: usize, skip: bool) -> String {
    let mut sim = sc.build_sim();
    sim.set_threads(threads);
    sim.set_fast_forward(skip);
    let mut traffic = sc.build_traffic(sim.mesh());
    sim.run(sc.warmup, traffic.as_mut());
    sim.arm_trojans(true);
    while sim.cycle() < sc.max_cycles {
        let slice = 64.min(sc.max_cycles - sim.cycle());
        sim.run(slice, traffic.as_mut());
        if traffic.done() && sim.is_quiescent() {
            break;
        }
    }
    let violations = sim.check_network_invariants();
    let stats = format!("{:?}", sim.stats());
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "quiescent: {}", sim.is_quiescent()).unwrap();
    writeln!(out, "invariant_violations: {}", violations.len()).unwrap();
    writeln!(out, "injected: {}", sim.stats().injected_packets).unwrap();
    writeln!(out, "delivered: {}", sim.stats().delivered_packets).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

/// Clean blackscholes traffic on the torus: the dateline VC classes and
/// wrap-minimal tables carry the whole workload, no trojans mounted.
fn torus_baseline_scenario() -> Scenario {
    let mut sc =
        Scenario::paper_default(AppSpec::blackscholes(), Strategy::Unprotected).with_mesh(torus());
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 4_000;
    sc.snapshot_interval = 50;
    sc
}

/// The trojan flood relocated onto the torus: a TASP comparator on the
/// 3→0 East wrap hop under the paper's S2S L-Ob mitigation.
fn torus_flood_scenario() -> Scenario {
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
        .with_mesh(torus())
        .with_infected(vec![torus_wrap_feeder()]);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 6_000;
    sc.snapshot_interval = 50;
    sc
}

/// Thread counts the sharded engine must reproduce bit-for-bit on the
/// new topologies (ISSUE acceptance: {1, 4, 8}).
const THREAD_SWEEP: [usize; 3] = [1, 4, 8];

#[test]
fn torus_baseline_fixed_seed_is_golden() {
    let sc = torus_baseline_scenario();
    let first = digest(&sc, 1, true);
    let second = digest(&sc, 1, true);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("torus_baseline.txt", &first);
}

#[test]
fn torus_baseline_matches_golden_across_threads_and_skip() {
    let sc = torus_baseline_scenario();
    for t in THREAD_SWEEP {
        for skip in [true, false] {
            let arm = format!("threads={t} skip={skip}");
            assert_matches_committed_golden("torus_baseline.txt", &arm, &digest(&sc, t, skip));
        }
    }
}

#[test]
fn torus_flood_fixed_seed_is_golden() {
    let sc = torus_flood_scenario();
    let first = digest(&sc, 1, true);
    let second = digest(&sc, 1, true);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("torus_flood.txt", &first);
}

#[test]
fn torus_flood_matches_golden_across_threads_and_skip() {
    let sc = torus_flood_scenario();
    for t in THREAD_SWEEP {
        for skip in [true, false] {
            let arm = format!("threads={t} skip={skip}");
            assert_matches_committed_golden("torus_flood.txt", &arm, &digest(&sc, t, skip));
        }
    }
}

// ---------------------------------------------------------------------
// Degraded-mesh quarantine through a checkpoint boundary
// ---------------------------------------------------------------------

/// A 4×4 mesh that has already lost two interior adjacencies (5–6 and
/// 9–13) before the run starts: routing comes from the up*/down* tables
/// rather than XY, and the mid-run quarantine must reroute around the
/// freshly dead link *and* the static faults at once.
fn degraded() -> Mesh {
    Mesh::new_degraded(
        4,
        4,
        1,
        &[(NodeId(5), Direction::East), (NodeId(9), Direction::North)],
    )
}

/// The infected feeder on the degraded mesh: the 1→0 hop into the
/// blackscholes primary, killed at cycle 400.
fn degraded_feeder() -> LinkId {
    degraded()
        .link_out(NodeId(1), Direction::West)
        .expect("the 1->0 hop survives the static degradation")
}

fn degraded_quarantine_scenario() -> Scenario {
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
        .with_mesh(degraded())
        .with_infected(vec![degraded_feeder()]);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 6_000;
    sc.snapshot_interval = 50;
    sc
}

/// Step until `stop_at` (or the scenario ends), keying the arm and the
/// cycle-400 link kill off the cycle counter so a resumed run never
/// repeats or skips them (both ride in the snapshot).
fn drive(
    sim: &mut Simulator,
    traffic: &mut dyn TrafficSource,
    sc: &Scenario,
    quarantine_at_400: LinkId,
    stop_at: u64,
) -> bool {
    while sim.cycle() < stop_at.min(sc.max_cycles) {
        let now = sim.cycle();
        if now == sc.warmup {
            sim.arm_trojans(true);
        }
        if now == 400 {
            sim.quarantine_link(quarantine_at_400)
                .expect("the degraded mesh survives one more dead link");
        }
        sim.step(traffic);
        if traffic.done() && sim.is_quiescent() {
            return true;
        }
    }
    false
}

/// Serialize (sim + traffic cursor) through the byte format, tear both
/// down, and bring them back in fresh instances built from the scenario.
fn checkpoint_roundtrip(
    sc: &Scenario,
    sim: Simulator,
    traffic: Box<dyn TrafficSource>,
) -> (Simulator, Box<dyn TrafficSource>) {
    let mut snap = sim.snapshot();
    let mut cursor = Vec::new();
    traffic.save_cursor(&mut cursor);
    snap.set_user_data(cursor);
    let bytes = snap.to_bytes();
    drop(sim);
    drop(traffic);

    let snap = SimSnapshot::from_bytes(&bytes).expect("checkpoint decodes");
    let mut sim = sc.build_sim();
    sim.restore(&snap).expect("checkpoint restores");
    let mut traffic = sc.build_traffic(sim.mesh());
    let mut cursor = snap.user_data();
    traffic.load_cursor(&mut cursor);
    assert!(cursor.is_empty(), "traffic cursor fully consumed");
    (sim, traffic)
}

/// The degraded-mesh quarantine run, optionally interrupted at `ckpt_at`
/// by a full serialize → tear down → restore round-trip.
fn degraded_quarantine_digest(ckpt_at: Option<u64>) -> String {
    let sc = degraded_quarantine_scenario();
    let infected = degraded_feeder();
    let mut sim = sc.build_sim();
    sim.set_threads(1);
    let mut traffic = sc.build_traffic(sim.mesh());
    if let Some(at) = ckpt_at {
        let finished = drive(&mut sim, traffic.as_mut(), &sc, infected, at);
        assert!(!finished, "the scenario must still be live at cycle {at}");
        (sim, traffic) = checkpoint_roundtrip(&sc, sim, traffic);
    }
    drive(&mut sim, traffic.as_mut(), &sc, infected, u64::MAX);

    let violations = sim.check_network_invariants();
    let stats = format!("{:?}", sim.stats());
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "quiescent: {}", sim.is_quiescent()).unwrap();
    writeln!(out, "invariant_violations: {}", violations.len()).unwrap();
    writeln!(out, "injected: {}", sim.stats().injected_packets).unwrap();
    writeln!(out, "delivered: {}", sim.stats().delivered_packets).unwrap();
    writeln!(out, "quarantined_links: {}", sim.stats().quarantined_links).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

#[test]
fn degraded_quarantine_fixed_seed_is_golden() {
    let first = degraded_quarantine_digest(None);
    let second = degraded_quarantine_digest(None);
    assert_eq!(first, second, "two in-process runs must be byte-identical");
    compare_or_update("degraded_quarantine.txt", &first);
}

#[test]
fn degraded_quarantine_checkpoint_resume_matches_golden() {
    // Mid-storm (before the link kill) and mid-reroute (after it; the
    // run quiesces at cycle 800, so both land inside the live window).
    for ckpt_at in [300, 600] {
        let arm = format!("checkpoint@{ckpt_at}");
        assert_matches_committed_golden(
            "degraded_quarantine.txt",
            &arm,
            &degraded_quarantine_digest(Some(ckpt_at)),
        );
    }
}
