//! Parallel steady-state allocation gate: the sharded cycle engine must
//! be as heap-quiet as the sequential one. Shard planning, per-shard
//! effect buffers, and the worker pool are one-time setup (the pool is
//! created lazily on the first multi-shard step); after warm-up, a
//! `step()` at `threads = 4` must perform zero heap allocations across
//! every worker — the counting allocator is process-global, so worker
//! threads are measured too.
//!
//! The counting allocator applies to this whole test binary, so the file
//! holds exactly one test (the sequential gate lives in its own binary,
//! `alloc_steady_state.rs`, for the same reason).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use noc_sim::sim::TrafficSource;
use noc_sim::{SimConfig, Simulator};
use noc_types::{NodeId, Packet, PacketId, VcId};

/// Wraps the system allocator and counts every heap operation that can
/// acquire memory (alloc, alloc_zeroed, realloc), on every thread.
struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic light uniform traffic (same shape as the sequential
/// gate's): one 4-flit packet every 4 cycles, heap-free injection.
struct Uniform {
    next_id: u64,
}

impl TrafficSource for Uniform {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        if !cycle.is_multiple_of(4) {
            return;
        }
        let src = (cycle / 4 * 7 % 16) as u16;
        let dest = (cycle / 4 * 5 + 3) as u16 % 16;
        let vc = VcId((cycle / 4 % 4) as u8);
        self.next_id += 1;
        out.push(Packet::new(
            PacketId(self.next_id),
            NodeId(src),
            NodeId(dest),
            vc,
            0,
            0,
            4,
            cycle,
        ));
    }
}

#[test]
fn parallel_steady_state_cycle_loop_is_allocation_free() {
    let mut cfg = SimConfig::paper();
    // Snapshots append to a time series by design; park them outside the
    // measurement window (cycle 0 only).
    cfg.snapshot_interval = u64::MAX;
    cfg.threads = Some(4);
    let mut sim = Simulator::new(cfg);
    assert_eq!(sim.threads(), 4, "paper mesh shards four ways");
    let mut src = Uniform { next_id: 0 };
    let mut events = Vec::new();

    // Warm up: spawn the worker pool (first multi-shard step) and grow
    // every queue, per-shard effect list, and scratch buffer to its
    // high-water mark.
    for _ in 0..3000 {
        sim.step(&mut src);
        events.clear();
        sim.drain_events_into(&mut events);
    }

    let before = ALLOC_OPS.load(Ordering::Relaxed);
    for _ in 0..2000 {
        sim.step(&mut src);
        events.clear();
        sim.drain_events_into(&mut events);
    }
    let delta = ALLOC_OPS.load(Ordering::Relaxed) - before;

    assert!(
        sim.stats().delivered_packets > 1000,
        "traffic must actually flow: {} packets",
        sim.stats().delivered_packets
    );
    assert_eq!(
        delta, 0,
        "parallel steady-state cycle loop performed {delta} heap allocations \
         over 2000 cycles at 4 threads"
    );
}
