//! Golden checkpoint/resume tests: a run that is snapshotted at cycle C,
//! torn down, restored into a fresh simulator (traffic cursor included),
//! and driven to completion must reproduce the *committed sequential
//! golden* byte-for-byte. Compare-only: like the parallel sweeps in
//! `golden_determinism.rs`, a checkpointed run can never regenerate a
//! golden, only match the one recorded by an uninterrupted run.

use htnoc_core::prelude::*;
use noc_sim::{SimSnapshot, Simulator, TrafficSource};
use noc_traffic::AppSpec;
use noc_types::Direction;
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a 64-bit: a stable, dependency-free content fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare-only: the checkpointed run must match the committed golden
/// that `golden_determinism.rs` records from uninterrupted runs.
fn assert_matches_committed_golden(name: &str, ckpt_at: u64, got: &str) {
    let path = golden_path(name);
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing: {} (record it with UPDATE_GOLDEN=1 via \
             golden_determinism.rs)",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: run checkpointed at cycle {ckpt_at} diverged from the \
         committed uninterrupted golden — restore is not bit-identical"
    );
}

/// Serialize (sim + traffic cursor) through the byte format, tear both
/// down, and bring them back in fresh instances built from the scenario.
fn checkpoint_roundtrip(
    sc: &Scenario,
    sim: Simulator,
    traffic: Box<dyn TrafficSource>,
) -> (Simulator, Box<dyn TrafficSource>) {
    let mut snap = sim.snapshot();
    let mut cursor = Vec::new();
    traffic.save_cursor(&mut cursor);
    snap.set_user_data(cursor);
    let bytes = snap.to_bytes();
    drop(sim);
    drop(traffic);

    let snap = SimSnapshot::from_bytes(&bytes).expect("checkpoint decodes");
    let mut sim = sc.build_sim();
    sim.restore(&snap).expect("checkpoint restores");
    let mut traffic = sc.build_traffic(sim.mesh());
    let mut cursor = snap.user_data();
    traffic.load_cursor(&mut cursor);
    assert!(cursor.is_empty(), "traffic cursor fully consumed");
    (sim, traffic)
}

/// The baseline golden scenario from `golden_determinism.rs`, driven
/// with an interruption at `ckpt_at`: warm up clean, arm (a no-op — no
/// trojans are mounted), inject until the schedule runs dry, drain.
fn baseline_checkpointed_digest(ckpt_at: u64) -> String {
    let mut sc =
        Scenario::paper_default(AppSpec::blackscholes(), Strategy::Unprotected).with_threads(1);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 4_000;
    sc.snapshot_interval = 50;

    let mut sim = sc.build_sim();
    let mut traffic = sc.build_traffic(sim.mesh());
    let mut finished = drive(&mut sim, traffic.as_mut(), &sc, None, ckpt_at);
    assert!(
        !finished,
        "the scenario must still be live at cycle {ckpt_at}"
    );
    let (mut sim, mut traffic) = checkpoint_roundtrip(&sc, sim, traffic);
    finished = drive(&mut sim, traffic.as_mut(), &sc, None, u64::MAX);
    let _ = finished;

    let stats = format!("{:?}", sim.stats());
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "drained: {}", sim.is_quiescent()).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

/// Step until `stop_at` (or the scenario ends), replaying the golden
/// driver's cycle-keyed actions: arm at the end of warm-up, quarantine
/// the infected link at cycle 400 when one is given. Keying the actions
/// off the cycle counter means a resumed run never repeats or skips
/// them — arming and quarantine state ride in the snapshot.
fn drive(
    sim: &mut Simulator,
    traffic: &mut dyn TrafficSource,
    sc: &Scenario,
    quarantine_at_400: Option<LinkId>,
    stop_at: u64,
) -> bool {
    while sim.cycle() < stop_at.min(sc.max_cycles) {
        let now = sim.cycle();
        if now == sc.warmup {
            sim.arm_trojans(true);
        }
        if now == 400 {
            if let Some(link) = quarantine_at_400 {
                sim.quarantine_link(link)
                    .expect("the paper mesh survives one dead link");
            }
        }
        sim.step(traffic);
        if traffic.done() && sim.is_quiescent() {
            return true;
        }
    }
    false
}

/// The busiest blackscholes feeder hop (1 → 0), as pinned by the
/// quarantine-reroute golden.
fn infected_link() -> LinkId {
    Mesh::paper()
        .link_out(NodeId(1), Direction::West)
        .expect("paper-mesh feeder hop")
}

/// The quarantine-reroute golden scenario with an interruption at
/// `ckpt_at`: trojan storm, mid-run link kill at cycle 400, rerouted
/// drain — the checkpoint lands either mid-storm (before the kill) or
/// mid-reroute (after it), and both must finish on the golden numbers.
fn quarantine_reroute_checkpointed_digest(ckpt_at: u64) -> String {
    let infected = infected_link();
    let mut sc = Scenario::paper_default(AppSpec::blackscholes(), Strategy::S2sLob)
        .with_infected(vec![infected]);
    sc.warmup = 200;
    sc.inject_until = 800;
    sc.max_cycles = 6_000;
    sc.snapshot_interval = 50;

    let mut sim = sc.build_sim();
    sim.set_threads(1);
    let mut traffic = sc.build_traffic(sim.mesh());
    let finished = drive(&mut sim, traffic.as_mut(), &sc, Some(infected), ckpt_at);
    assert!(
        !finished,
        "the scenario must still be live at cycle {ckpt_at}"
    );
    let (mut sim, mut traffic) = checkpoint_roundtrip(&sc, sim, traffic);
    drive(&mut sim, traffic.as_mut(), &sc, Some(infected), u64::MAX);

    let violations = sim.check_network_invariants();
    let stats = format!("{:?}", sim.stats());
    let mut out = String::new();
    writeln!(out, "cycles: {}", sim.cycle()).unwrap();
    writeln!(out, "quiescent: {}", sim.is_quiescent()).unwrap();
    writeln!(out, "invariant_violations: {}", violations.len()).unwrap();
    writeln!(out, "injected: {}", sim.stats().injected_packets).unwrap();
    writeln!(out, "delivered: {}", sim.stats().delivered_packets).unwrap();
    writeln!(out, "quarantined_links: {}", sim.stats().quarantined_links).unwrap();
    writeln!(out, "stats_fnv64: {:016x}", fnv64(stats.as_bytes())).unwrap();
    writeln!(out, "stats: {stats}").unwrap();
    out
}

#[test]
fn baseline_checkpoint_resume_matches_golden() {
    // Mid-warmup and mid-injection checkpoints.
    for ckpt_at in [150, 500] {
        assert_matches_committed_golden(
            "baseline_stats.txt",
            ckpt_at,
            &baseline_checkpointed_digest(ckpt_at),
        );
    }
}

#[test]
fn quarantine_reroute_checkpoint_resume_matches_golden() {
    // Mid-storm (before the link kill) and mid-reroute (after it).
    for ckpt_at in [300, 1_000] {
        assert_matches_committed_golden(
            "quarantine_reroute.txt",
            ckpt_at,
            &quarantine_reroute_checkpointed_digest(ckpt_at),
        );
    }
}
