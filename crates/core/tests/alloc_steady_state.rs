//! Steady-state allocation gate: once warmed up, the cycle loop must not
//! touch the heap at all. Every per-cycle buffer in the simulator is a
//! reusable scratch; this test catches any regression that reintroduces a
//! per-cycle `Vec`/`clone` on the hot path.
//!
//! The counting allocator applies to this whole test binary, so the file
//! holds exactly one test (no concurrent test threads to pollute the
//! counter during the measurement window).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use noc_sim::sim::TrafficSource;
use noc_sim::{SimConfig, Simulator};
use noc_types::{NodeId, Packet, PacketId, VcId};

/// Wraps the system allocator and counts every heap operation that can
/// acquire memory (alloc, alloc_zeroed, realloc). Frees are not counted:
/// returning memory is cheap and allocation-free steady state only
/// requires that no *new* memory is requested.
struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic light uniform traffic: one 4-flit packet every 4 cycles,
/// sources and destinations walking the mesh. `Packet::new` leaves the
/// payload empty (a zero-capacity `Vec` does not allocate), so injection
/// itself is heap-free.
struct Uniform {
    next_id: u64,
}

impl TrafficSource for Uniform {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        if !cycle.is_multiple_of(4) {
            return;
        }
        let src = (cycle / 4 * 7 % 16) as u8;
        let dest = (cycle / 4 * 5 + 3) as u8 % 16;
        let vc = VcId((cycle / 4 % 4) as u8);
        self.next_id += 1;
        out.push(Packet::new(
            PacketId(self.next_id),
            NodeId(src),
            NodeId(dest),
            vc,
            0,
            0,
            4,
            cycle,
        ));
    }
}

#[test]
fn steady_state_cycle_loop_is_allocation_free() {
    let mut cfg = SimConfig::paper();
    // Snapshots append to a time series by design; park them outside the
    // measurement window (cycle 0 only).
    cfg.snapshot_interval = u64::MAX;
    let mut sim = Simulator::new(cfg);
    let mut src = Uniform { next_id: 0 };
    let mut events = Vec::new();

    // Warm up: grow every queue, map, and scratch buffer to its
    // high-water mark.
    for _ in 0..3000 {
        sim.step(&mut src);
        events.clear();
        sim.drain_events_into(&mut events);
    }

    let before = ALLOC_OPS.load(Ordering::Relaxed);
    for _ in 0..2000 {
        sim.step(&mut src);
        events.clear();
        sim.drain_events_into(&mut events);
    }
    let delta = ALLOC_OPS.load(Ordering::Relaxed) - before;

    assert!(
        sim.stats().delivered_packets > 1000,
        "traffic must actually flow: {} packets",
        sim.stats().delivered_packets
    );
    assert_eq!(
        delta, 0,
        "steady-state cycle loop performed {delta} heap allocations over 2000 cycles"
    );
}
