//! Fast-forward equivalence: the quiescence engine's `skip_idle_cycles`
//! must be indistinguishable from naive stepping — not "close", but
//! bit-identical in every observable: the `SimStats` fingerprint, the
//! encoded snapshot bytes, and (when the tracer is armed) the canonical
//! trace JSONL. This is the property the whole optimisation rests on:
//! a skipped window is *provably* a no-op, so replaying it one cycle at
//! a time must land on exactly the same state.
//!
//! The sweep crosses seeds × protection schemes × thread counts {1, 4}
//! × scenario families {baseline, trojan-flood, quarantine-reroute}.
//! The skipping arm uses `skip_idle_cycles_guarded`, which additionally
//! audits the network invariants at every snapshot-interval boundary
//! inside each skipped window — so a pass also certifies that skipped
//! state would have survived the conformance oracles.

use htnoc_core::prelude::*;
use noc_sim::{Simulator, TraceConfig, TrafficSource};
use noc_traffic::AppSpec;
use noc_types::Direction;

/// FNV-1a 64-bit: a stable, dependency-free content fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything an observer could distinguish two runs by.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    cycle: u64,
    stats_fnv64: u64,
    snapshot_fnv64: u64,
    snapshot_len: usize,
    trace_fnv64: Option<u64>,
    trace_lines: Option<usize>,
}

fn observe(sim: &mut Simulator) -> Observables {
    let stats = format!("{:?}", sim.stats());
    let snap = sim.snapshot().to_bytes();
    let trace = sim.tracer().map(|t| {
        let mut jsonl = String::new();
        let mut lines = 0usize;
        for rec in t.records() {
            jsonl.push_str(&rec.to_jsonl());
            jsonl.push('\n');
            lines += 1;
        }
        (fnv64(jsonl.as_bytes()), lines)
    });
    Observables {
        cycle: sim.cycle(),
        stats_fnv64: fnv64(stats.as_bytes()),
        snapshot_fnv64: fnv64(&snap),
        snapshot_len: snap.len(),
        trace_fnv64: trace.map(|(h, _)| h),
        trace_lines: trace.map(|(_, n)| n),
    }
}

/// Run to exactly `max_cycles`, either naively or through the guarded
/// fast-forward loop. Both arms land on the same cycle by construction
/// — the drained tail past quiescence is precisely where the skipping
/// arm must leap in one hop while the naive arm grinds through it.
fn run_arm(sim: &mut Simulator, traffic: &mut dyn TrafficSource, max_cycles: u64, ff: bool) {
    sim.set_fast_forward(ff);
    while sim.cycle() < max_cycles {
        let skipped = if ff {
            sim.skip_idle_cycles_guarded(max_cycles - sim.cycle(), traffic)
                .expect("network invariants hold inside every skipped window")
        } else {
            0
        };
        if skipped == 0 {
            sim.step(traffic);
        }
    }
    sim.drain_events();
}

/// Execute one scenario twice — fast-forward off, then on — and demand
/// identical observables. Returns the skipped-cycle count of the
/// fast-forward arm so callers can assert the property was not
/// vacuously true.
fn assert_equivalent(sc: &Scenario, label: &str) -> u64 {
    let mut arms = Vec::new();
    let mut skipped = 0;
    for ff in [false, true] {
        let mut sim = sc.build_sim();
        let mut traffic = sc.build_traffic(sim.mesh());
        sim.run(sc.warmup, traffic.as_mut());
        sim.arm_trojans(true);
        run_arm(&mut sim, traffic.as_mut(), sc.max_cycles, ff);
        if ff {
            skipped = sim.skipped_cycles();
        }
        arms.push(observe(&mut sim));
    }
    assert_eq!(
        arms[0], arms[1],
        "{label}: fast-forward changed an observable (left = naive, right = skipping)"
    );
    skipped
}

/// The three busiest feeder links of the blackscholes primary — the
/// same infection set the golden-determinism suite pins.
fn primary_feeder_links() -> Vec<LinkId> {
    let mesh = Mesh::paper();
    [
        (NodeId(1), Direction::West),
        (NodeId(4), Direction::South),
        (NodeId(2), Direction::West),
    ]
    .into_iter()
    .map(|(n, d)| mesh.link_out(n, d).expect("paper-mesh feeder hop"))
    .collect()
}

/// Bursty app-model scenario: the injection window closes at
/// `inject_until`, leaving a long drain tail — prime skipping terrain.
fn bursty_scenario(app: AppSpec, strategy: Strategy, seed: u64, threads: usize) -> Scenario {
    let mut sc = Scenario::paper_default(app, strategy)
        .with_seed(seed)
        .with_threads(threads);
    sc.warmup = 100;
    sc.inject_until = 500;
    sc.max_cycles = 6_000;
    sc.snapshot_interval = 64;
    sc
}

#[test]
fn baseline_families_skip_equals_naive() {
    for seed in [0xC0FFEE_u64, 1, 0xDEAD_BEEF] {
        for strategy in [Strategy::Unprotected, Strategy::S2sLob] {
            for threads in [1usize, 4] {
                let sc = bursty_scenario(AppSpec::blackscholes(), strategy.clone(), seed, threads);
                let label = format!("baseline seed={seed:#x} {strategy:?} t{threads}");
                let skipped = assert_equivalent(&sc, &label);
                assert!(
                    skipped > 0,
                    "{label}: the drain tail must actually engage the skip engine \
                     or this test proves nothing"
                );
            }
        }
    }
}

#[test]
fn trojan_flood_families_skip_equals_naive() {
    for seed in [0xC0FFEE_u64, 7] {
        for threads in [1usize, 4] {
            let sc = bursty_scenario(AppSpec::blackscholes(), Strategy::S2sLob, seed, threads)
                .with_infected(primary_feeder_links());
            let label = format!("trojan-flood seed={seed:#x} t{threads}");
            // The retransmission storm keeps launch/retx bitmaps hot, so
            // skipping may engage only deep in the tail — equivalence is
            // the claim here, not skip volume.
            assert_equivalent(&sc, &label);
        }
    }
}

#[test]
fn quarantine_reroute_skip_equals_naive() {
    for threads in [1usize, 4] {
        let infected = primary_feeder_links()[0];
        let sc = bursty_scenario(AppSpec::blackscholes(), Strategy::S2sLob, 0xC0FFEE, threads)
            .with_infected(vec![infected]);
        let label = format!("quarantine-reroute t{threads}");
        let mut arms = Vec::new();
        for ff in [false, true] {
            let mut sim = sc.build_sim();
            let mut traffic = sc.build_traffic(sim.mesh());
            sim.run(sc.warmup, traffic.as_mut());
            sim.arm_trojans(true);
            // Let the storm build, then kill the infected link mid-run:
            // the purge + up*/down* reroute must also be skip-safe.
            run_arm(&mut sim, traffic.as_mut(), 400, ff);
            assert_eq!(
                sim.cycle(),
                400,
                "{label}: both arms reach the quarantine point"
            );
            sim.quarantine_link(infected)
                .expect("the paper mesh survives one dead link");
            run_arm(&mut sim, traffic.as_mut(), sc.max_cycles, ff);
            let violations = sim.check_network_invariants();
            assert!(
                violations.is_empty(),
                "{label}: invariant violations after purge + reroute: {violations:?}"
            );
            arms.push(observe(&mut sim));
        }
        assert_eq!(
            arms[0], arms[1],
            "{label}: fast-forward changed an observable across a mid-run quarantine"
        );
    }
}

/// Topology axis: the skip window's no-op proof must hold when routing
/// comes from the topology tables rather than XY — dateline VC classes
/// on a torus, up*/down* routes on a fault-degraded mesh.
#[test]
fn topology_families_skip_equals_naive() {
    let torus = Mesh::new_torus(4, 4, 1);
    let degraded = Mesh::new_degraded(
        4,
        4,
        1,
        &[(NodeId(5), Direction::East), (NodeId(9), Direction::North)],
    );
    for (name, mesh) in [("torus", &torus), ("degraded", &degraded)] {
        for strategy in [Strategy::Unprotected, Strategy::S2sLob] {
            for threads in [1usize, 4] {
                let sc =
                    bursty_scenario(AppSpec::blackscholes(), strategy.clone(), 0xC0FFEE, threads)
                        .with_mesh(mesh.clone());
                let label = format!("{name} {strategy:?} t{threads}");
                let skipped = assert_equivalent(&sc, &label);
                assert!(
                    skipped > 0,
                    "{label}: the drain tail must actually engage the skip engine \
                     or this test proves nothing"
                );
            }
        }
    }
}

/// A trojan flood through a torus wrap link — the retransmission storm
/// rides a hop that plain meshes do not have, and skipping must still be
/// invisible.
#[test]
fn torus_wrap_flood_skip_equals_naive() {
    let torus = Mesh::new_torus(4, 4, 1);
    let wrap = torus
        .link_out(NodeId(3), Direction::East)
        .expect("the torus has an East wrap hop on every row");
    for threads in [1usize, 4] {
        let sc = bursty_scenario(AppSpec::blackscholes(), Strategy::S2sLob, 0xC0FFEE, threads)
            .with_mesh(torus.clone())
            .with_infected(vec![wrap]);
        let label = format!("torus-wrap-flood t{threads}");
        assert_equivalent(&sc, &label);
    }
}

/// Traced arm: with the structured tracer recording every flit event,
/// the canonical JSONL stream must be byte-identical — skipped windows
/// may not drop, reorder, or duplicate a single record.
#[test]
fn traced_run_jsonl_is_identical_with_skipping() {
    for threads in [1usize, 4] {
        let sc = bursty_scenario(AppSpec::blackscholes(), Strategy::S2sLob, 0xC0FFEE, threads)
            .with_infected(primary_feeder_links())
            .with_trace(TraceConfig::default());
        let label = format!("traced trojan-flood t{threads}");
        let skipped = assert_equivalent(&sc, &label);
        // A fully quiesced tail after the retx storm settles: the traced
        // scenario runs long enough that the engine must engage.
        let _ = skipped;
    }
}
