//! Telemetry acceptance suite: the observability plane observes, never
//! perturbs.
//!
//! * **Zero perturbation** — the trojan-flood scenario produces
//!   bit-identical statistics (full `SimStats`, including the per-window
//!   time series) with telemetry armed and disarmed, at one shard and at
//!   four. Telemetry reads simulation-derived integers and wall clocks;
//!   it never writes back.
//! * **Alert rules** — the unmitigated flood raises at least one alert
//!   *before* the watchdog trips (online detection beats the post-mortem
//!   diagnosis), while the clean uniform baseline stays alert-free.
//! * **Prometheus export** — a real run's exposition parses under the
//!   strict parser and carries the alert/watchdog ordering.

use htnoc_core::campaign::{
    baseline_telemetry, trojan_flood_telemetry, trojan_flood_threads, CAMPAIGN_SEED,
};
use noc_sim::{parse_prometheus, prom_value, AlertClass};
use proptest::prelude::*;

/// The acceptance seed: the published trojan-flood run.
const FLOOD_SEED: u64 = CAMPAIGN_SEED.wrapping_add(5);

proptest! {
    // Each case runs the full flood twice; keep the budget small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn telemetry_never_perturbs_the_simulation(
        seed in 0u64..512,
        tidx in 0usize..2,
    ) {
        let threads = [1usize, 4][tidx];
        let (plain_rep, plain_sim) = trojan_flood_threads(seed, threads);
        let (tel_rep, tel_sim) = trojan_flood_telemetry(seed, threads);
        // Full statistics fingerprint: aggregates, histogram, and the
        // per-window time series must match bit for bit.
        prop_assert_eq!(
            format!("{:?}", plain_sim.stats()),
            format!("{:?}", tel_sim.stats())
        );
        prop_assert_eq!(plain_rep.cycles, tel_rep.cycles);
        prop_assert_eq!(plain_rep.injected_flits, tel_rep.injected_flits);
        prop_assert_eq!(plain_rep.delivered_flits, tel_rep.delivered_flits);
        prop_assert_eq!(plain_rep.dropped_flits, tel_rep.dropped_flits);
        prop_assert_eq!(plain_rep.quarantined_links, tel_rep.quarantined_links);
        prop_assert_eq!(&plain_rep.stalls, &tel_rep.stalls);
    }
}

#[test]
fn flood_alerts_fire_before_the_watchdog() {
    let (rep, sim) = trojan_flood_telemetry(FLOOD_SEED, 1);
    let tel = sim.telemetry().expect("telemetry armed");
    let alerts = tel.alerts();
    assert!(
        alerts.fired_total() >= 1,
        "the flood must raise at least one alert"
    );
    let first_alert = alerts
        .first_alert_cycle()
        .expect("at least one alert fired");
    let first_trip = tel
        .first_watchdog_cycle()
        .expect("the unmitigated flood trips the watchdog");
    assert!(
        first_alert < first_trip,
        "online detection (cycle {first_alert}) must beat the watchdog \
         (cycle {first_trip})"
    );
    assert!(!rep.stalls.is_empty());
}

#[test]
fn baseline_stays_alert_free() {
    let (_rep, sim) = baseline_telemetry(CAMPAIGN_SEED, 1);
    let tel = sim.telemetry().expect("telemetry armed");
    assert_eq!(
        tel.alerts().fired_total(),
        0,
        "clean traffic must not alert: {:?}",
        tel.alerts().history().collect::<Vec<_>>()
    );
    assert_eq!(tel.alerts().first_alert_cycle(), None);
    assert_eq!(tel.first_watchdog_cycle(), None);
}

#[test]
fn engine_profile_and_timeline_accumulate() {
    let (_rep, sim) = trojan_flood_telemetry(FLOOD_SEED, 1);
    let tel = sim.telemetry().expect("telemetry armed");
    assert!(tel.cycles_profiled() > 0);
    assert!(
        tel.phase_total_ns().iter().sum::<u64>() > 0,
        "phase timers accumulated"
    );
    for g in tel.group_loads() {
        assert!(g.imbalance_permille() >= 1000, "max/mean ratio ≥ 1");
    }
    // The engine timeline exports as a balanced Chrome trace object.
    let json = tel.engine_chrome_trace();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\"") && json.contains("\"engine\""));
    assert!(json.contains("\"ph\":\"X\""), "timeline slices captured");
}

#[test]
fn prometheus_export_of_a_real_run_parses_strictly() {
    let (rep, sim) = trojan_flood_telemetry(FLOOD_SEED, 1);
    let text = sim.prometheus_text(&[("scenario", "trojan_flood")]);
    let samples = parse_prometheus(&text).expect("strict parse");
    assert_eq!(prom_value(&samples, "noc_cycle"), Some(rep.cycles as f64));
    assert_eq!(
        prom_value(&samples, "noc_delivered_flits_total"),
        Some(rep.delivered_flits as f64)
    );
    let fired = prom_value(&samples, "noc_alerts_fired_total").expect("alert counter exported");
    assert!(fired >= 1.0);
    let first_alert = prom_value(&samples, "noc_first_alert_cycle").expect("first alert cycle");
    let first_trip =
        prom_value(&samples, "noc_first_watchdog_cycle").expect("first watchdog cycle");
    assert!(
        first_alert < first_trip,
        "exported ordering must show detection before the trip"
    );
    // Per-class counters carry the label round trip.
    let by_class: f64 = samples
        .iter()
        .filter(|s| s.name == "noc_alerts_by_class_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(by_class, fired);
    // Every class label is one of ours.
    for s in samples
        .iter()
        .filter(|s| s.name == "noc_alerts_by_class_total")
    {
        let label = s
            .labels
            .iter()
            .find(|(k, _)| k == "class")
            .map(|(_, v)| v.as_str())
            .expect("class label");
        assert!(AlertClass::from_label(label).is_some(), "{label}");
    }
}

#[test]
fn stall_reports_carry_the_engine_heartbeat() {
    let (rep, _sim) = trojan_flood_telemetry(FLOOD_SEED, 1);
    let stall = rep.stalls.first().expect("the flood stalls");
    let hb = stall
        .heartbeat
        .expect("telemetry-armed runs attach a heartbeat to the diagnosis");
    assert_eq!(hb.cycle, stall.cycle);
    assert!(hb.phase_ns.iter().sum::<u64>() > 0, "profile accumulated");
    // And without telemetry the report is heartbeat-free (and still
    // compares equal — equality ignores the side band).
    let (plain, _) = trojan_flood_threads(FLOOD_SEED, 1);
    assert!(plain.stalls[0].heartbeat.is_none());
    assert_eq!(plain.stalls[0], *stall);
}
