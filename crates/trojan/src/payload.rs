//! The Y-bit sequential payload counter.
//!
//! On every fault injection the trojan must pick **which two wires** to
//! corrupt. Injecting on the same wires repeatedly would let a fault-aware
//! architecture classify the link as permanently broken (and route around
//! it, ending the attack), so TASP drives the XOR tree from a small FSM that
//! *shifts* the flip positions between injections — disguising its faults as
//! transients. The counter width `Y` is a design-time knob: more states mean
//! better camouflage but more power-hungry flip-flops for side-channel
//! analysis to spot (the paper's Fig. 3 draws the 2-bit, four-state case
//! PL0..PL3).
//!
//! The FSM holds its state while the target is absent — it only advances on
//! injection, which both saves power and spreads the reuse of any one wire
//! pair over a longer window.

/// Sequential payload-state counter. Each state deterministically maps to a
/// pair of distinct codeword wire positions for the XOR tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadFsm {
    /// Counter width in bits (`Y` in the paper). `2^y` payload states.
    y_bits: u8,
    /// Current payload state, `0 .. 2^y`.
    state: u16,
    /// Width of the protected wire bundle the XOR tree can reach
    /// (72 for a Hamming(72,64) link).
    wire_bits: u8,
    /// Number of injections performed (diagnostics / tests).
    injections: u64,
}

impl PayloadFsm {
    /// A new FSM with `y_bits`-wide counter over a `wire_bits`-wide link.
    ///
    /// # Panics
    /// Panics if `y_bits` is 0 or greater than 10 (1024 states is already
    /// far beyond any sensible hardware budget), or `wire_bits < 2`.
    pub fn new(y_bits: u8, wire_bits: u8) -> Self {
        assert!((1..=10).contains(&y_bits), "Y must be in 1..=10");
        assert!(wire_bits >= 2, "need at least two wires to flip");
        Self {
            y_bits,
            state: 0,
            wire_bits,
            injections: 0,
        }
    }

    /// Number of distinct payload states (`2^Y`).
    #[inline]
    pub fn num_states(&self) -> u16 {
        1 << self.y_bits
    }

    #[inline]
    /// Counter width in bits (`Y` in the paper).
    pub fn y_bits(&self) -> u8 {
        self.y_bits
    }

    #[inline]
    /// Current payload state index.
    pub fn state(&self) -> u16 {
        self.state
    }

    #[inline]
    /// Lifetime injection count.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// The wire pair the XOR tree would flip in payload state `s`.
    ///
    /// The mapping scatters pairs across the bundle with a multiplicative
    /// hash so consecutive states hit distant wires — in hardware this is
    /// just a fixed wiring pattern between the counter and the XOR tree.
    pub fn positions_for(&self, s: u16) -> (u8, u8) {
        let w = self.wire_bits as u32;
        let h = (s as u32).wrapping_mul(2654435761) >> 16;
        let a = h % w;
        // Offset derived from a second hash, guaranteed nonzero mod w so the
        // two positions are always distinct.
        let h2 = (s as u32 ^ 0xBEEF).wrapping_mul(40503) >> 8;
        let off = 1 + (h2 % (w - 1));
        let b = (a + off) % w;
        debug_assert_ne!(a, b);
        (a as u8, b as u8)
    }

    /// Current flip pair without advancing (the FSM "holds the payload state
    /// until the next fault injection").
    #[inline]
    pub fn current_positions(&self) -> (u8, u8) {
        self.positions_for(self.state)
    }

    /// Perform one injection: return the flip pair for the *current* state,
    /// then advance to the next payload state.
    pub fn inject(&mut self) -> (u8, u8) {
        let pair = self.current_positions();
        self.state = (self.state + 1) % self.num_states();
        self.injections += 1;
        pair
    }

    /// Reset to PL0 (used when the kill switch is dropped).
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Restore the runtime counters captured from another FSM of the same
    /// design (checkpoint/restore support).
    ///
    /// # Panics
    /// Panics if `state` is not a valid payload state for this design.
    pub fn restore(&mut self, state: u16, injections: u64) {
        assert!(state < self.num_states(), "payload state out of range");
        self.state = state;
        self.injections = injections;
    }

    /// The 128-bit XOR mask over the codeword for the current state.
    pub fn mask_for(&self, s: u16) -> u128 {
        let (a, b) = self.positions_for(s);
        (1u128 << a) | (1u128 << b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn four_state_fsm_cycles_pl0_to_pl3() {
        let mut fsm = PayloadFsm::new(2, 72);
        assert_eq!(fsm.num_states(), 4);
        let states: Vec<u16> = (0..8)
            .map(|_| {
                let s = fsm.state();
                fsm.inject();
                s
            })
            .collect();
        assert_eq!(states, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(fsm.injections(), 8);
    }

    #[test]
    fn positions_are_always_distinct_and_on_the_wire() {
        for y in 1..=8 {
            let fsm = PayloadFsm::new(y, 72);
            for s in 0..fsm.num_states() {
                let (a, b) = fsm.positions_for(s);
                assert_ne!(a, b, "y={y} state={s}");
                assert!(a < 72 && b < 72);
            }
        }
    }

    #[test]
    fn masks_have_exactly_two_bits() {
        let fsm = PayloadFsm::new(4, 72);
        for s in 0..fsm.num_states() {
            assert_eq!(fsm.mask_for(s).count_ones(), 2);
        }
    }

    #[test]
    fn consecutive_injections_move_the_fault_location() {
        // The whole point of the sequential payload: the wire pair shifts
        // between injections so the faults look transient.
        let mut fsm = PayloadFsm::new(4, 72);
        let mut pairs = HashSet::new();
        for _ in 0..fsm.num_states() {
            pairs.insert(fsm.inject());
        }
        // With 16 states we expect substantially more than one distinct pair;
        // require at least half to be unique (hash collisions allowed).
        assert!(pairs.len() >= 8, "only {} distinct pairs", pairs.len());
    }

    #[test]
    fn state_holds_between_injections() {
        let mut fsm = PayloadFsm::new(2, 72);
        let before = fsm.current_positions();
        // Peeking doesn't advance.
        assert_eq!(fsm.current_positions(), before);
        assert_eq!(fsm.inject(), before);
        assert_ne!(fsm.state(), 0);
    }

    #[test]
    fn reset_returns_to_pl0() {
        let mut fsm = PayloadFsm::new(3, 72);
        fsm.inject();
        fsm.inject();
        fsm.reset();
        assert_eq!(fsm.state(), 0);
    }

    #[test]
    #[should_panic(expected = "Y must be in 1..=10")]
    fn zero_width_counter_rejected() {
        PayloadFsm::new(0, 72);
    }

    proptest! {
        #[test]
        fn inject_never_repeats_position_within_a_pair(y in 1u8..=10, w in 2u8..=72) {
            let mut fsm = PayloadFsm::new(y, w);
            for _ in 0..64 {
                let (a, b) = fsm.inject();
                prop_assert!(a != b);
                prop_assert!(a < w && b < w);
            }
        }

        #[test]
        fn fsm_is_periodic_with_period_num_states(y in 1u8..=6) {
            let mut fsm = PayloadFsm::new(y, 72);
            let first: Vec<_> = (0..fsm.num_states()).map(|_| fsm.inject()).collect();
            let second: Vec<_> = (0..fsm.num_states()).map(|_| fsm.inject()).collect();
            prop_assert_eq!(first, second);
        }
    }
}
