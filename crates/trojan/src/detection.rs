//! Post-fabrication detectability of a TASP instance (§III-A's "Hardware
//! Trojan Triggering" analysis, made quantitative).
//!
//! Two classic detection avenues and why TASP is built to dodge both:
//!
//! * **Logic testing** drives random/structured vectors through the link
//!   hoping to *trigger* the trojan and observe the corruption. A
//!   combinational trigger watching `k` bits fires on a random vector
//!   with probability `2^-k` — trivial to catch for the 1–3-gate trojans
//!   of prior work, hopeless for a 32–42-bit comparator. And TASP's
//!   external kill switch makes the point moot: with `killsw` down during
//!   manufacturing test, the trigger probability is exactly zero.
//! * **Side-channel analysis** looks for the trojan's electrical
//!   footprint; while dormant, idle leakage "remains the only visible
//!   characteristic that is detectable" (§V-A). See
//!   `noc_power::side_channel` for the SNR model; this module provides
//!   the trigger-exposure side.

use crate::target::TargetKind;

/// Probability that one uniformly random test vector on the link triggers
/// a comparator watching `k` bits (no kill switch).
pub fn trigger_probability(kind: TargetKind) -> f64 {
    0.5f64.powi(kind.comparator_bits() as i32)
}

/// Number of independent random vectors needed to trigger the trojan at
/// least once with confidence `conf` (no kill switch). Returns `None`
/// when the requirement overflows practical budgets (> 2^60 vectors).
pub fn vectors_for_confidence(kind: TargetKind, conf: f64) -> Option<u64> {
    assert!((0.0..1.0).contains(&conf));
    let p = trigger_probability(kind);
    // n ≥ ln(1-conf) / ln(1-p)
    let n = (1.0 - conf).ln() / (1.0 - p).ln();
    if !n.is_finite() || n > (1u64 << 60) as f64 {
        None
    } else {
        Some(n.ceil() as u64)
    }
}

/// Expected triggers observed during a logic-test campaign of `vectors`
/// random vectors, with and without the kill switch.
pub fn expected_triggers(kind: TargetKind, vectors: u64, kill_switch_up: bool) -> f64 {
    if !kill_switch_up {
        // The externally driven kill switch is down during manufacturing
        // test — the whole point of requiring two enabling sources.
        return 0.0;
    }
    vectors as f64 * trigger_probability(kind)
}

/// The prior-work comparison (§II: link trojans "limited to a small number
/// of logic gates (1–3)" where "logic testing should have a high
/// probability of triggering"): trigger width of a g-gate combinational
/// trojan, roughly 2 watched bits per gate.
pub fn small_trojan_trigger_bits(gates: u32) -> u32 {
    2 * gates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_probability_halves_per_bit() {
        assert_eq!(trigger_probability(TargetKind::Vc), 0.25);
        assert_eq!(trigger_probability(TargetKind::Dest), 1.0 / 16.0);
        assert!(trigger_probability(TargetKind::Mem) < 1e-9);
        assert!(trigger_probability(TargetKind::Full) < 1e-12);
    }

    #[test]
    fn narrow_comparators_are_caught_quickly_wide_ones_never() {
        // A VC-watching trojan (2 bits) is triggered within a handful of
        // vectors; prior work's 1–3 gate trojans (2–6 bits) within ~200.
        assert!(vectors_for_confidence(TargetKind::Vc, 0.95).unwrap() <= 16);
        assert!(vectors_for_confidence(TargetKind::DestSrc, 0.95).unwrap() <= 800);
        // A 32-bit memory comparator needs ~13 billion vectors for 95%.
        let mem = vectors_for_confidence(TargetKind::Mem, 0.95).unwrap();
        assert!(mem > 1_000_000_000, "{mem}");
        // The full 42-bit comparator is beyond any practical campaign at
        // link rate, and well beyond 2^40 vectors.
        let full = vectors_for_confidence(TargetKind::Full, 0.95).unwrap();
        assert!(full > (1u64 << 40), "{full}");
    }

    #[test]
    fn kill_switch_zeroes_logic_test_exposure() {
        for kind in TargetKind::ALL {
            assert_eq!(expected_triggers(kind, u64::MAX >> 1, false), 0.0);
        }
        // Armed, the expectation is vectors × p.
        assert!((expected_triggers(TargetKind::Vc, 100, true) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn prior_work_small_trojans_are_trivially_exposed() {
        // 1–3 gates ⇒ 2–6 watched bits ⇒ 95% detection within hundreds of
        // vectors — which is §II's argument for why [15]'s model is weak.
        for gates in 1..=3 {
            let bits = small_trojan_trigger_bits(gates);
            let p = 0.5f64.powi(bits as i32);
            let n = ((1.0f64 - 0.95).ln() / (1.0 - p).ln()).ceil();
            assert!(n <= 200.0, "gates {gates}: {n}");
        }
    }
}
