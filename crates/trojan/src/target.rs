//! The TASP target block: comparators over the head-flit wire word.
//!
//! The paper evaluates six comparator configurations, each watching a
//! different slice of the 42-bit header material; the slice width drives the
//! trojan's area and power (Fig. 9 / Table I):
//!
//! | variant    | fields compared | width (bits) |
//! |------------|-----------------|--------------|
//! | `Full`     | src+dest+vc+mem | 42           |
//! | `Dest`     | dest            | 4            |
//! | `Src`      | src             | 4            |
//! | `DestSrc`  | dest+src        | 8            |
//! | `Mem`      | memory address  | 32           |
//! | `Vc`       | virtual channel | 2            |
//!
//! Matching is performed against the *wire word* — the bits physically on
//! the link. This is the hook the L-Ob defence exploits: once the upstream
//! router obfuscates the flit, the comparator sees garbage and the trojan
//! never triggers.

use noc_types::header::{Header, HeaderLayout};
use std::ops::RangeInclusive;

/// Which preset comparator the trojan was manufactured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// The full 42-bit header comparator.
    Full,
    /// Destination-router comparator (4 bits).
    Dest,
    /// Source-router comparator (4 bits).
    Src,
    /// Source+destination comparator (8 bits).
    DestSrc,
    /// Memory-address comparator (32 bits).
    Mem,
    /// Virtual-channel comparator (2 bits).
    Vc,
}

impl TargetKind {
    /// All variants, in the order the paper's Fig. 9 / Table I list them.
    pub const ALL: [TargetKind; 6] = [
        TargetKind::Full,
        TargetKind::Dest,
        TargetKind::Src,
        TargetKind::DestSrc,
        TargetKind::Mem,
        TargetKind::Vc,
    ];

    /// Comparator width in bits — the area/power driver.
    pub fn comparator_bits(self) -> u32 {
        match self {
            TargetKind::Full => HeaderLayout::FULL_BITS,
            TargetKind::Dest => HeaderLayout::DEST_BITS,
            TargetKind::Src => HeaderLayout::SRC_BITS,
            TargetKind::DestSrc => HeaderLayout::DEST_BITS + HeaderLayout::SRC_BITS,
            TargetKind::Mem => HeaderLayout::MEM_BITS,
            TargetKind::Vc => HeaderLayout::VC_BITS,
        }
    }

    /// Display name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Full => "Full",
            TargetKind::Dest => "Dest",
            TargetKind::Src => "Src",
            TargetKind::DestSrc => "Dest_Src",
            TargetKind::Mem => "Mem",
            TargetKind::Vc => "VC",
        }
    }
}

/// A single-field match: exact value or inclusive range (the paper allows
/// comparators tuned to "any combination or ranges").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldMatch<T> {
    /// Match a single exact value.
    Exact(T),
    /// Match any value in an inclusive range.
    Range(RangeInclusive<T>),
}

impl<T: PartialOrd + Copy> FieldMatch<T> {
    #[inline]
    /// Whether `v` satisfies this field match.
    pub fn matches(&self, v: T) -> bool {
        match self {
            FieldMatch::Exact(x) => v == *x,
            FieldMatch::Range(r) => r.contains(&v),
        }
    }
}

/// The programmed target: any combination of header fields. A `None` field is
/// "don't care". An all-`None` spec matches every header flit (a maximally
/// indiscriminate trojan).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TargetSpec {
    /// Source-router constraint (None = do not care).
    pub src: Option<FieldMatch<u8>>,
    /// Destination-router constraint.
    pub dest: Option<FieldMatch<u8>>,
    /// VC-class constraint.
    pub vc: Option<FieldMatch<u8>>,
    /// Memory-address constraint.
    pub mem: Option<FieldMatch<u32>>,
}

impl TargetSpec {
    /// Target every packet destined for router `dest` (the paper's running
    /// example: disrupt the application pinned near one primary core).
    pub fn dest(dest: u8) -> Self {
        Self {
            dest: Some(FieldMatch::Exact(dest)),
            ..Self::default()
        }
    }

    /// Target every packet issued by router `src`.
    pub fn src(src: u8) -> Self {
        Self {
            src: Some(FieldMatch::Exact(src)),
            ..Self::default()
        }
    }

    /// Target one specific flow.
    pub fn flow(src: u8, dest: u8) -> Self {
        Self {
            src: Some(FieldMatch::Exact(src)),
            dest: Some(FieldMatch::Exact(dest)),
            ..Self::default()
        }
    }

    /// Target a memory address range (e.g. one application's heap).
    pub fn mem_range(range: RangeInclusive<u32>) -> Self {
        Self {
            mem: Some(FieldMatch::Range(range)),
            ..Self::default()
        }
    }

    /// The preset comparator kind this spec most closely corresponds to,
    /// used by the power model to cost the comparator.
    pub fn kind(&self) -> TargetKind {
        match (
            self.src.is_some(),
            self.dest.is_some(),
            self.vc.is_some(),
            self.mem.is_some(),
        ) {
            (true, true, _, true) => TargetKind::Full,
            (true, true, _, false) => TargetKind::DestSrc,
            (true, false, false, false) => TargetKind::Src,
            (false, true, false, false) => TargetKind::Dest,
            (false, false, false, true) => TargetKind::Mem,
            (false, false, true, false) => TargetKind::Vc,
            // Mixed/sparse combinations: cost as the widest field watched.
            _ => {
                if self.mem.is_some() {
                    TargetKind::Mem
                } else if self.src.is_some() {
                    TargetKind::Src
                } else if self.dest.is_some() {
                    TargetKind::Dest
                } else {
                    TargetKind::Vc
                }
            }
        }
    }

    /// Compare the programmed target against a header-carrying wire word.
    /// Fields the comparator does not watch are ignored.
    pub fn matches_wire(&self, wire_word: u64) -> bool {
        let h = Header::unpack(wire_word);
        self.matches_header(&h)
    }

    /// Compare against an already-decoded header. The comparator inspects
    /// the paper's 4-bit wire fields, so router ids are viewed mod 16 —
    /// identical to what [`TargetSpec::matches_wire`] sees on large meshes.
    pub fn matches_header(&self, h: &Header) -> bool {
        self.src
            .as_ref()
            .is_none_or(|m| m.matches((h.src.0 & 0xF) as u8))
            && self
                .dest
                .as_ref()
                .is_none_or(|m| m.matches((h.dest.0 & 0xF) as u8))
            && self.vc.as_ref().is_none_or(|m| m.matches(h.vc.0))
            && self.mem.as_ref().is_none_or(|m| m.matches(h.mem_addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::ids::{NodeId, VcId};

    fn hdr(src: u16, dest: u16, vc: u8, mem: u32) -> Header {
        Header {
            src: NodeId(src),
            dest: NodeId(dest),
            vc: VcId(vc),
            mem_addr: mem,
            thread: 0,
            len: 1,
        }
    }

    #[test]
    fn comparator_widths_match_the_paper() {
        assert_eq!(TargetKind::Full.comparator_bits(), 42);
        assert_eq!(TargetKind::Dest.comparator_bits(), 4);
        assert_eq!(TargetKind::Src.comparator_bits(), 4);
        assert_eq!(TargetKind::DestSrc.comparator_bits(), 8);
        assert_eq!(TargetKind::Mem.comparator_bits(), 32);
        assert_eq!(TargetKind::Vc.comparator_bits(), 2);
    }

    #[test]
    fn dest_target_matches_only_its_router() {
        let t = TargetSpec::dest(9);
        assert!(t.matches_wire(hdr(0, 9, 0, 0).pack()));
        assert!(t.matches_wire(hdr(5, 9, 3, 0xFFFF).pack()));
        assert!(!t.matches_wire(hdr(9, 8, 0, 0).pack()));
    }

    #[test]
    fn flow_target_requires_both_endpoints() {
        let t = TargetSpec::flow(2, 7);
        assert!(t.matches_wire(hdr(2, 7, 0, 0).pack()));
        assert!(!t.matches_wire(hdr(2, 6, 0, 0).pack()));
        assert!(!t.matches_wire(hdr(3, 7, 0, 0).pack()));
    }

    #[test]
    fn mem_range_target() {
        let t = TargetSpec::mem_range(0x1000..=0x1FFF);
        assert!(t.matches_wire(hdr(0, 1, 0, 0x1000).pack()));
        assert!(t.matches_wire(hdr(0, 1, 0, 0x1ABC).pack()));
        assert!(!t.matches_wire(hdr(0, 1, 0, 0x2000).pack()));
    }

    #[test]
    fn empty_spec_matches_everything() {
        let t = TargetSpec::default();
        assert!(t.matches_wire(hdr(3, 3, 1, 77).pack()));
    }

    #[test]
    fn kind_classification() {
        assert_eq!(TargetSpec::dest(1).kind(), TargetKind::Dest);
        assert_eq!(TargetSpec::src(1).kind(), TargetKind::Src);
        assert_eq!(TargetSpec::flow(1, 2).kind(), TargetKind::DestSrc);
        assert_eq!(TargetSpec::mem_range(0..=10).kind(), TargetKind::Mem);
        let full = TargetSpec {
            src: Some(FieldMatch::Exact(1)),
            dest: Some(FieldMatch::Exact(2)),
            vc: Some(FieldMatch::Exact(0)),
            mem: Some(FieldMatch::Exact(5)),
        };
        assert_eq!(full.kind(), TargetKind::Full);
        let vc_only = TargetSpec {
            vc: Some(FieldMatch::Exact(1)),
            ..TargetSpec::default()
        };
        assert_eq!(vc_only.kind(), TargetKind::Vc);
    }

    #[test]
    fn obfuscated_wire_word_defeats_the_comparator() {
        // Inverting the wire word (one of the L-Ob methods) garbles the
        // fields the comparator unpacks.
        let t = TargetSpec::dest(9);
        let clean = hdr(0, 9, 0, 0).pack();
        assert!(t.matches_wire(clean));
        assert!(!t.matches_wire(!clean));
    }

    #[test]
    fn field_match_range_and_exact() {
        assert!(FieldMatch::Exact(4u8).matches(4));
        assert!(!FieldMatch::Exact(4u8).matches(5));
        assert!(FieldMatch::Range(2u8..=6).matches(2));
        assert!(FieldMatch::Range(2u8..=6).matches(6));
        assert!(!FieldMatch::Range(2u8..=6).matches(7));
    }
}
