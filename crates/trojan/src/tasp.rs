//! The assembled TASP trojan: target block + payload FSM + XOR tree,
//! governed by the idle / active / attacking state machine of Fig. 3.

use crate::payload::PayloadFsm;
use crate::target::{TargetKind, TargetSpec};

/// Operating state of the trojan (Fig. 3's FSM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaspState {
    /// Kill switch de-asserted: completely dormant (only leakage power is
    /// observable — the sole side channel while idle).
    Idle,
    /// Kill switch asserted: snooping every flit for the target.
    Active,
    /// Target sighted on the current flit: the XOR tree is firing.
    Attacking,
}

/// Design-time configuration of one TASP instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TaspConfig {
    /// What the comparator watches.
    pub target: TargetSpec,
    /// Payload counter width `Y` (camouflage vs. area trade-off).
    pub y_bits: u8,
    /// Protected wire-bundle width the XOR tree can reach (72 for
    /// Hamming(72,64) links).
    pub wire_bits: u8,
    /// Minimum cycles between injections. The paper's evaluation injects
    /// "every 10 cycles or so" once triggered; `0` attacks every sighting.
    pub cooldown: u32,
}

impl TaspConfig {
    /// Paper-default trojan: four payload states over a 72-bit link, no
    /// cooldown, target supplied by the attacker.
    pub fn new(target: TargetSpec) -> Self {
        Self {
            target,
            y_bits: 2,
            wire_bits: 72,
            cooldown: 0,
        }
    }

    /// Set the payload-counter width.
    pub fn with_y_bits(mut self, y: u8) -> Self {
        self.y_bits = y;
        self
    }

    /// Set the minimum cycles between injections.
    pub fn with_cooldown(mut self, cycles: u32) -> Self {
        self.cooldown = cycles;
        self
    }
}

/// Lifetime counters for analysis and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaspStats {
    /// Header flits inspected while active.
    pub inspections: u64,
    /// Times the comparator matched.
    pub sightings: u64,
    /// Fault masks actually emitted (sightings minus cooldown suppressions).
    pub injections: u64,
}

/// One manufactured TASP instance mounted on a link.
///
/// ```
/// use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
/// use noc_types::{Header, NodeId, VcId};
///
/// let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)));
/// let wire = Header {
///     src: NodeId(0), dest: NodeId(9), vc: VcId(0),
///     mem_addr: 0, thread: 0, len: 1,
/// }.pack();
///
/// // Dormant until the externally driven kill switch goes up — which is
/// // also what hides it from post-silicon logic testing.
/// assert_eq!(ht.snoop(0, wire, true), None);
///
/// ht.set_kill_switch(true);
/// let mask = ht.snoop(1, wire, true).expect("target sighted");
/// assert_eq!(mask.count_ones(), 2, "exactly the SECDED-defeating two bits");
///
/// // The next injection shifts the fault location (sequential payload).
/// assert_ne!(ht.snoop(2, wire, true), Some(mask));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaspHt {
    config: TaspConfig,
    fsm: PayloadFsm,
    killsw: bool,
    state: TaspState,
    /// Cycle of the last injection, for cooldown accounting.
    last_injection: Option<u64>,
    stats: TaspStats,
}

impl TaspHt {
    /// Manufacture a trojan instance (kill switch down).
    pub fn new(config: TaspConfig) -> Self {
        let fsm = PayloadFsm::new(config.y_bits, config.wire_bits);
        Self {
            config,
            fsm,
            killsw: false,
            state: TaspState::Idle,
            last_injection: None,
            stats: TaspStats::default(),
        }
    }

    /// Assert/deassert the externally driven kill switch (the backdoor).
    /// Dropping it returns the trojan to `Idle` and resets the payload FSM,
    /// exactly the `!killsw | 0` arcs of Fig. 3.
    pub fn set_kill_switch(&mut self, on: bool) {
        self.killsw = on;
        if on {
            if self.state == TaspState::Idle {
                self.state = TaspState::Active;
            }
        } else {
            self.state = TaspState::Idle;
            self.fsm.reset();
        }
    }

    #[inline]
    /// Whether the kill switch is asserted.
    pub fn kill_switch(&self) -> bool {
        self.killsw
    }

    #[inline]
    /// Current FSM state.
    pub fn state(&self) -> TaspState {
        self.state
    }

    #[inline]
    /// Lifetime counters.
    pub fn stats(&self) -> TaspStats {
        self.stats
    }

    #[inline]
    /// The manufactured configuration.
    pub fn config(&self) -> &TaspConfig {
        &self.config
    }

    /// Comparator kind (for the power model).
    pub fn target_kind(&self) -> TargetKind {
        self.config.target.kind()
    }

    /// Inspect one flit crossing the link at `cycle`.
    ///
    /// `wire_word` is the 64-bit data word physically on the link —
    /// post-obfuscation if the upstream router applied L-Ob.
    /// `carries_header` mirrors the side-band head-flit indicator real links
    /// expose; TASP's deep packet inspection keys on header flits.
    ///
    /// Returns the XOR mask (over the 72-bit codeword) to apply, or `None`
    /// when the trojan does not fire. Every returned mask has **exactly two
    /// bits set** — the SECDED-defeating signature.
    pub fn snoop(&mut self, cycle: u64, wire_word: u64, carries_header: bool) -> Option<u128> {
        if !self.killsw {
            debug_assert_eq!(self.state, TaspState::Idle);
            return None;
        }
        if !carries_header {
            // Body/tail flits carry payload bits; the comparator ignores
            // them (it would otherwise false-fire on random data).
            self.state = TaspState::Active;
            return None;
        }
        self.stats.inspections += 1;
        if !self.config.target.matches_wire(wire_word) {
            self.state = TaspState::Active;
            return None;
        }
        self.stats.sightings += 1;
        // Cooldown: hold fire if the last injection was too recent. The
        // trojan stays `Active` (scanning) rather than `Attacking`.
        if let Some(last) = self.last_injection {
            if cycle.saturating_sub(last) < self.config.cooldown as u64 {
                self.state = TaspState::Active;
                return None;
            }
        }
        self.state = TaspState::Attacking;
        self.last_injection = Some(cycle);
        self.stats.injections += 1;
        let (a, b) = self.fsm.inject();
        Some((1u128 << a) | (1u128 << b))
    }

    /// Earliest future cycle this trojan could act without a flit
    /// crossing the link — `None`: TASP is purely reactive. The
    /// comparator fires only inside [`TaspHt::snoop`], and the cooldown
    /// compares against the absolute `cycle` argument rather than
    /// decrementing a counter every cycle, so idle cycles leave the FSM
    /// bit-identical no matter how many are skipped. A time-triggered
    /// variant (cycle-counter kill switch, periodic beacon) must return
    /// its wakeup cycle here so the simulator's fast-forward engine
    /// stops at it instead of jumping over the activation.
    pub fn autonomous_wakeup_at(&self, _now: u64) -> Option<u64> {
        None
    }

    /// Current payload state (PL index) — exposed for the ablation benches.
    pub fn payload_state(&self) -> u16 {
        self.fsm.state()
    }

    /// Lifetime payload-FSM injection count (checkpoint support).
    pub fn payload_injections(&self) -> u64 {
        self.fsm.injections()
    }

    /// Cycle of the last injection, for cooldown accounting.
    pub fn last_injection(&self) -> Option<u64> {
        self.last_injection
    }

    /// Restore the runtime state captured from another instance of the
    /// same design (checkpoint/restore support). The configuration is not
    /// part of the runtime state: construct with [`TaspHt::new`] from the
    /// same [`TaspConfig`] first, then restore onto it.
    pub fn restore_runtime(
        &mut self,
        killsw: bool,
        state: TaspState,
        last_injection: Option<u64>,
        stats: TaspStats,
        payload_state: u16,
        payload_injections: u64,
    ) {
        self.killsw = killsw;
        self.state = state;
        self.last_injection = last_injection;
        self.stats = stats;
        self.fsm.restore(payload_state, payload_injections);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::header::Header;
    use noc_types::ids::{NodeId, VcId};

    fn wire(src: u16, dest: u16) -> u64 {
        Header {
            src: NodeId(src),
            dest: NodeId(dest),
            vc: VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 1,
        }
        .pack()
    }

    fn trojan(dest: u8) -> TaspHt {
        TaspHt::new(TaspConfig::new(TargetSpec::dest(dest)))
    }

    #[test]
    fn idle_until_kill_switch() {
        let mut ht = trojan(9);
        assert_eq!(ht.state(), TaspState::Idle);
        // Even a perfect target sighting does nothing while idle — this is
        // what protects the trojan from logic testing.
        assert_eq!(ht.snoop(0, wire(0, 9), true), None);
        assert_eq!(ht.stats().inspections, 0);
        ht.set_kill_switch(true);
        assert_eq!(ht.state(), TaspState::Active);
    }

    #[test]
    fn fires_exactly_two_bit_mask_on_target() {
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        let mask = ht.snoop(1, wire(0, 9), true).expect("must fire");
        assert_eq!(mask.count_ones(), 2);
        assert_eq!(ht.state(), TaspState::Attacking);
        assert_eq!(ht.stats().injections, 1);
    }

    #[test]
    fn ignores_non_target_headers() {
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        assert_eq!(ht.snoop(1, wire(0, 5), true), None);
        assert_eq!(ht.state(), TaspState::Active);
        assert_eq!(ht.stats().inspections, 1);
        assert_eq!(ht.stats().sightings, 0);
    }

    #[test]
    fn ignores_payload_flits() {
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        // A payload word that would decode to the target header must not fire.
        assert_eq!(ht.snoop(1, wire(0, 9), false), None);
        assert_eq!(ht.stats().inspections, 0);
    }

    #[test]
    fn dropping_kill_switch_resets() {
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        ht.snoop(1, wire(0, 9), true);
        let pl = ht.payload_state();
        assert_ne!(pl, 0);
        ht.set_kill_switch(false);
        assert_eq!(ht.state(), TaspState::Idle);
        assert_eq!(ht.payload_state(), 0);
        assert_eq!(ht.snoop(2, wire(0, 9), true), None);
    }

    #[test]
    fn masks_shift_across_injections() {
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        let m1 = ht.snoop(1, wire(0, 9), true).unwrap();
        let m2 = ht.snoop(2, wire(0, 9), true).unwrap();
        assert_ne!(m1, m2, "sequential payload must move the fault");
    }

    #[test]
    fn cooldown_suppresses_rapid_fire() {
        let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)).with_cooldown(10));
        ht.set_kill_switch(true);
        assert!(ht.snoop(100, wire(0, 9), true).is_some());
        assert!(ht.snoop(105, wire(0, 9), true).is_none());
        assert_eq!(ht.state(), TaspState::Active);
        assert!(ht.snoop(110, wire(0, 9), true).is_some());
        assert_eq!(ht.stats().sightings, 3);
        assert_eq!(ht.stats().injections, 2);
    }

    #[test]
    fn injected_mask_defeats_secded() {
        use noc_ecc::{flip_bits, Secded};
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        let word = wire(3, 9);
        let mask = ht.snoop(0, word, true).unwrap();
        let corrupted = flip_bits(Secded::encode(word), mask);
        assert!(
            Secded::decode(corrupted).needs_retransmission(),
            "two-bit TASP fault must be detected-but-uncorrectable"
        );
    }

    #[test]
    fn obfuscated_word_bypasses_the_trojan() {
        let mut ht = trojan(9);
        ht.set_kill_switch(true);
        let word = wire(3, 9);
        assert!(ht.snoop(0, word, true).is_some());
        // Inversion (one of the L-Ob methods) hides the target.
        assert!(ht.snoop(1, !word, true).is_none());
    }

    #[test]
    fn target_kind_is_exposed_for_power_model() {
        assert_eq!(trojan(1).target_kind(), TargetKind::Dest);
    }
}
