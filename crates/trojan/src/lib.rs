//! The TASP hardware trojan: **t**arget-**a**ctivated **s**equential-**p**ayload.
//!
//! TASP is the paper's attack model — a light-weight trojan implanted on a
//! router-to-router link that
//!
//! 1. sits **idle** until an externally driven *kill switch* is asserted
//!    (which also keeps post-silicon logic testing from ever triggering it),
//! 2. then goes **active**, performing deep packet inspection on every flit
//!    crossing the link with a comparator over a tunable slice of the header
//!    (src / dest / dest+src / memory address / VC / the full 42 bits),
//! 3. and on sighting its target goes **attacking**: an XOR tree flips
//!    exactly **two** codeword bits — enough for SECDED to *detect* but not
//!    *correct* — forcing a switch-to-switch retransmission. A Y-bit payload
//!    counter FSM walks the flip positions across the wires on every
//!    injection so the faults masquerade as transients and the link escapes
//!    permanent-fault classification.
//!
//! The result is a denial-of-service attack powered by the victim's own
//! fault-tolerance machinery: every retransmission burns link bandwidth,
//! blocks the retransmission buffer, drains credits, and builds the
//! back-pressure tree that ultimately deadlocks the chip.

pub mod detection;
pub mod payload;
pub mod target;
pub mod tasp;

pub use payload::PayloadFsm;
pub use target::{FieldMatch, TargetKind, TargetSpec};
pub use tasp::{TaspConfig, TaspHt, TaspState, TaspStats};
