//! Extended Hamming(72,64) SECDED encoder/decoder.
//!
//! Construction: codeword positions `1..72` use classic Hamming numbering —
//! powers of two (1, 2, 4, 8, 16, 32, 64) hold the seven Hamming parity
//! bits; the remaining 64 positions hold data bits in increasing order.
//! Position 0 holds an overall (even) parity bit over the whole word.
//!
//! Decoding computes the 7-bit syndrome `s` (XOR of the positions of all set
//! bits) and the overall parity `p`:
//!
//! | `s`    | `p`  | verdict                                             |
//! |--------|------|-----------------------------------------------------|
//! | 0      | even | clean                                               |
//! | any    | odd  | single error at position `s` (0 ⇒ parity bit): fix  |
//! | ≠0     | even | **double error — detected, uncorrectable**          |
//!
//! A syndrome pointing outside the 72-bit word with odd parity means ≥3
//! errors; we conservatively report it as uncorrectable too.
//!
//! The kernel is table-driven: the codec runs once per flit per hop, so
//! instead of scattering/gathering bits one at a time it processes a byte
//! per step through `const fn`-built lookup tables (scatter masks and
//! syndrome contributions per data byte, gather masks and syndrome
//! contributions per codeword byte) plus a popcount for the overall
//! parity. The bit-serial construction survives as the `#[cfg(test)]`
//! reference implementation the differential tests check against.

use crate::codeword::{Codeword, CODEWORD_BITS, DATA_BITS};

/// The 7-bit Hamming syndrome extracted during decode. `0` means "no
//  positional error". The threat detector logs these to fingerprint faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Syndrome(pub u8);

/// Result of decoding one received codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// No error detected.
    Clean {
        /// The recovered data word.
        data: u64,
    },
    /// A single-bit error was corrected.
    Corrected {
        /// The recovered data word (after the fix).
        data: u64,
        /// Codeword position (0..72) of the corrected bit.
        bit: u8,
        /// The syndrome that located the error.
        syndrome: Syndrome,
    },
    /// Two (or an even number ≥2, or ≥3 inconsistent) bit errors: detected
    /// but uncorrectable. The receiver must request retransmission — this is
    /// the response the TASP trojan farms for its DoS.
    Uncorrectable {
        /// The nonzero syndrome (logged by the threat detector).
        syndrome: Syndrome,
    },
}

impl Decode {
    /// The recovered data word, when the codeword was usable.
    #[inline]
    pub fn data(&self) -> Option<u64> {
        match *self {
            Decode::Clean { data } | Decode::Corrected { data, .. } => Some(data),
            Decode::Uncorrectable { .. } => None,
        }
    }

    /// True when retransmission is required.
    #[inline]
    pub fn needs_retransmission(&self) -> bool {
        matches!(self, Decode::Uncorrectable { .. })
    }
}

/// Codeword positions (in `1..72`) that hold data bits, lowest first.
const DATA_POSITIONS: [u8; DATA_BITS] = build_data_positions();

const fn build_data_positions() -> [u8; DATA_BITS] {
    let mut out = [0u8; DATA_BITS];
    let mut pos = 1u8;
    let mut n = 0usize;
    while n < DATA_BITS {
        if !pos.is_power_of_two() {
            out[n] = pos;
            n += 1;
        }
        pos += 1;
    }
    out
}

/// Codeword bytes covering positions 0..72.
const CW_BYTES: usize = CODEWORD_BITS.div_ceil(8);

/// Inverse of [`DATA_POSITIONS`]: codeword position → data-bit index, or
/// `0xFF` for parity positions.
const POS_TO_DATA: [u8; CODEWORD_BITS] = build_pos_to_data();

const fn build_pos_to_data() -> [u8; CODEWORD_BITS] {
    let mut out = [0xFFu8; CODEWORD_BITS];
    let mut i = 0;
    while i < DATA_BITS {
        out[DATA_POSITIONS[i] as usize] = i as u8;
        i += 1;
    }
    out
}

/// `SCATTER[k][b]`: the codeword bits holding data byte `k` with value `b`.
static SCATTER: [[u128; 256]; 8] = build_scatter();

const fn build_scatter() -> [[u128; 256]; 8] {
    let mut out = [[0u128; 256]; 8];
    let mut k = 0;
    while k < 8 {
        let mut b = 0usize;
        while b < 256 {
            let mut mask = 0u128;
            let mut j = 0;
            while j < 8 {
                if (b >> j) & 1 == 1 {
                    mask |= 1u128 << DATA_POSITIONS[8 * k + j];
                }
                j += 1;
            }
            out[k][b] = mask;
            b += 1;
        }
        k += 1;
    }
    out
}

/// `ENC_SYN[k][b]`: XOR of the codeword positions of data byte `k`'s set
/// bits — that byte's contribution to the Hamming syndrome.
const ENC_SYN: [[u8; 256]; 8] = build_enc_syn();

const fn build_enc_syn() -> [[u8; 256]; 8] {
    let mut out = [[0u8; 256]; 8];
    let mut k = 0;
    while k < 8 {
        let mut b = 0usize;
        while b < 256 {
            let mut s = 0u8;
            let mut j = 0;
            while j < 8 {
                if (b >> j) & 1 == 1 {
                    s ^= DATA_POSITIONS[8 * k + j];
                }
                j += 1;
            }
            out[k][b] = s;
            b += 1;
        }
        k += 1;
    }
    out
}

/// `PARITY_SPREAD[s]`: the parity bits (at power-of-two positions) that
/// zero a Hamming syndrome of `s`. Positions are < 128, so any XOR of
/// them fits the 128 entries.
const PARITY_SPREAD: [u128; 128] = build_parity_spread();

const fn build_parity_spread() -> [u128; 128] {
    let mut out = [0u128; 128];
    let mut s = 0usize;
    while s < 128 {
        let mut mask = 0u128;
        let mut j = 0;
        while j < 7 {
            if (s >> j) & 1 == 1 {
                mask |= 1u128 << (1usize << j);
            }
            j += 1;
        }
        out[s] = mask;
        s += 1;
    }
    out
}

/// `SYN_BYTE[k][b]`: XOR of the positions of the set bits of codeword
/// byte `k` — the received word's syndrome, one byte at a time. Position
/// 0 (the overall-parity bit) XORs in `0`, so it needs no special case.
const SYN_BYTE: [[u8; 256]; CW_BYTES] = build_syn_byte();

const fn build_syn_byte() -> [[u8; 256]; CW_BYTES] {
    let mut out = [[0u8; 256]; CW_BYTES];
    let mut k = 0;
    while k < CW_BYTES {
        let mut b = 0usize;
        while b < 256 {
            let mut s = 0u8;
            let mut j = 0;
            while j < 8 {
                let pos = 8 * k + j;
                if (b >> j) & 1 == 1 && pos < CODEWORD_BITS {
                    s ^= pos as u8;
                }
                j += 1;
            }
            out[k][b] = s;
            b += 1;
        }
        k += 1;
    }
    out
}

/// `GATHER[k][b]`: the data bits held by codeword byte `k` with value `b`
/// (parity positions contribute nothing).
static GATHER: [[u64; 256]; CW_BYTES] = build_gather();

const fn build_gather() -> [[u64; 256]; CW_BYTES] {
    let mut out = [[0u64; 256]; CW_BYTES];
    let mut k = 0;
    while k < CW_BYTES {
        let mut b = 0usize;
        while b < 256 {
            let mut word = 0u64;
            let mut j = 0;
            while j < 8 {
                let pos = 8 * k + j;
                if (b >> j) & 1 == 1 && pos < CODEWORD_BITS {
                    let idx = POS_TO_DATA[pos];
                    if idx != 0xFF {
                        word |= 1u64 << idx;
                    }
                }
                j += 1;
            }
            out[k][b] = word;
            b += 1;
        }
        k += 1;
    }
    out
}

/// The Hamming(72,64) SECDED codec. Stateless; all methods are associated
/// functions on a unit struct so call sites read `Secded::encode(..)`.
///
/// ```
/// use noc_ecc::{flip_bit, flip_bits, Decode, Secded};
///
/// let cw = Secded::encode(0xDEAD_BEEF);
/// assert_eq!(Secded::decode(cw), Decode::Clean { data: 0xDEAD_BEEF });
///
/// // One flipped bit is corrected...
/// assert_eq!(Secded::decode(flip_bit(cw, 17)).data(), Some(0xDEAD_BEEF));
///
/// // ...two are detected but NOT correctable — the response the TASP
/// // trojan farms for its denial-of-service attack.
/// let two = flip_bits(cw, (1 << 3) | (1 << 40));
/// assert!(Secded::decode(two).needs_retransmission());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Secded;

impl Secded {
    /// Encode 64 data bits into a 72-bit codeword.
    #[inline]
    pub fn encode(data: u64) -> Codeword {
        let mut cw: u128 = 0;
        let mut syndrome = 0u8;
        let mut k = 0;
        while k < 8 {
            let b = ((data >> (8 * k)) & 0xFF) as usize;
            cw |= SCATTER[k][b];
            syndrome ^= ENC_SYN[k][b];
            k += 1;
        }
        cw |= PARITY_SPREAD[syndrome as usize];
        // Overall parity (even) over all 72 bits.
        cw |= (cw.count_ones() & 1) as u128;
        debug_assert_eq!(Self::syndrome(cw), 0);
        debug_assert_eq!(cw.count_ones() & 1, 0);
        Codeword(cw)
    }

    /// XOR of the positions (1..72) of all set bits — the Hamming syndrome.
    #[inline]
    fn syndrome(cw: u128) -> u8 {
        let mut s = 0u8;
        let mut k = 0;
        while k < CW_BYTES {
            s ^= SYN_BYTE[k][((cw >> (8 * k)) & 0xFF) as usize];
            k += 1;
        }
        s
    }

    /// Extract the 64 data bits from (a possibly corrected) codeword.
    #[inline]
    fn extract(cw: u128) -> u64 {
        let mut data = 0u64;
        let mut k = 0;
        while k < CW_BYTES {
            data |= GATHER[k][((cw >> (8 * k)) & 0xFF) as usize];
            k += 1;
        }
        data
    }

    /// Decode a received codeword, correcting a single-bit error if present.
    #[inline]
    pub fn decode(received: Codeword) -> Decode {
        let cw = received.0 & Codeword::MASK;
        let syndrome = Self::syndrome(cw);
        let parity_odd = cw.count_ones() & 1 == 1;
        match (syndrome, parity_odd) {
            (0, false) => Decode::Clean {
                data: Self::extract(cw),
            },
            (s, true) => {
                let pos = s as usize;
                if pos >= CODEWORD_BITS {
                    // A "single" error pointing off the wire: ≥3 real errors.
                    return Decode::Uncorrectable {
                        syndrome: Syndrome(s),
                    };
                }
                // pos == 0 means the overall-parity bit itself flipped; data
                // positions are untouched either way after the fix below.
                let fixed = cw ^ (1u128 << pos);
                Decode::Corrected {
                    data: Self::extract(fixed),
                    bit: s,
                    syndrome: Syndrome(s),
                }
            }
            (s, false) => Decode::Uncorrectable {
                syndrome: Syndrome(s),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codeword::{flip_bit, flip_bits};
    use proptest::prelude::*;

    /// The original bit-serial construction, kept verbatim as the
    /// reference the table-driven kernel is differentially tested against.
    mod reference {
        use super::*;

        /// XOR of the positions (1..72) of all set bits.
        pub fn positional_xor(cw: u128) -> u8 {
            let mut s = 0u8;
            let mut bits = cw >> 1; // skip overall-parity bit 0
            let mut base = 1u8;
            while bits != 0 {
                let tz = bits.trailing_zeros() as u8;
                let pos = base + tz;
                s ^= pos;
                bits >>= tz + 1;
                base += tz + 1;
            }
            s
        }

        pub fn extract(cw: u128) -> u64 {
            let mut data = 0u64;
            let mut i = 0;
            while i < DATA_BITS {
                if (cw >> DATA_POSITIONS[i]) & 1 == 1 {
                    data |= 1u64 << i;
                }
                i += 1;
            }
            data
        }

        pub fn encode(data: u64) -> Codeword {
            let mut cw: u128 = 0;
            let mut i = 0;
            while i < DATA_BITS {
                if (data >> i) & 1 == 1 {
                    cw |= 1u128 << DATA_POSITIONS[i];
                }
                i += 1;
            }
            let syndrome = positional_xor(cw);
            let mut p = 1usize;
            while p < CODEWORD_BITS {
                if (syndrome as usize) & p != 0 {
                    cw |= 1u128 << p;
                }
                p <<= 1;
            }
            if (cw.count_ones() & 1) == 1 {
                cw |= 1;
            }
            Codeword(cw)
        }

        pub fn decode(received: Codeword) -> Decode {
            let cw = received.0 & Codeword::MASK;
            let syndrome = positional_xor(cw);
            let parity_odd = cw.count_ones() & 1 == 1;
            match (syndrome, parity_odd) {
                (0, false) => Decode::Clean { data: extract(cw) },
                (s, true) => {
                    let pos = s as usize;
                    if pos >= CODEWORD_BITS {
                        return Decode::Uncorrectable {
                            syndrome: Syndrome(s),
                        };
                    }
                    let fixed = cw ^ (1u128 << pos);
                    Decode::Corrected {
                        data: extract(fixed),
                        bit: s,
                        syndrome: Syndrome(s),
                    }
                }
                (s, false) => Decode::Uncorrectable {
                    syndrome: Syndrome(s),
                },
            }
        }
    }

    #[test]
    fn data_positions_are_the_64_non_powers_of_two_below_72() {
        assert_eq!(DATA_POSITIONS.len(), 64);
        for p in DATA_POSITIONS {
            assert!(p >= 1 && (p as usize) < CODEWORD_BITS);
            assert!(!p.is_power_of_two(), "{p} is a parity position");
        }
        // Strictly increasing ⇒ all distinct.
        for w in DATA_POSITIONS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(DATA_POSITIONS[0], 3);
        assert_eq!(*DATA_POSITIONS.last().unwrap(), 71);
    }

    #[test]
    fn clean_roundtrip_for_edge_words() {
        for data in [0u64, u64::MAX, 1, 1 << 63, 0xAAAA_AAAA_AAAA_AAAA] {
            let cw = Secded::encode(data);
            assert_eq!(Secded::decode(cw), Decode::Clean { data });
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected_exhaustive() {
        let data = 0x0123_4567_89AB_CDEF;
        let cw = Secded::encode(data);
        for i in 0..CODEWORD_BITS {
            match Secded::decode(flip_bit(cw, i)) {
                Decode::Corrected { data: d, bit, .. } => {
                    assert_eq!(d, data, "flip at {i} not corrected");
                    assert_eq!(bit as usize, i);
                }
                other => panic!("flip at {i} gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_exhaustive() {
        // 72*71/2 = 2556 pairs — cheap enough to enumerate completely.
        let data = 0xFEED_FACE_CAFE_BEEF;
        let cw = Secded::encode(data);
        for i in 0..CODEWORD_BITS {
            for j in (i + 1)..CODEWORD_BITS {
                let bad = flip_bits(cw, (1u128 << i) | (1u128 << j));
                assert!(
                    matches!(Secded::decode(bad), Decode::Uncorrectable { .. }),
                    "double flip ({i},{j}) was not flagged uncorrectable"
                );
            }
        }
    }

    #[test]
    fn decode_accessors() {
        let cw = Secded::encode(99);
        assert_eq!(Secded::decode(cw).data(), Some(99));
        assert!(!Secded::decode(cw).needs_retransmission());
        let bad = flip_bits(cw, 0b11 << 10);
        assert_eq!(Secded::decode(bad).data(), None);
        assert!(Secded::decode(bad).needs_retransmission());
    }

    #[test]
    fn table_kernel_matches_reference_exhaustively_on_flips() {
        // Every 0-, 1-, and 2-bit corruption of one codeword, including
        // the parity positions and the overall-parity bit.
        let cw = Secded::encode(0xA5A5_5A5A_0F0F_F0F0);
        assert_eq!(Secded::decode(cw), reference::decode(cw));
        for i in 0..CODEWORD_BITS {
            let one = flip_bit(cw, i);
            assert_eq!(Secded::decode(one), reference::decode(one), "flip {i}");
            for j in (i + 1)..CODEWORD_BITS {
                let two = flip_bits(cw, (1u128 << i) | (1u128 << j));
                assert_eq!(
                    Secded::decode(two),
                    reference::decode(two),
                    "flips ({i},{j})"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn roundtrip(data in any::<u64>()) {
            prop_assert_eq!(Secded::decode(Secded::encode(data)), Decode::Clean { data });
        }

        #[test]
        fn single_error_corrected(data in any::<u64>(), bit in 0usize..CODEWORD_BITS) {
            let got = Secded::decode(flip_bit(Secded::encode(data), bit));
            prop_assert_eq!(got.data(), Some(data));
        }

        #[test]
        fn double_error_detected(data in any::<u64>(),
                                 a in 0usize..CODEWORD_BITS, b in 0usize..CODEWORD_BITS) {
            prop_assume!(a != b);
            let bad = flip_bits(Secded::encode(data), (1u128 << a) | (1u128 << b));
            prop_assert!(Secded::decode(bad).needs_retransmission());
        }

        #[test]
        fn encoded_words_have_even_weight_and_zero_syndrome(data in any::<u64>()) {
            let cw = Secded::encode(data);
            prop_assert_eq!(cw.0.count_ones() % 2, 0);
        }

        #[test]
        fn encode_matches_bit_serial_reference(data in any::<u64>()) {
            prop_assert_eq!(Secded::encode(data), reference::encode(data));
        }

        #[test]
        fn decode_matches_reference_with_zero_flips(data in any::<u64>()) {
            let cw = Secded::encode(data);
            prop_assert_eq!(Secded::decode(cw), reference::decode(cw));
        }

        #[test]
        fn decode_matches_reference_with_one_flip(data in any::<u64>(),
                                                  a in 0usize..CODEWORD_BITS) {
            let bad = flip_bit(Secded::encode(data), a);
            prop_assert_eq!(Secded::decode(bad), reference::decode(bad));
        }

        #[test]
        fn decode_matches_reference_with_two_flips(data in any::<u64>(),
                                                   a in 0usize..CODEWORD_BITS,
                                                   b in 0usize..CODEWORD_BITS) {
            // a == b allowed: that degenerates to an interesting 0-flip case.
            let bad = flip_bits(Secded::encode(data), (1u128 << a) | (1u128 << b));
            prop_assert_eq!(Secded::decode(bad), reference::decode(bad));
        }

        #[test]
        fn decode_matches_reference_on_arbitrary_wire_garbage(hi in any::<u64>(),
                                                              lo in any::<u64>()) {
            let raw = ((hi as u128) << 64) | lo as u128;
            let cw = Codeword(raw & Codeword::MASK);
            prop_assert_eq!(Secded::decode(cw), reference::decode(cw));
        }
    }
}
