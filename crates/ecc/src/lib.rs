//! Switch-to-switch SECDED error correction for NoC links.
//!
//! The paper assumes a single-error-correction double-error-detection
//! (SECDED) Hamming code on every router-to-router link: one flipped bit is
//! silently corrected, two flipped bits are detected but *not* correctable
//! and trigger a switch-to-switch retransmission. The TASP trojan exploits
//! exactly this gap by always flipping two bits.
//!
//! We implement the standard extended Hamming(72,64) code: 64 data bits,
//! 7 Hamming parity bits, and one overall-parity bit, for a 72-bit codeword
//! carried as the low bits of a `u128`.

pub mod codeword;
pub mod secded;

pub use codeword::{flip_bit, flip_bits, Codeword, CODEWORD_BITS, DATA_BITS};
pub use secded::{Decode, Secded, Syndrome};
