//! The 72-bit link codeword and bit-flip helpers.

/// Number of bits in a link codeword (64 data + 7 Hamming parity + 1 overall
/// parity).
pub const CODEWORD_BITS: usize = 72;

/// Number of data bits protected per codeword.
pub const DATA_BITS: usize = 64;

/// A 72-bit codeword stored in the low bits of a `u128`.
///
/// Bit index 0 is the overall-parity bit; indices 1..72 follow the classic
/// Hamming positional numbering (powers of two are parity positions). The
/// fault-injection layers (transient, permanent, trojan) flip bits of this
/// value while it is "on the wire".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword(pub u128);

impl Codeword {
    /// Mask of valid bits.
    pub const MASK: u128 = (1u128 << CODEWORD_BITS) - 1;

    #[inline]
    /// Value of bit `i` of the codeword.
    pub fn bit(self, i: usize) -> bool {
        debug_assert!(i < CODEWORD_BITS);
        (self.0 >> i) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn weight(self) -> u32 {
        self.0.count_ones()
    }
}

/// Flip a single bit of a codeword.
#[inline]
pub fn flip_bit(cw: Codeword, i: usize) -> Codeword {
    debug_assert!(i < CODEWORD_BITS, "bit index out of the 72-bit wire");
    Codeword(cw.0 ^ (1u128 << i))
}

/// Flip every bit set in `mask` (which must lie within the 72-bit wire).
#[inline]
pub fn flip_bits(cw: Codeword, mask: u128) -> Codeword {
    debug_assert_eq!(mask & !Codeword::MASK, 0, "mask exceeds the wire width");
    Codeword(cw.0 ^ mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        let cw = Codeword(0xDEAD_BEEF);
        for i in 0..CODEWORD_BITS {
            assert_eq!(flip_bit(flip_bit(cw, i), i), cw);
        }
    }

    #[test]
    fn flip_bits_xors_mask() {
        let cw = Codeword(0b1010);
        assert_eq!(flip_bits(cw, 0b0110).0, 0b1100);
    }

    #[test]
    fn weight_counts_set_bits() {
        assert_eq!(Codeword(0).weight(), 0);
        assert_eq!(Codeword(0b1011).weight(), 3);
    }
}
