//! Conformance-subsystem self-tests: the differential driver must pass
//! every scenario on a fixed seed set, and — the other half of the
//! bargain — must *fail*, shrink small, and replay deterministically
//! when a deliberate defect is compiled into the simulator's cycle loop.

use htnoc_conformance::{
    run_differential, shrink, Scenario, TOPOLOGY_DEGRADED, TOPOLOGY_MESH, TOPOLOGY_TORUS,
};
use noc_sim::config::Sabotage;

/// Fixed seed sweep: every generated scenario is conformant. This is the
/// unit-test twin of `fuzz --seed 0 --cases 500` (CI runs the binary at
/// larger budgets; this keeps `cargo test` self-contained). The free
/// sampler mixes all three topology families (mesh half the time, torus
/// and degraded a quarter each).
#[test]
fn fixed_seed_set_is_conformant() {
    for seed in 0..500 {
        let sc = Scenario::generate(seed);
        let report = run_differential(&sc);
        assert!(
            report.ok(),
            "seed {seed} diverged: {:?}",
            report.divergences
        );
    }
}

/// The same 500-seed sweep pinned to each topology family in turn, so a
/// family-specific oracle bug cannot hide behind the mixed sampler's
/// seed allocation.
#[test]
fn fixed_seed_set_is_conformant_per_topology_family() {
    for family in [TOPOLOGY_MESH, TOPOLOGY_TORUS, TOPOLOGY_DEGRADED] {
        for seed in 0..500 {
            let sc = Scenario::generate_in(seed, Some(family));
            let report = run_differential(&sc);
            assert!(
                report.ok(),
                "family {family} seed {seed} diverged: {:?}",
                report.divergences
            );
        }
    }
}

/// Every deliberate defect the sabotage self-tests rely on must still be
/// caught when the fabric is a torus — the differential driver's teeth
/// must not dull on the new topology.
#[test]
fn sabotage_defects_still_diverge_on_a_torus() {
    type SabotageMaker = fn(&Scenario) -> Sabotage;
    let kinds: &[(&str, SabotageMaker)] = &[
        ("stall-sa", |sc| Sabotage::StallSaRouter {
            router: sc.packets[0].src % sc.routers().max(1) as u16,
        }),
        ("leak-credit", |_| Sabotage::LeakCredit { every: 2 }),
        ("overcount", |_| Sabotage::OvercountDelivered { every: 2 }),
        ("over-skip", |_| Sabotage::OverSkip),
    ];
    for (name, make) in kinds {
        let diverged = (0..200).any(|seed| {
            let mut sc = Scenario::generate_in(seed, Some(TOPOLOGY_TORUS));
            sc.sabotage = Some(make(&sc));
            !run_differential(&sc).ok()
        });
        assert!(
            diverged,
            "{name} sabotage never diverged on a torus within 200 seeds"
        );
    }
}

/// The minimized quarantine counterexample the fuzzer found while this
/// subsystem was being built (seed 1454): purging a retransmission entry
/// whose flit had already been accepted downstream restored a credit that
/// was simultaneously riding the reverse wire, overflowing the upstream
/// credit counter past the VC depth. Must stay green forever.
#[test]
fn quarantine_credit_double_return_regression() {
    let text = include_str!("fixtures/quarantine_credit_regression.json");
    let sc = Scenario::parse(text).expect("fixture parses");
    let report = run_differential(&sc);
    assert!(
        report.ok(),
        "quarantine credit regression resurfaced: {:?}",
        report.divergences
    );
}

/// Drive one sabotage through the full pipeline: find a diverging seed,
/// shrink it, check the minimality bounds from the acceptance criteria
/// (≤ 4 routers, ≤ 10 packets), and replay the minimized scenario through
/// a JSON round-trip twice to prove determinism.
fn sabotage_pipeline(make: impl Fn(&Scenario) -> Sabotage) -> Scenario {
    let mut failing = None;
    for seed in 0..200 {
        let mut sc = Scenario::generate(seed);
        sc.sabotage = Some(make(&sc));
        if !run_differential(&sc).ok() {
            failing = Some(sc);
            break;
        }
    }
    let sc = failing.expect("a sabotaged run must diverge within 200 seeds");
    let minimal = shrink(&sc, &|c| !run_differential(c).ok());
    assert!(
        minimal.routers() <= 4,
        "shrunk to {} routers (want <= 4)",
        minimal.routers()
    );
    assert!(
        minimal.packets.len() <= 10,
        "shrunk to {} packets (want <= 10)",
        minimal.packets.len()
    );
    // Deterministic replay through the serialization boundary.
    let round = Scenario::parse(&minimal.to_json_string()).expect("round-trip");
    assert_eq!(round, minimal, "JSON round-trip is lossless");
    let a = run_differential(&round);
    let b = run_differential(&round);
    assert!(!a.ok(), "minimized scenario still fails");
    assert_eq!(
        a.divergences, b.divergences,
        "replay is bit-identically deterministic"
    );
    minimal
}

#[test]
fn stall_sa_sabotage_shrinks_to_minimal_reproducer() {
    let minimal = sabotage_pipeline(|sc| {
        // Stall a router on some packet's route so the defect bites.
        Sabotage::StallSaRouter {
            router: sc.packets[0].src % sc.routers().max(1) as u16,
        }
    });
    assert!(
        matches!(minimal.sabotage, Some(Sabotage::StallSaRouter { .. })),
        "the sabotage itself is load-bearing and must survive shrinking"
    );
}

#[test]
fn leak_credit_sabotage_shrinks_to_minimal_reproducer() {
    let minimal = sabotage_pipeline(|_| Sabotage::LeakCredit { every: 2 });
    assert!(matches!(
        minimal.sabotage,
        Some(Sabotage::LeakCredit { .. })
    ));
}

#[test]
fn overcount_delivered_sabotage_shrinks_to_minimal_reproducer() {
    let minimal = sabotage_pipeline(|_| Sabotage::OvercountDelivered { every: 2 });
    assert!(matches!(
        minimal.sabotage,
        Some(Sabotage::OvercountDelivered { .. })
    ));
}

#[test]
fn over_skip_sabotage_shrinks_to_minimal_reproducer() {
    // The fast-forward off-by-one: only bites when a skip window is
    // bounded by the source's injection horizon, i.e. on scenarios with
    // genuine idle gaps — exactly what the bursty generator arm
    // produces. The skipped-over injection surfaces as injection drift
    // at the next epoch cross-check.
    let minimal = sabotage_pipeline(|_| Sabotage::OverSkip);
    assert!(matches!(minimal.sabotage, Some(Sabotage::OverSkip)));
}

/// The oracle is an independent reimplementation; sanity-check one
/// crossing prediction against the real simulator on the paper's mesh:
/// an armed trojan under mitigation classifies as HardwareTrojan and the
/// victim packet still delivers (the L-Ob resolution from PAPER.md).
#[test]
fn oracle_and_simulator_agree_on_the_paper_attack() {
    use htnoc_conformance::{PacketSpec, TrojanSpec};
    let mut sc = Scenario {
        seed: 0,
        width: 4,
        height: 4,
        concentration: 1,
        vcs: 2,
        vc_depth: 4,
        retx_depth: 4,
        retx_per_vc: false,
        mitigation: true,
        retry_budget: None,
        watchdog: false,
        max_cycles: 2_000,
        packets: vec![PacketSpec {
            id: 1,
            src: 0,
            dest: 15,
            vc: 0,
            len: 4,
            inject_at: 0,
            thread: 0,
        }],
        trojans: Vec::new(),
        stuck: Vec::new(),
        sabotage: None,
        topology: htnoc_conformance::TOPOLOGY_MESH,
        removed: Vec::new(),
    };
    let path =
        htnoc_conformance::oracle::xy_walk(&sc.mesh(), noc_types::NodeId(0), noc_types::NodeId(15));
    sc.trojans.push(TrojanSpec {
        link: path[1],
        target_dest: 15,
        armed: true,
        cooldown: 0,
    });
    let report = run_differential(&sc);
    assert!(
        report.ok(),
        "paper attack diverged: {:?}",
        report.divergences
    );
    assert!(report.quiesced, "mitigation resolves the DoS");
}

/// A diverging scenario yields a pre-divergence snapshot: the simulator
/// frozen at the last conformant epoch boundary, restorable into a fresh
/// simulator with the same config. A conformant scenario yields none.
#[test]
fn divergence_artifact_captures_last_conformant_state() {
    use htnoc_conformance::divergence_artifact;
    // A clean run produces no artifact.
    let clean = Scenario::generate(0);
    assert!(run_differential(&clean).ok(), "seed 0 is conformant");
    assert!(divergence_artifact(&clean, 1).is_none());
    // Find a sabotaged seed that diverges and capture its artifact.
    let mut failing = None;
    for seed in 0..200 {
        let mut sc = Scenario::generate(seed);
        sc.sabotage = Some(Sabotage::LeakCredit { every: 2 });
        if !run_differential(&sc).ok() {
            failing = Some(sc);
            break;
        }
    }
    let sc = failing.expect("a sabotaged run must diverge within 200 seeds");
    let (cycle, snap) = divergence_artifact(&sc, 1).expect("diverging run yields an artifact");
    assert_eq!(
        snap.cycle(),
        cycle,
        "header cycle matches the reported cycle"
    );
    // The artifact restores into a simulator built from the same config.
    let mut sim = noc_sim::Simulator::new(sc.sim_config());
    sim.restore(&snap).expect("artifact restores cleanly");
    assert_eq!(sim.cycle(), cycle);
}
