//! A deliberately small JSON reader/writer for scenario serialization.
//!
//! The container builds fully offline (no serde); scenarios only ever
//! contain integers, booleans, strings, arrays, and objects, so a ~200
//! line recursive-descent parser covers the whole format. Numbers are
//! kept as `i64` — the format never emits floats — which makes the
//! round-trip exact.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the scenario format has no floats).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "float at offset {start}: the scenario format is integer-only"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(-42)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Str("he \"quoted\"\n".into())),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] , \"s\" : \"π\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("π"));
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1 x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn u64_accessor_rejects_negatives() {
        assert_eq!(Json::Num(-1).as_u64(), None);
        assert_eq!(Json::Num(7).as_u64(), Some(7));
    }
}
