//! The reference oracle: a deliberately naive, packet-granularity model
//! of the paper's protocol.
//!
//! [`RefSim`] never models the router pipeline, virtual channels, or
//! arbitration — only the facts that are *timing-independent* and can
//! therefore be predicted exactly (or bounded provably) from a
//! [`Scenario`] alone:
//!
//! * **Routing** — an independent XY walk per packet (re-implemented
//!   here; the simulator's `routing` module is deliberately not reused),
//!   giving the exact multiset of links each flit crosses on a clean
//!   first pass.
//! * **SECDED** — one encode per flit word; a stuck-at-one wire corrects
//!   iff the clean codeword has that bit at zero, and never NACKs.
//! * **TASP trojans** — an armed, zero-cooldown trojan fires a two-bit
//!   walking flip on every head flit whose header destination matches
//!   its comparator; two bit-flips are always detected-uncorrectable.
//! * **Detector + L-Ob escalation** — an uncorrectable fault NACKs; the
//!   second fault on the same flit selects an obfuscation plan, and an
//!   obfuscated header no longer matches the comparator, so the third
//!   crossing passes. Once a link has a logged plan and a protected
//!   destination, later heads may cross for 0 or 1 faults (proactive
//!   protection is timing-dependent, hence per-link *bounds*:
//!   `2·[k ≥ 1] ≤ uncorrectable ≤ 2·k` for `k` targeted heads).
//! * **Unprotected DoS** — with mitigation off and no retry budget, a
//!   targeted head retries forever and its packet never delivers
//!   (Fig. 11(a)).
//! * **Bounded retries without mitigation** — the escalation ladder
//!   quarantines exactly the trojan link, and graceful degradation
//!   conserves packets: delivered + dropped = injected.
//!
//! Everything the pipeline *does* affect (latency, per-cycle occupancy,
//! NACK interleavings) is intentionally out of scope; the network-wide
//! invariant oracles in `noc_sim` cover those continuously instead.

use crate::scenario::Scenario;
use noc_ecc::Secded;
use noc_types::{Mesh, NodeId, PacketId, Topology};

/// Per-link bound on a monotone counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkBound {
    /// The link the bound applies to.
    pub link: u16,
    /// Inclusive lower bound.
    pub min: u64,
    /// Inclusive upper bound.
    pub max: u64,
}

/// Everything the oracle predicts about one scenario's run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Exact packet count offered by the source over the whole run.
    pub injected_packets: u64,
    /// Exact flit count offered by the source over the whole run.
    pub injected_flits: u64,
    /// Whether the run must reach quiescence within the cycle budget.
    pub drains: bool,
    /// Whether fault-count predictions apply (false when a trojan has a
    /// nonzero cooldown — its firing pattern is then timing-dependent).
    pub exact_counts: bool,
    /// Every offered packet must be delivered exactly once.
    pub must_deliver_all: bool,
    /// Packets that must never be delivered (the unprotected DoS).
    pub never_delivered: Vec<u64>,
    /// Per-link bounds on detected-uncorrectable ECC events.
    pub uncorrectable: Vec<LinkBound>,
    /// Per-link bounds on single-bit ECC corrections.
    pub corrected: Vec<LinkBound>,
    /// The run must produce zero NACKs and zero retransmissions.
    pub zero_nacks: bool,
    /// Links whose final detector classification must be HardwareTrojan.
    pub trojan_class_links: Vec<u16>,
    /// No link may emit any classification event at all.
    pub no_classification: bool,
    /// Exact set of quarantined links at the end of the run (`None`
    /// skips the check; quarantine timing is modelled only in the
    /// bounded-retry domain).
    pub quarantine: Option<Vec<u16>>,
    /// At quiescence, delivered + dropped packets/flits must equal
    /// injected (graceful-degradation conservation).
    pub conserve_at_quiescence: bool,
}

/// The reference model built from one scenario.
pub struct RefSim {
    mesh: Mesh,
    scenario: Scenario,
    /// Per packet: the links its flits cross on a clean first pass.
    paths: Vec<Vec<u16>>,
}

impl RefSim {
    /// Build the model (computes every packet's clean first-pass path:
    /// the independent XY walk on a plain mesh, the topology route
    /// tables on a torus or degraded mesh).
    pub fn new(scenario: &Scenario) -> Self {
        let mesh = scenario.mesh();
        let paths = scenario
            .packets
            .iter()
            .map(|p| clean_path(&mesh, NodeId(p.src), NodeId(p.dest)))
            .collect();
        Self {
            mesh,
            scenario: scenario.clone(),
            paths,
        }
    }

    /// Exact number of (packets, flits) the source has offered after
    /// `cycles` simulated cycles (injection is unconditional: the per-core
    /// queues are unbounded, so admission never gates it).
    pub fn injected_by(&self, cycles: u64) -> (u64, u64) {
        let mut packets = 0;
        let mut flits = 0;
        for p in &self.scenario.packets {
            if p.inject_at < cycles {
                packets += 1;
                flits += p.len.max(1) as u64;
            }
        }
        (packets, flits)
    }

    /// Number of armed, matching head flits crossing each trojan link on
    /// a clean pass ("targeted heads", the `k` of the fault bounds).
    pub fn targeted_heads(&self, link: u16) -> u64 {
        let Some(t) = self.scenario.trojans.iter().find(|t| t.link == link) else {
            return 0;
        };
        if !t.armed {
            return 0;
        }
        self.scenario
            .packets
            .iter()
            .zip(&self.paths)
            .filter(|(p, path)| p.dest == t.target_dest && path.contains(&link))
            .count() as u64
    }

    /// Ids of packets a zero-cooldown armed trojan targets (their head
    /// can never cross the compromised link unobfuscated).
    pub fn targeted_packets(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .scenario
            .packets
            .iter()
            .zip(&self.paths)
            .filter(|(p, path)| {
                self.scenario.trojans.iter().any(|t| {
                    t.armed && t.cooldown == 0 && t.target_dest == p.dest && path.contains(&t.link)
                })
            })
            .map(|(p, _)| p.id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exact single-bit-correction count on `link` from a stuck-at-one
    /// wire at `bit`: one correction per crossing flit whose clean
    /// codeword has the bit at zero. Only valid when nothing retransmits.
    pub fn stuck_corrections(&self, link: u16, bit: u8) -> u64 {
        let mut corrections = 0;
        let mut flit_counter = 0u64;
        for (p, path) in self.scenario.packets.iter().zip(&self.paths) {
            if !path.contains(&link) {
                continue;
            }
            for flit in p.packet().packetize(&mut flit_counter) {
                let cw = Secded::encode(flit.word);
                if (cw.0 >> bit) & 1 == 0 {
                    corrections += 1;
                }
            }
        }
        corrections
    }

    /// The full end-state prediction for this scenario.
    pub fn expectation(&self) -> Expectation {
        let sc = &self.scenario;
        let (injected_packets, injected_flits) = self.injected_by(sc.max_cycles);
        let exact_counts = sc.trojans.iter().all(|t| t.cooldown == 0);

        let targeted = if exact_counts {
            self.targeted_packets()
        } else {
            Vec::new()
        };
        let under_attack = !targeted.is_empty();
        let unprotected_dos = !sc.mitigation && sc.retry_budget.is_none() && under_attack;
        let bounded_quarantine = !sc.mitigation && sc.retry_budget.is_some();
        let drains = !unprotected_dos;

        // Per-link fault bounds. Links not mentioned default to "anything"
        // in the driver, so emit a bound for every link when we know one.
        let mut uncorrectable = Vec::new();
        let mut corrected = Vec::new();
        let stuck_only = sc.trojans.is_empty();
        if exact_counts {
            for link in 0..self.mesh.links() as u16 {
                let k = self.targeted_heads(link);
                let u = if k == 0 {
                    LinkBound {
                        link,
                        min: 0,
                        max: 0,
                    }
                } else if sc.mitigation {
                    // Two faults force L-Ob; obfuscated headers pass.
                    LinkBound {
                        link,
                        min: 2,
                        max: 2 * k,
                    }
                } else {
                    // No L-Ob: the trojan keeps firing until the budget
                    // quarantines the link (or forever in the DoS).
                    LinkBound {
                        link,
                        min: 2,
                        max: u64::MAX,
                    }
                };
                uncorrectable.push(u);
                let stuck_here: Vec<u8> = sc
                    .stuck
                    .iter()
                    .filter(|s| s.link == link)
                    .map(|s| s.bit)
                    .collect();
                let c = match stuck_here.as_slice() {
                    [] => LinkBound {
                        link,
                        min: 0,
                        max: 0,
                    },
                    // A single stuck wire with no retransmissions anywhere
                    // is exactly predictable; anything richer is not.
                    [bit] if stuck_only && !under_attack => {
                        let n = self.stuck_corrections(link, *bit);
                        LinkBound {
                            link,
                            min: n,
                            max: n,
                        }
                    }
                    _ => LinkBound {
                        link,
                        min: 0,
                        max: u64::MAX,
                    },
                };
                corrected.push(c);
            }
        }

        let trojan_class_links = if sc.mitigation && exact_counts {
            let mut v: Vec<u16> = sc
                .trojans
                .iter()
                .map(|t| t.link)
                .filter(|&l| self.targeted_heads(l) > 0)
                .collect();
            v.sort_unstable();
            v
        } else {
            Vec::new()
        };

        let quarantine = if bounded_quarantine && exact_counts {
            let mut q: Vec<u16> = sc
                .trojans
                .iter()
                .map(|t| t.link)
                .filter(|&l| self.targeted_heads(l) > 0)
                .collect();
            q.sort_unstable();
            Some(q)
        } else if sc.mitigation && exact_counts {
            // The detector resolves every attack with L-Ob well inside the
            // generator's budgets, so escalation never reaches quarantine.
            Some(Vec::new())
        } else {
            None
        };

        Expectation {
            injected_packets,
            injected_flits,
            drains,
            exact_counts,
            must_deliver_all: drains && !bounded_quarantine,
            never_delivered: if unprotected_dos {
                targeted
            } else {
                Vec::new()
            },
            uncorrectable,
            corrected,
            zero_nacks: exact_counts && !under_attack,
            trojan_class_links,
            no_classification: exact_counts && !under_attack,
            quarantine,
            conserve_at_quiescence: drains,
        }
    }
}

/// The links one packet crosses on a clean first pass. A plain mesh
/// keeps the fully independent [`xy_walk`]; a torus or degraded mesh
/// walks the simulator's own deterministic route tables
/// ([`noc_sim::routing::route_path`]) — there the prediction cross-checks
/// fault accounting and quarantine against the tables rather than
/// re-deriving the routing function, which `crates/noc`'s own property
/// tests cover.
pub fn clean_path(mesh: &Mesh, src: NodeId, dest: NodeId) -> Vec<u16> {
    match mesh.topology() {
        Topology::Mesh => xy_walk(mesh, src, dest),
        _ => {
            let routing = noc_sim::routing::Routing::for_mesh(mesh);
            noc_sim::routing::route_path(mesh, &routing, src, dest)
                .into_iter()
                .map(|l| l.0)
                .collect()
        }
    }
}

/// Dimension-order walk from `src` to `dest`: all X hops, then all Y
/// hops. Implemented from the paper's description, independently of
/// `noc_sim::routing`, so a routing bug in either shows as a divergence.
pub fn xy_walk(mesh: &Mesh, src: NodeId, dest: NodeId) -> Vec<u16> {
    use noc_types::Direction;
    let mut here = mesh.coord_of(src);
    let goal = mesh.coord_of(dest);
    let mut links = Vec::new();
    let mut node = src;
    while here.x != goal.x {
        let dir = if goal.x > here.x {
            Direction::East
        } else {
            Direction::West
        };
        let link = mesh
            .link_out(node, dir)
            .expect("XY step stays inside the mesh");
        links.push(link.0);
        node = mesh.neighbor(node, dir).expect("neighbor exists");
        here = mesh.coord_of(node);
    }
    while here.y != goal.y {
        let dir = if goal.y > here.y {
            Direction::North
        } else {
            Direction::South
        };
        let link = mesh
            .link_out(node, dir)
            .expect("XY step stays inside the mesh");
        links.push(link.0);
        node = mesh.neighbor(node, dir).expect("neighbor exists");
        here = mesh.coord_of(node);
    }
    links
}

/// The id a delivered packet reports.
pub fn packet_id(id: u64) -> PacketId {
    PacketId(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PacketSpec, Scenario};

    fn base(width: u8, height: u8) -> Scenario {
        Scenario {
            seed: 0,
            width,
            height,
            concentration: 1,
            vcs: 2,
            vc_depth: 2,
            retx_depth: 2,
            retx_per_vc: false,
            mitigation: true,
            retry_budget: None,
            watchdog: false,
            max_cycles: 1_000,
            packets: vec![PacketSpec {
                id: 1,
                src: 0,
                dest: 3,
                vc: 0,
                len: 2,
                inject_at: 0,
                thread: 0,
            }],
            trojans: Vec::new(),
            stuck: Vec::new(),
            sabotage: None,
            topology: crate::scenario::TOPOLOGY_MESH,
            removed: Vec::new(),
        }
    }

    #[test]
    fn xy_walk_matches_sim_routing() {
        // The independent walk must agree with the simulator's table on
        // every pair — this is the whole point of having two of them.
        for (w, h) in [(1u8, 1u8), (2, 2), (4, 4), (3, 2), (1, 4)] {
            let mesh = Mesh::new(w, h, 1);
            for s in 0..mesh.routers() as u16 {
                for d in 0..mesh.routers() as u16 {
                    let ours = xy_walk(&mesh, NodeId(s), NodeId(d));
                    let theirs: Vec<u16> = noc_sim::routing::xy_path(&mesh, NodeId(s), NodeId(d))
                        .into_iter()
                        .map(|l| l.0)
                        .collect();
                    assert_eq!(ours, theirs, "{w}x{h} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn clean_scenario_expects_total_silence() {
        let sc = base(2, 2);
        let exp = RefSim::new(&sc).expectation();
        assert_eq!(exp.injected_packets, 1);
        assert_eq!(exp.injected_flits, 2);
        assert!(exp.drains && exp.must_deliver_all && exp.zero_nacks);
        assert!(exp.no_classification);
        assert!(exp.uncorrectable.iter().all(|b| b.max == 0));
        assert_eq!(exp.quarantine.as_deref(), Some(&[][..]));
    }

    #[test]
    fn trojan_bounds_count_targeted_heads() {
        let mut sc = base(2, 2);
        let path = xy_walk(&sc.mesh(), NodeId(0), NodeId(3));
        sc.trojans.push(crate::scenario::TrojanSpec {
            link: path[0],
            target_dest: 3,
            armed: true,
            cooldown: 0,
        });
        let rs = RefSim::new(&sc);
        assert_eq!(rs.targeted_heads(path[0]), 1);
        let exp = rs.expectation();
        let b = exp
            .uncorrectable
            .iter()
            .find(|b| b.link == path[0])
            .unwrap();
        assert_eq!((b.min, b.max), (2, 2));
        assert_eq!(exp.trojan_class_links, vec![path[0]]);
        assert!(!exp.zero_nacks);
        assert!(exp.must_deliver_all, "mitigation resolves the attack");
    }

    #[test]
    fn disarmed_trojan_is_a_clean_link() {
        let mut sc = base(2, 2);
        let path = xy_walk(&sc.mesh(), NodeId(0), NodeId(3));
        sc.trojans.push(crate::scenario::TrojanSpec {
            link: path[0],
            target_dest: 3,
            armed: false,
            cooldown: 0,
        });
        let exp = RefSim::new(&sc).expectation();
        assert!(exp.zero_nacks && exp.no_classification);
        assert!(exp.uncorrectable.iter().all(|b| b.max == 0));
    }

    #[test]
    fn unprotected_dos_never_delivers_the_target() {
        let mut sc = base(2, 2);
        sc.mitigation = false;
        let path = xy_walk(&sc.mesh(), NodeId(0), NodeId(3));
        sc.trojans.push(crate::scenario::TrojanSpec {
            link: path[0],
            target_dest: 3,
            armed: true,
            cooldown: 0,
        });
        let exp = RefSim::new(&sc).expectation();
        assert!(!exp.drains);
        assert_eq!(exp.never_delivered, vec![1]);
        assert!(exp.quarantine.is_none());
    }

    #[test]
    fn bounded_retries_quarantine_exactly_the_trojan_link() {
        let mut sc = base(2, 2);
        sc.mitigation = false;
        sc.retry_budget = Some(4);
        let path = xy_walk(&sc.mesh(), NodeId(0), NodeId(3));
        sc.trojans.push(crate::scenario::TrojanSpec {
            link: path[0],
            target_dest: 3,
            armed: true,
            cooldown: 0,
        });
        let exp = RefSim::new(&sc).expectation();
        assert!(exp.drains && exp.conserve_at_quiescence);
        assert_eq!(exp.quarantine, Some(vec![path[0]]));
        assert!(!exp.must_deliver_all, "in-flight victims may drop");
    }

    #[test]
    fn stuck_bit_corrections_are_exact_and_silent() {
        let mut sc = base(2, 2);
        let path = xy_walk(&sc.mesh(), NodeId(0), NodeId(3));
        sc.stuck.push(crate::scenario::StuckSpec {
            link: path[0],
            bit: 7,
        });
        let rs = RefSim::new(&sc);
        let exp = rs.expectation();
        assert!(exp.zero_nacks && exp.no_classification && exp.drains);
        let b = exp.corrected.iter().find(|b| b.link == path[0]).unwrap();
        assert_eq!(b.min, b.max, "single stuck wire is exactly predictable");
        assert!(b.max <= 2, "at most one correction per crossing flit");
    }
}
