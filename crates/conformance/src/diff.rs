//! Lockstep differential driver: the optimized simulator vs. the
//! reference oracle plus the network-wide invariant oracles.
//!
//! The driver steps the real [`Simulator`] cycle by cycle, drains its
//! event stream, and every [`EPOCH`] cycles cross-checks the conserved
//! quantities the oracle can predict exactly (offered traffic, counter
//! monotonicity, fault-count bounds) alongside the full structural
//! audit (`check_all_invariants`). At the end of the run it compares the
//! complete [`Expectation`]: delivery maps, per-link fault counters,
//! detector verdicts, and the quarantine set.

use crate::oracle::{Expectation, RefSim};
use crate::scenario::Scenario;
use noc_mitigation::FaultClass;
use noc_sim::{SimEvent, Simulator, TrafficSource};
use noc_types::LinkId;
use std::collections::BTreeMap;

/// Cycles between mid-run cross-checks.
pub const EPOCH: u64 = 64;

/// One observed disagreement between the simulator and an oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Cycle the disagreement was detected (end-state checks report the
    /// final cycle).
    pub cycle: u64,
    /// Human-readable description.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[cycle {}] {}", self.cycle, self.what)
    }
}

/// The outcome of one differential run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every disagreement found (empty = conformant).
    pub divergences: Vec<Divergence>,
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Whether the network fully drained before the cycle budget.
    pub quiesced: bool,
}

impl DiffReport {
    /// Whether the run was fully conformant.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Monotone counters sampled each epoch (they may never decrease).
#[derive(Default, Clone, Copy)]
struct Watermark {
    injected_flits: u64,
    delivered_flits: u64,
    delivered_packets: u64,
    retransmissions: u64,
    uncorrectable: u64,
    corrected: u64,
}

/// Run `scenario` through the real simulator in lockstep with the
/// reference oracle. Returns every divergence found.
pub fn run_differential(scenario: &Scenario) -> DiffReport {
    run_differential_threads(scenario, 1)
}

/// [`run_differential`] with the optimized simulator running on the
/// sharded cycle engine at `threads` workers. The oracle is engine-blind,
/// so any thread-dependent behaviour in the simulator surfaces as an
/// ordinary divergence.
pub fn run_differential_threads(scenario: &Scenario, threads: usize) -> DiffReport {
    run_differential_inner(scenario, threads, false).0
}

/// Re-run a known-diverging scenario and capture a forensic snapshot of
/// the simulator at the last epoch boundary *before* the first
/// divergence was recorded, together with that snapshot's cycle. Restore
/// it (`Simulator::restore` on a sim built from the same scenario) and
/// single-step to watch the divergence happen.
///
/// Returns `None` when the run did not diverge (nothing to blame).
pub fn divergence_artifact(
    scenario: &Scenario,
    threads: usize,
) -> Option<(u64, noc_sim::SimSnapshot)> {
    let (report, snap) = run_differential_inner(scenario, threads, true);
    if report.ok() {
        return None;
    }
    snap.map(|s| (s.cycle(), s))
}

fn run_differential_inner(
    scenario: &Scenario,
    threads: usize,
    capture: bool,
) -> (DiffReport, Option<noc_sim::SimSnapshot>) {
    let oracle = RefSim::new(scenario);
    let exp = oracle.expectation();
    let mut sim = scenario.build_sim();
    sim.set_threads(threads);
    let mut source = scenario.source();

    let mut div: Vec<Divergence> = Vec::new();
    // Delivery map: packet id -> (times delivered, reported dest).
    let mut delivered: BTreeMap<u64, (u64, u16)> = BTreeMap::new();
    // Last classification per link.
    let mut classified: BTreeMap<u16, FaultClass> = BTreeMap::new();
    let mut quarantine_events: Vec<u16> = Vec::new();
    let mut mark = Watermark::default();
    let mut events = Vec::new();
    let mut quiesced = false;
    // Forensics: the state at the newest epoch boundary that was still
    // fully conformant, frozen once the first divergence lands.
    let mut clean_snap = capture.then(|| sim.snapshot());
    let mut artifact: Option<noc_sim::SimSnapshot> = None;

    while sim.cycle() < scenario.max_cycles {
        sim.step(&mut source);
        let now = sim.cycle();
        sim.drain_events_into(&mut events);
        for ev in events.drain(..) {
            match ev {
                SimEvent::PacketDelivered { packet, dest, .. } => {
                    let e = delivered.entry(packet.0).or_insert((0, dest.0));
                    e.0 += 1;
                    e.1 = dest.0;
                }
                SimEvent::LinkClassified { link, class, .. } => {
                    classified.insert(link.0, class);
                }
                SimEvent::LinkQuarantined { link, .. } => {
                    quarantine_events.push(link.0);
                }
                _ => {}
            }
        }
        if now.is_multiple_of(EPOCH) {
            let before = div.len();
            epoch_checks(&sim, &oracle, &exp, &mut mark, &mut div);
            if capture && artifact.is_none() {
                if div.len() > before {
                    artifact = clean_snap.take();
                } else {
                    clean_snap = Some(sim.snapshot());
                }
            }
        }
        if source.done() && sim.is_quiescent() {
            quiesced = true;
            break;
        }
        // A conformance run that already diverged structurally will not
        // get more informative; stop early to keep shrinking fast.
        if div.len() >= 32 {
            break;
        }
        // Fast-forward over provably idle stretches (bursty scenarios
        // leave the whole network quiescent between bursts), capped at
        // the next epoch boundary so the cross-check cadence is
        // unchanged. The skip gate guarantees the skipped cycles are
        // no-ops, so a skip landing on a boundary observes exactly the
        // state naive stepping would have — and an over-skipping engine
        // (the `Sabotage::OverSkip` self-test) swallows an injection the
        // oracle counts, surfacing as injection drift right here.
        let cap = scenario.max_cycles.min((now / EPOCH + 1) * EPOCH);
        if cap > now && sim.skip_idle_cycles(cap - now, &mut source) > 0 {
            let landed = sim.cycle();
            if landed.is_multiple_of(EPOCH) {
                let before = div.len();
                epoch_checks(&sim, &oracle, &exp, &mut mark, &mut div);
                if capture && artifact.is_none() {
                    if div.len() > before {
                        artifact = clean_snap.take();
                    } else {
                        clean_snap = Some(sim.snapshot());
                    }
                }
            }
        }
    }

    let end = sim.cycle();
    let before = div.len();
    epoch_checks(&sim, &oracle, &exp, &mut mark, &mut div);
    if capture && artifact.is_none() && div.len() > before {
        artifact = clean_snap.take();
    }
    end_state_checks(
        &sim,
        scenario,
        &exp,
        &delivered,
        &classified,
        quiesced,
        &mut div,
    );
    // A schedule extending past the cycle budget can never report
    // `done()`, so an empty network at the end is not a drain failure —
    // mirror the `inject_at < max_cycles` filter `must_deliver_all` uses.
    let schedule_fits = scenario
        .packets
        .iter()
        .all(|p| p.inject_at < scenario.max_cycles);
    if exp.drains && schedule_fits && !quiesced && div.is_empty() {
        div.push(Divergence {
            cycle: end,
            what: format!(
                "network failed to drain within {} cycles ({} flits resident, {} queued)",
                scenario.max_cycles,
                sim.resident_flits(),
                sim.queued_flits()
            ),
        });
    }
    // Quarantine events must agree with the simulator's dead-link list.
    let mut dead: Vec<u16> = sim.dead_links().iter().map(|l| l.0).collect();
    dead.sort_unstable();
    quarantine_events.sort_unstable();
    quarantine_events.dedup();
    if quarantine_events != dead {
        div.push(Divergence {
            cycle: end,
            what: format!(
                "LinkQuarantined events {quarantine_events:?} disagree with dead links {dead:?}"
            ),
        });
    }
    // A divergence first seen by the end-state audit still gets the last
    // clean epoch snapshot as its artifact.
    if capture && artifact.is_none() && !div.is_empty() {
        artifact = clean_snap.take();
    }
    (
        DiffReport {
            divergences: div,
            cycles: end,
            quiesced,
        },
        artifact,
    )
}

fn epoch_checks(
    sim: &Simulator,
    oracle: &RefSim,
    exp: &Expectation,
    mark: &mut Watermark,
    div: &mut Vec<Divergence>,
) {
    let now = sim.cycle();
    let stats = sim.stats();

    for v in sim.check_all_invariants() {
        div.push(Divergence {
            cycle: now,
            what: format!("invariant violation at router {}: {}", v.router, v.what),
        });
    }

    // Offered traffic is unconditional, so it is exact at every epoch.
    let (want_packets, want_flits) = oracle.injected_by(now);
    if stats.injected_packets != want_packets || stats.injected_flits != want_flits {
        div.push(Divergence {
            cycle: now,
            what: format!(
                "injection drift: sim says {}p/{}f, oracle says {}p/{}f",
                stats.injected_packets, stats.injected_flits, want_packets, want_flits
            ),
        });
    }
    if stats.delivered_flits > stats.injected_flits
        || stats.delivered_packets > stats.injected_packets
    {
        div.push(Divergence {
            cycle: now,
            what: format!(
                "delivered more than injected: {}p/{}f of {}p/{}f",
                stats.delivered_packets,
                stats.delivered_flits,
                stats.injected_packets,
                stats.injected_flits
            ),
        });
    }

    let next = Watermark {
        injected_flits: stats.injected_flits,
        delivered_flits: stats.delivered_flits,
        delivered_packets: stats.delivered_packets,
        retransmissions: stats.retransmissions,
        uncorrectable: stats.uncorrectable_faults,
        corrected: stats.corrected_faults,
    };
    for (name, before, after) in [
        ("injected_flits", mark.injected_flits, next.injected_flits),
        (
            "delivered_flits",
            mark.delivered_flits,
            next.delivered_flits,
        ),
        (
            "delivered_packets",
            mark.delivered_packets,
            next.delivered_packets,
        ),
        (
            "retransmissions",
            mark.retransmissions,
            next.retransmissions,
        ),
        (
            "uncorrectable_faults",
            mark.uncorrectable,
            next.uncorrectable,
        ),
        ("corrected_faults", mark.corrected, next.corrected),
    ] {
        if after < before {
            div.push(Divergence {
                cycle: now,
                what: format!("monotone counter {name} went backwards: {before} -> {after}"),
            });
        }
    }
    *mark = next;

    // Fault bounds hold at every instant, not just the end — catch an
    // exploding counter as soon as it crosses its ceiling.
    for b in &exp.uncorrectable {
        let got = sim.metrics().link(LinkId(b.link)).ecc_uncorrectable.get();
        if got > b.max {
            div.push(Divergence {
                cycle: now,
                what: format!(
                    "link {} uncorrectable count {got} exceeds oracle ceiling {}",
                    b.link, b.max
                ),
            });
        }
    }
    for b in &exp.corrected {
        let got = sim.metrics().link(LinkId(b.link)).ecc_corrected.get();
        if got > b.max {
            div.push(Divergence {
                cycle: now,
                what: format!(
                    "link {} corrected count {got} exceeds oracle ceiling {}",
                    b.link, b.max
                ),
            });
        }
    }
}

fn end_state_checks(
    sim: &Simulator,
    scenario: &Scenario,
    exp: &Expectation,
    delivered: &BTreeMap<u64, (u64, u16)>,
    classified: &BTreeMap<u16, FaultClass>,
    quiesced: bool,
    div: &mut Vec<Divergence>,
) {
    let now = sim.cycle();
    let stats = sim.stats();
    let mut push = |what: String| div.push(Divergence { cycle: now, what });

    // Delivery map sanity: once each, to the destination the spec named.
    for (id, (count, dest)) in delivered {
        if *count != 1 {
            push(format!("packet {id} delivered {count} times"));
        }
        match scenario.packets.iter().find(|p| p.id == *id) {
            None => push(format!("delivered unknown packet id {id}")),
            Some(p) if p.dest != *dest => push(format!(
                "packet {id} delivered to router {dest}, spec says {}",
                p.dest
            )),
            Some(_) => {}
        }
    }
    if delivered.len() as u64 != stats.delivered_packets {
        push(format!(
            "delivery events ({}) disagree with delivered_packets counter ({})",
            delivered.len(),
            stats.delivered_packets
        ));
    }

    if exp.must_deliver_all {
        for p in &scenario.packets {
            if p.inject_at < scenario.max_cycles && !delivered.contains_key(&p.id) {
                push(format!("packet {} was never delivered", p.id));
            }
        }
    }
    for id in &exp.never_delivered {
        if delivered.contains_key(id) {
            push(format!(
                "packet {id} delivered despite an unmitigated trojan on its path"
            ));
        }
    }

    if quiesced && exp.conserve_at_quiescence {
        if stats.delivered_packets + stats.dropped_packets != stats.injected_packets {
            push(format!(
                "packet conservation: {} delivered + {} dropped != {} injected",
                stats.delivered_packets, stats.dropped_packets, stats.injected_packets
            ));
        }
        if stats.delivered_flits + stats.dropped_flits != stats.injected_flits {
            push(format!(
                "flit conservation: {} delivered + {} dropped != {} injected",
                stats.delivered_flits, stats.dropped_flits, stats.injected_flits
            ));
        }
    }

    for b in &exp.uncorrectable {
        let got = sim.metrics().link(LinkId(b.link)).ecc_uncorrectable.get();
        if got < b.min || got > b.max {
            push(format!(
                "link {} final uncorrectable count {got} outside oracle bounds [{}, {}]",
                b.link,
                b.min,
                if b.max == u64::MAX {
                    "inf".into()
                } else {
                    b.max.to_string()
                }
            ));
        }
    }
    for b in &exp.corrected {
        let got = sim.metrics().link(LinkId(b.link)).ecc_corrected.get();
        if got < b.min || got > b.max {
            push(format!(
                "link {} final corrected count {got} outside oracle bounds [{}, {}]",
                b.link, b.min, b.max
            ));
        }
    }
    // The per-link counters must also add up to the global statistics.
    let mesh = scenario.mesh();
    let sum_unc: u64 = (0..mesh.links() as u16)
        .map(|l| sim.metrics().link(LinkId(l)).ecc_uncorrectable.get())
        .sum();
    let sum_cor: u64 = (0..mesh.links() as u16)
        .map(|l| sim.metrics().link(LinkId(l)).ecc_corrected.get())
        .sum();
    if sum_unc != stats.uncorrectable_faults {
        push(format!(
            "per-link uncorrectable sum {sum_unc} != global counter {}",
            stats.uncorrectable_faults
        ));
    }
    if sum_cor != stats.corrected_faults {
        push(format!(
            "per-link corrected sum {sum_cor} != global counter {}",
            stats.corrected_faults
        ));
    }

    if exp.zero_nacks && (stats.retransmissions != 0 || stats.uncorrectable_faults != 0) {
        push(format!(
            "oracle predicts a NACK-free run, simulator reports {} retransmissions / {} uncorrectable",
            stats.retransmissions, stats.uncorrectable_faults
        ));
    }

    for link in &exp.trojan_class_links {
        match classified.get(link) {
            Some(FaultClass::HardwareTrojan) => {}
            other => push(format!(
                "link {link} final classification {other:?}, oracle expects HardwareTrojan"
            )),
        }
    }
    if exp.no_classification && !classified.is_empty() {
        push(format!(
            "oracle predicts no classifications, detector produced {classified:?}"
        ));
    }

    if let Some(want) = &exp.quarantine {
        let mut dead: Vec<u16> = sim.dead_links().iter().map(|l| l.0).collect();
        dead.sort_unstable();
        if &dead != want {
            push(format!(
                "quarantine set {dead:?} differs from oracle prediction {want:?}"
            ));
        }
    }
}
