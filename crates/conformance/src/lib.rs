//! Differential conformance for the NoC simulator.
//!
//! The optimized simulator in `crates/noc` earns its performance with
//! allocation-free phase loops, bitmask allocators, and table-driven
//! SECDED — all of which are easy places to hide a subtle bug. This crate
//! checks it against two independent authorities:
//!
//! 1. [`oracle::RefSim`] — a deliberately naive reference model of the
//!    paper's protocol (XY routing, SECDED per hop, NACK/retransmission,
//!    TASP trojans, threat-detector classification) that predicts
//!    conserved quantities and end states without modelling the pipeline;
//! 2. the network-wide invariant oracles on the simulator itself
//!    (`Simulator::check_network_invariants`): credit conservation, flit
//!    uniqueness, ECC soundness, and watchdog consistency.
//!
//! [`diff::run_differential`] runs a [`scenario::Scenario`] through the
//! real simulator in lockstep with the oracle, comparing every epoch.
//! [`scenario::Scenario::generate`] samples random scenarios from a seed;
//! [`shrink::shrink`] reduces a failing scenario to a minimal reproducer
//! that serializes to JSON (see [`json`]) for replay via the
//! `conformance_repro` binary.

pub mod diff;
pub mod json;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use diff::{
    divergence_artifact, run_differential, run_differential_threads, DiffReport, Divergence,
};
pub use oracle::{Expectation, RefSim};
pub use scenario::{
    PacketSpec, Rng, Scenario, StuckSpec, TrojanSpec, TOPOLOGY_DEGRADED, TOPOLOGY_MESH,
    TOPOLOGY_TORUS,
};
pub use shrink::shrink;
