//! Greedy deterministic scenario shrinking.
//!
//! The vendored proptest shim has no shrinking, so the conformance
//! fuzzer carries its own: a fixed sequence of reduction passes applied
//! to a fixpoint, each accepted only if the candidate *still fails* the
//! caller's predicate. The passes are ordered from coarse to fine —
//! delete packets (ddmin-style chunks, then singletons), delete fault
//! hardware, simplify packet fields, shrink the mesh, shrink buffer
//! geometry, shorten the run — because deleting a packet usually removes
//! more search space than tweaking one ever could. The whole process is
//! deterministic and bounded by [`MAX_CHECKS`] predicate evaluations, so
//! a shrink in CI cannot run away.

use crate::scenario::{Scenario, TOPOLOGY_MESH, TOPOLOGY_TORUS};
use noc_sim::config::Sabotage;

/// Hard cap on predicate evaluations per shrink.
pub const MAX_CHECKS: usize = 400;

/// Shrink `start` to a (locally) minimal scenario that still satisfies
/// `fails`. `start` itself is assumed to fail.
pub fn shrink(start: &Scenario, fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    let mut best = start.clone();
    let mut checks = 0usize;
    loop {
        let before = fingerprint(&best);
        packet_passes(&mut best, fails, &mut checks);
        hardware_passes(&mut best, fails, &mut checks);
        topology_passes(&mut best, fails, &mut checks);
        field_passes(&mut best, fails, &mut checks);
        mesh_passes(&mut best, fails, &mut checks);
        geometry_passes(&mut best, fails, &mut checks);
        if checks >= MAX_CHECKS || fingerprint(&best) == before {
            return best;
        }
    }
}

/// Cheap structural fingerprint to detect a fixpoint.
#[allow(clippy::type_complexity)]
fn fingerprint(sc: &Scenario) -> (usize, usize, usize, u8, u8, u8, u8, u64, bool, u8, usize) {
    (
        sc.packets.len(),
        sc.trojans.len(),
        sc.stuck.len(),
        sc.width,
        sc.height,
        sc.vcs,
        sc.vc_depth,
        sc.max_cycles,
        sc.sabotage.is_some(),
        sc.topology,
        sc.removed.len(),
    )
}

/// Accept `cand` into `best` iff it still fails (and budget remains).
fn attempt(
    cand: Scenario,
    best: &mut Scenario,
    fails: &dyn Fn(&Scenario) -> bool,
    checks: &mut usize,
) -> bool {
    if *checks >= MAX_CHECKS || cand == *best {
        return false;
    }
    *checks += 1;
    if fails(&cand) {
        *best = cand;
        true
    } else {
        false
    }
}

/// Delete packets: halves, then quarters, ... then singletons.
fn packet_passes(best: &mut Scenario, fails: &dyn Fn(&Scenario) -> bool, checks: &mut usize) {
    let mut chunk = best.packets.len().div_ceil(2).max(1);
    loop {
        let mut start = 0;
        while start < best.packets.len() {
            let end = (start + chunk).min(best.packets.len());
            let mut cand = best.clone();
            cand.packets.drain(start..end);
            if cand.packets.is_empty() || !attempt(cand, best, fails, checks) {
                start = end;
            }
            // On acceptance the window now holds fresh packets; retry it.
        }
        if chunk == 1 {
            return;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Delete trojans, stuck wires, and the sabotage (each auto-rejected
/// when it is load-bearing for the failure).
fn hardware_passes(best: &mut Scenario, fails: &dyn Fn(&Scenario) -> bool, checks: &mut usize) {
    let mut i = 0;
    while i < best.trojans.len() {
        let mut cand = best.clone();
        cand.trojans.remove(i);
        if !attempt(cand, best, fails, checks) {
            i += 1;
        }
    }
    let mut i = 0;
    while i < best.stuck.len() {
        let mut cand = best.clone();
        cand.stuck.remove(i);
        if !attempt(cand, best, fails, checks) {
            i += 1;
        }
    }
    if best.sabotage.is_some() {
        let mut cand = best.clone();
        cand.sabotage = None;
        attempt(cand, best, fails, checks);
    }
}

/// Simplify the topology: restore removed adjacencies one at a time,
/// then collapse a torus or degraded mesh to a plain mesh. Both edits
/// renumber the links, so — like [`mesh_passes`] — they only run once
/// all link-addressed hardware (trojans, stuck wires) is gone.
fn topology_passes(best: &mut Scenario, fails: &dyn Fn(&Scenario) -> bool, checks: &mut usize) {
    if best.topology == TOPOLOGY_MESH || !best.trojans.is_empty() || !best.stuck.is_empty() {
        return;
    }
    let mut i = 0;
    while i < best.removed.len() {
        let mut cand = best.clone();
        cand.removed.remove(i);
        if !attempt(cand, best, fails, checks) {
            i += 1;
        }
    }
    let mut cand = best.clone();
    cand.topology = TOPOLOGY_MESH;
    cand.removed.clear();
    attempt(cand, best, fails, checks);
}

/// Simplify per-packet fields and the run length.
fn field_passes(best: &mut Scenario, fails: &dyn Fn(&Scenario) -> bool, checks: &mut usize) {
    for i in 0..best.packets.len() {
        if best.packets[i].len > 1 {
            let mut cand = best.clone();
            cand.packets[i].len = 1;
            attempt(cand, best, fails, checks);
        }
        if best.packets[i].inject_at > 0 {
            let mut cand = best.clone();
            cand.packets[i].inject_at = 0;
            attempt(cand, best, fails, checks);
        }
        if best.packets[i].vc > 0 {
            let mut cand = best.clone();
            cand.packets[i].vc = 0;
            attempt(cand, best, fails, checks);
        }
        if best.packets[i].thread > 0 {
            let mut cand = best.clone();
            cand.packets[i].thread = 0;
            attempt(cand, best, fails, checks);
        }
    }
    while best.max_cycles > 256 {
        let mut cand = best.clone();
        cand.max_cycles = (best.max_cycles / 2).max(256);
        if !attempt(cand, best, fails, checks) {
            break;
        }
    }
}

/// Shrink the mesh one row/column at a time, remapping every router
/// reference modulo the new dimensions. Link ids change meaning across
/// mesh shapes, so this pass only runs once all link-addressed hardware
/// (trojans, stuck wires) has been deleted.
fn mesh_passes(best: &mut Scenario, fails: &dyn Fn(&Scenario) -> bool, checks: &mut usize) {
    // Non-mesh topologies first collapse via `topology_passes`; shrinking
    // their dimensions directly would invalidate wrap links and removed
    // adjacencies.
    if best.topology != TOPOLOGY_MESH || !best.trojans.is_empty() || !best.stuck.is_empty() {
        return;
    }
    loop {
        let mut progressed = false;
        for (dw, dh) in [(1u8, 0u8), (0, 1)] {
            let (w, h) = (best.width, best.height);
            if w <= dw || h <= dh {
                continue;
            }
            let (nw, nh) = (w - dw, h - dh);
            let remap = |router: u16| -> u16 {
                let (x, y) = (router % w as u16, router / w as u16);
                (y % nh as u16) * nw as u16 + (x % nw as u16)
            };
            let mut cand = best.clone();
            cand.width = nw;
            cand.height = nh;
            for p in &mut cand.packets {
                p.src = remap(p.src);
                p.dest = remap(p.dest);
            }
            if let Some(Sabotage::StallSaRouter { router }) = &mut cand.sabotage {
                *router = remap(*router);
            }
            if attempt(cand, best, fails, checks) {
                progressed = true;
            }
        }
        if !progressed {
            return;
        }
    }
}

/// Reduce buffer geometry: fewer VCs, shallower buffers.
fn geometry_passes(best: &mut Scenario, fails: &dyn Fn(&Scenario) -> bool, checks: &mut usize) {
    // The torus dateline scheme needs a low and a high VC half.
    let vc_floor = if best.topology == TOPOLOGY_TORUS {
        2
    } else {
        1
    };
    while best.vcs > vc_floor {
        let mut cand = best.clone();
        cand.vcs -= 1;
        for p in &mut cand.packets {
            p.vc = p.vc.min(cand.vcs - 1);
        }
        if !attempt(cand, best, fails, checks) {
            break;
        }
    }
    while best.concentration > 1 {
        let mut cand = best.clone();
        cand.concentration -= 1;
        for p in &mut cand.packets {
            p.thread = p.thread.min(cand.concentration - 1);
        }
        if !attempt(cand, best, fails, checks) {
            break;
        }
    }
    while best.vc_depth > 2 {
        let mut cand = best.clone();
        cand.vc_depth -= 1;
        if !attempt(cand, best, fails, checks) {
            break;
        }
    }
    while best.retx_depth > 2 {
        let mut cand = best.clone();
        cand.retx_depth -= 1;
        if !attempt(cand, best, fails, checks) {
            break;
        }
    }
    if best.retx_per_vc {
        let mut cand = best.clone();
        cand.retx_per_vc = false;
        attempt(cand, best, fails, checks);
    }
    if best.watchdog {
        let mut cand = best.clone();
        cand.watchdog = false;
        attempt(cand, best, fails, checks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_is_deterministic_and_bounded() {
        let sc = Scenario::generate(11);
        // A predicate that always fails shrinks to the global floor.
        let a = shrink(&sc, &|_| true);
        let b = shrink(&sc, &|_| true);
        assert_eq!(a, b);
        assert_eq!(a.packets.len(), 1, "cannot delete the last packet");
        assert!(a.trojans.is_empty() && a.stuck.is_empty());
        assert_eq!((a.width, a.height), (1, 1));
        assert_eq!(a.max_cycles, 256);
    }

    #[test]
    fn shrink_keeps_load_bearing_structure() {
        let sc = Scenario::generate(12);
        let keep = sc.packets.len().min(3);
        // Failure requires at least `keep` packets: the shrinker must
        // stop exactly there, not below.
        let got = shrink(&sc, &|c| c.packets.len() >= keep);
        assert_eq!(got.packets.len(), keep);
    }
}
