//! Randomized, serializable simulation scenarios.
//!
//! A [`Scenario`] is a complete, self-contained description of one
//! differential-conformance run: mesh shape, buffer geometry, the exact
//! packet list (materialized up front from a `crates/traffic` generator
//! or a uniform sampler, so replay needs no generator state), the trojan
//! and fault campaign, and an optional deliberate [`Sabotage`]. Every
//! scenario serializes to integer-only JSON (see [`crate::json`]) and
//! replays bit-identically via the `conformance_repro` binary.

use crate::json::Json;
use noc_sim::config::Sabotage;
use noc_sim::fault::StuckWires;
use noc_sim::watchdog::WatchdogConfig;
use noc_sim::{RetxScheme, SimConfig, Simulator, TrafficSource};
use noc_traffic::{AppModel, AppSpec, Pattern, SyntheticTraffic, Trace};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::{Direction, LinkId, Mesh, NodeId, Packet, PacketId, VcId};

/// [`Scenario::topology`] value for a plain 2-D mesh.
pub const TOPOLOGY_MESH: u8 = 0;
/// [`Scenario::topology`] value for a 2-D torus (wrap links, dateline VCs).
pub const TOPOLOGY_TORUS: u8 = 1;
/// [`Scenario::topology`] value for a fault-degraded mesh.
pub const TOPOLOGY_DEGRADED: u8 = 2;

/// One packet to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSpec {
    /// Scenario-unique packet id.
    pub id: u64,
    /// Source router.
    pub src: u16,
    /// Destination router.
    pub dest: u16,
    /// VC class at injection (`< Scenario::vcs`).
    pub vc: u8,
    /// Length in flits (≥ 1).
    pub len: u8,
    /// Injection cycle.
    pub inject_at: u64,
    /// Issuing thread (selects the core within the source router).
    pub thread: u8,
}

impl PacketSpec {
    /// The concrete packet this spec injects.
    pub fn packet(&self) -> Packet {
        Packet::new(
            PacketId(self.id),
            NodeId(self.src),
            NodeId(self.dest),
            VcId(self.vc),
            0,
            self.thread,
            self.len.max(1),
            self.inject_at,
        )
    }
}

/// A TASP hardware trojan mounted on one link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrojanSpec {
    /// The compromised link.
    pub link: u16,
    /// Destination router the comparator triggers on.
    pub target_dest: u16,
    /// Whether the kill switch is up from cycle 0.
    pub armed: bool,
    /// Injection cooldown in cycles (the oracle's exact counts assume 0).
    pub cooldown: u32,
}

/// A single wire stuck at one on a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckSpec {
    /// The faulty link.
    pub link: u16,
    /// Codeword bit index forced to 1.
    pub bit: u8,
}

/// A complete conformance scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Generator seed (provenance only; replay never consults it).
    pub seed: u64,
    /// Mesh width in routers.
    pub width: u8,
    /// Mesh height in routers.
    pub height: u8,
    /// Cores per router.
    pub concentration: u8,
    /// Virtual channels per port.
    pub vcs: u8,
    /// Buffer slots per VC.
    pub vc_depth: u8,
    /// Retransmission slots per output (or per VC).
    pub retx_depth: u8,
    /// Use the per-VC retransmission scheme.
    pub retx_per_vc: bool,
    /// Threat detector + L-Ob path enabled.
    pub mitigation: bool,
    /// Per-entry retry budget (escalation / quarantine).
    pub retry_budget: Option<u32>,
    /// Arm the deadlock watchdog (consistency-checked, never acted on).
    pub watchdog: bool,
    /// Cycle budget for the run.
    pub max_cycles: u64,
    /// The exact packets to inject.
    pub packets: Vec<PacketSpec>,
    /// Mounted trojans.
    pub trojans: Vec<TrojanSpec>,
    /// Stuck-at-one wires.
    pub stuck: Vec<StuckSpec>,
    /// Deliberate defect for oracle self-tests.
    pub sabotage: Option<Sabotage>,
    /// Topology family: [`TOPOLOGY_MESH`], [`TOPOLOGY_TORUS`], or
    /// [`TOPOLOGY_DEGRADED`].
    pub topology: u8,
    /// Removed adjacencies of a degraded mesh as `(router, direction
    /// index)` pairs; entries that do not exist or would disconnect the
    /// graph are ignored (see [`Scenario::effective_removed`]).
    pub removed: Vec<(u16, u8)>,
}

impl Scenario {
    /// The mesh this scenario simulates.
    pub fn mesh(&self) -> Mesh {
        let c = self.concentration.max(1);
        match self.topology {
            // The torus constructor needs both dimensions ≥ 2 (a 1-wide
            // ring would wrap a node onto itself).
            TOPOLOGY_TORUS => Mesh::new_torus(self.width.max(2), self.height.max(2), c),
            TOPOLOGY_DEGRADED => {
                let (w, h) = (self.width.max(1), self.height.max(1));
                let removed = self.effective_removed();
                Mesh::new_degraded(w, h, c, &removed)
            }
            _ => Mesh::new(self.width.max(1), self.height.max(1), c),
        }
    }

    /// The subset of [`Scenario::removed`] a degraded mesh actually
    /// honours: in-range adjacencies that exist in the base mesh, accepted
    /// greedily only while the graph stays connected. Total on arbitrary
    /// input, so a shrink candidate or hand-edited JSON can never panic
    /// the mesh constructor.
    pub fn effective_removed(&self) -> Vec<(NodeId, Direction)> {
        let (w, h) = (self.width.max(1), self.height.max(1));
        let c = self.concentration.max(1);
        let base = Mesh::new(w, h, c);
        let mut keep: Vec<(NodeId, Direction)> = Vec::new();
        for &(node, dir) in &self.removed {
            let Some(&dir) = Direction::ALL.get(dir as usize) else {
                continue;
            };
            let node = NodeId(node);
            if node.index() >= base.routers() || base.neighbor(node, dir).is_none() {
                continue;
            }
            let mut cand = keep.clone();
            cand.push((node, dir));
            if Mesh::new_degraded(w, h, c, &cand).connected() {
                keep = cand;
            }
        }
        keep
    }

    /// Routers in the mesh.
    pub fn routers(&self) -> usize {
        self.mesh().routers()
    }

    /// The simulator configuration this scenario runs under.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper();
        cfg.mesh = self.mesh();
        cfg.vcs = self.vcs.max(1);
        cfg.vc_depth = self.vc_depth.max(1);
        cfg.retx_depth = self.retx_depth.max(1);
        cfg.retx_scheme = if self.retx_per_vc {
            RetxScheme::PerVc
        } else {
            RetxScheme::Output
        };
        cfg.mitigation = self.mitigation;
        cfg.retry_budget = self.retry_budget;
        cfg.watchdog = if self.watchdog {
            Some(WatchdogConfig::default())
        } else {
            None
        };
        // Snapshots are irrelevant to conformance; keep long runs cheap.
        cfg.snapshot_interval = 1024;
        cfg.sabotage = self.sabotage;
        cfg
    }

    /// Build the optimized simulator with all faults mounted.
    pub fn build_sim(&self) -> Simulator {
        let mut sim = Simulator::new(self.sim_config());
        for t in &self.trojans {
            let mut ht = TaspHt::new(
                TaspConfig::new(TargetSpec::dest((t.target_dest & 0xF) as u8))
                    .with_cooldown(t.cooldown),
            );
            ht.set_kill_switch(t.armed);
            let faults = sim.link_faults_mut(LinkId(t.link));
            faults.trojan = Some(ht);
        }
        for s in &self.stuck {
            let faults = sim.link_faults_mut(LinkId(s.link));
            faults.stuck = StuckWires::new(faults.stuck.stuck_one | (1u128 << s.bit), 0);
        }
        sim
    }

    /// A non-destructive traffic source over the scenario's packet list.
    pub fn source(&self) -> ReplaySource {
        let mut packets: Vec<Packet> = self.packets.iter().map(PacketSpec::packet).collect();
        packets.sort_by_key(|p| p.created_at);
        ReplaySource { packets, next: 0 }
    }

    // ------------------------------------------------------------------
    // JSON round-trip
    // ------------------------------------------------------------------

    /// Serialize to the scenario JSON schema.
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Num(n as i64);
        let packets = self
            .packets
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("id".into(), num(p.id)),
                    ("src".into(), num(p.src as u64)),
                    ("dest".into(), num(p.dest as u64)),
                    ("vc".into(), num(p.vc as u64)),
                    ("len".into(), num(p.len as u64)),
                    ("at".into(), num(p.inject_at)),
                    ("thread".into(), num(p.thread as u64)),
                ])
            })
            .collect();
        let trojans = self
            .trojans
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("link".into(), num(t.link as u64)),
                    ("dest".into(), num(t.target_dest as u64)),
                    ("armed".into(), Json::Bool(t.armed)),
                    ("cooldown".into(), num(t.cooldown as u64)),
                ])
            })
            .collect();
        let stuck = self
            .stuck
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("link".into(), num(s.link as u64)),
                    ("bit".into(), num(s.bit as u64)),
                ])
            })
            .collect();
        let sabotage = match self.sabotage {
            None => Json::Null,
            Some(Sabotage::StallSaRouter { router }) => Json::Obj(vec![
                ("kind".into(), Json::Str("stall_sa_router".into())),
                ("router".into(), num(router as u64)),
            ]),
            Some(Sabotage::LeakCredit { every }) => Json::Obj(vec![
                ("kind".into(), Json::Str("leak_credit".into())),
                ("every".into(), num(every as u64)),
            ]),
            Some(Sabotage::OvercountDelivered { every }) => Json::Obj(vec![
                ("kind".into(), Json::Str("overcount_delivered".into())),
                ("every".into(), num(every as u64)),
            ]),
            Some(Sabotage::OverSkip) => {
                Json::Obj(vec![("kind".into(), Json::Str("over_skip".into()))])
            }
        };
        let removed = self
            .removed
            .iter()
            .map(|&(node, dir)| {
                Json::Obj(vec![
                    ("node".into(), num(node as u64)),
                    ("dir".into(), num(dir as u64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("seed".into(), num(self.seed)),
            ("width".into(), num(self.width as u64)),
            ("height".into(), num(self.height as u64)),
            ("topology".into(), num(self.topology as u64)),
            ("removed".into(), Json::Arr(removed)),
            ("concentration".into(), num(self.concentration as u64)),
            ("vcs".into(), num(self.vcs as u64)),
            ("vc_depth".into(), num(self.vc_depth as u64)),
            ("retx_depth".into(), num(self.retx_depth as u64)),
            ("retx_per_vc".into(), Json::Bool(self.retx_per_vc)),
            ("mitigation".into(), Json::Bool(self.mitigation)),
            (
                "retry_budget".into(),
                self.retry_budget.map_or(Json::Null, |b| num(b as u64)),
            ),
            ("watchdog".into(), Json::Bool(self.watchdog)),
            ("max_cycles".into(), num(self.max_cycles)),
            ("packets".into(), Json::Arr(packets)),
            ("trojans".into(), Json::Arr(trojans)),
            ("stuck".into(), Json::Arr(stuck)),
            ("sabotage".into(), sabotage),
        ])
    }

    /// Deserialize from the scenario JSON schema.
    pub fn from_json(v: &Json) -> Result<Scenario, String> {
        fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or invalid field '{key}'"))
        }
        fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("missing or invalid field '{key}'"))
        }
        let mut packets = Vec::new();
        for p in v
            .get("packets")
            .and_then(Json::as_arr)
            .ok_or("missing 'packets'")?
        {
            packets.push(PacketSpec {
                id: req_u64(p, "id")?,
                src: req_u64(p, "src")? as u16,
                dest: req_u64(p, "dest")? as u16,
                vc: req_u64(p, "vc")? as u8,
                len: req_u64(p, "len")? as u8,
                inject_at: req_u64(p, "at")?,
                thread: req_u64(p, "thread")? as u8,
            });
        }
        let mut trojans = Vec::new();
        for t in v
            .get("trojans")
            .and_then(Json::as_arr)
            .ok_or("missing 'trojans'")?
        {
            trojans.push(TrojanSpec {
                link: req_u64(t, "link")? as u16,
                target_dest: req_u64(t, "dest")? as u16,
                armed: req_bool(t, "armed")?,
                cooldown: req_u64(t, "cooldown")? as u32,
            });
        }
        let mut stuck = Vec::new();
        for s in v
            .get("stuck")
            .and_then(Json::as_arr)
            .ok_or("missing 'stuck'")?
        {
            stuck.push(StuckSpec {
                link: req_u64(s, "link")? as u16,
                bit: req_u64(s, "bit")? as u8,
            });
        }
        let sabotage = match v.get("sabotage") {
            None | Some(Json::Null) => None,
            Some(s) => Some(match s.get("kind").and_then(Json::as_str) {
                Some("stall_sa_router") => Sabotage::StallSaRouter {
                    router: req_u64(s, "router")? as u16,
                },
                Some("leak_credit") => Sabotage::LeakCredit {
                    every: req_u64(s, "every")? as u32,
                },
                Some("overcount_delivered") => Sabotage::OvercountDelivered {
                    every: req_u64(s, "every")? as u32,
                },
                Some("over_skip") => Sabotage::OverSkip,
                other => return Err(format!("unknown sabotage kind {other:?}")),
            }),
        };
        let retry_budget = match v.get("retry_budget") {
            None | Some(Json::Null) => None,
            Some(b) => Some(b.as_u64().ok_or("invalid 'retry_budget'")? as u32),
        };
        // Topology fields default to a plain mesh so pre-topology
        // scenario files stay parseable.
        let topology = match v.get("topology") {
            None | Some(Json::Null) => TOPOLOGY_MESH,
            Some(t) => t.as_u64().ok_or("invalid 'topology'")? as u8,
        };
        let mut removed = Vec::new();
        if let Some(arr) = v.get("removed").and_then(Json::as_arr) {
            for r in arr {
                removed.push((req_u64(r, "node")? as u16, req_u64(r, "dir")? as u8));
            }
        }
        Ok(Scenario {
            seed: req_u64(v, "seed")?,
            width: req_u64(v, "width")? as u8,
            height: req_u64(v, "height")? as u8,
            concentration: req_u64(v, "concentration")? as u8,
            vcs: req_u64(v, "vcs")? as u8,
            vc_depth: req_u64(v, "vc_depth")? as u8,
            retx_depth: req_u64(v, "retx_depth")? as u8,
            retx_per_vc: req_bool(v, "retx_per_vc")?,
            mitigation: req_bool(v, "mitigation")?,
            retry_budget,
            watchdog: req_bool(v, "watchdog")?,
            max_cycles: req_u64(v, "max_cycles")?,
            packets,
            trojans,
            stuck,
            sabotage,
            topology,
            removed,
        })
    }

    /// Serialize to a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parse from a JSON string.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        Scenario::from_json(&Json::parse(text)?)
    }

    // ------------------------------------------------------------------
    // Generation
    // ------------------------------------------------------------------

    /// Generate a random scenario from a seed (deterministic).
    ///
    /// The generator deliberately restricts itself to domains where the
    /// reference oracle's predictions are exact or provably bounded (see
    /// DESIGN.md §12): clean runs, armed/disarmed TASP trojans with zero
    /// cooldown under mitigation, the unprotected DoS, bounded-retry
    /// quarantine with a single trojan on a redundant mesh, and single
    /// stuck-at-one wires.
    pub fn generate(seed: u64) -> Scenario {
        Self::generate_in(seed, None)
    }

    /// [`Scenario::generate`] restricted to one topology family
    /// ([`TOPOLOGY_MESH`] / [`TOPOLOGY_TORUS`] / [`TOPOLOGY_DEGRADED`]);
    /// `None` samples freely — mesh half the time, torus and degraded a
    /// quarter each.
    pub fn generate_in(seed: u64, family: Option<u8>) -> Scenario {
        let mut rng = Rng::new(seed);
        let topology = family.unwrap_or_else(|| match rng.below(4) {
            0 => TOPOLOGY_TORUS,
            1 => TOPOLOGY_DEGRADED,
            _ => TOPOLOGY_MESH,
        });
        let domain = rng.below(8);
        // Mesh: the quarantine domain needs path redundancy; a torus
        // needs both dimensions ≥ 2 to wrap, and a degraded mesh needs
        // them to have any removable adjacency.
        let (width, height) = loop {
            let w = 1 + rng.below(4) as u8;
            let h = 1 + rng.below(4) as u8;
            if (w as usize) * (h as usize) > 16 {
                continue;
            }
            if (domain == 5 || topology != TOPOLOGY_MESH) && (w < 2 || h < 2) {
                continue;
            }
            break (w, h);
        };
        let concentration = 1 + rng.below(2) as u8;
        // The dateline scheme needs a low and a high VC half.
        let vcs = if topology == TOPOLOGY_TORUS {
            2 + rng.below(3) as u8
        } else {
            1 + rng.below(4) as u8
        };
        let mut sc = Scenario {
            seed,
            width,
            height,
            concentration,
            vcs,
            vc_depth: 2 + rng.below(3) as u8,
            retx_depth: 2 + rng.below(3) as u8,
            retx_per_vc: rng.chance(3, 10),
            mitigation: true,
            retry_budget: None,
            watchdog: false,
            max_cycles: 0,
            packets: Vec::new(),
            trojans: Vec::new(),
            stuck: Vec::new(),
            sabotage: None,
            topology,
            removed: Vec::new(),
        };
        // Knock out a couple of adjacencies of a degraded mesh. The
        // quarantine domain keeps the full mesh: its oracle prediction
        // needs every single-link removal to leave the graph connected,
        // which pre-removed links could defeat.
        if topology == TOPOLOGY_DEGRADED && domain != 5 {
            let base = Mesh::new(width, height, concentration);
            for _ in 0..1 + rng.below(2) {
                let node = rng.below(base.routers() as u64) as u16;
                let dir = if rng.chance(1, 2) {
                    Direction::East
                } else {
                    Direction::North
                };
                sc.removed.push((node, dir.index() as u8));
            }
            // Store exactly the effective set (connectivity-filtered) so
            // the JSON never carries dead entries.
            sc.removed = sc
                .effective_removed()
                .iter()
                .map(|&(n, d)| (n.0, d.index() as u8))
                .collect();
        }
        let mesh = sc.mesh();
        sc.packets = Self::generate_packets(&mut rng, &mesh, vcs, concentration);
        match domain {
            0 | 1 => {
                // Clean network, mitigation on or off.
                sc.mitigation = rng.chance(1, 2);
            }
            2 | 3 => {
                // Trojan under mitigation; domain 3 adds a (generous)
                // retry budget, which must never reach quarantine.
                sc.mitigation = true;
                if domain == 3 {
                    sc.retry_budget = Some(8 + rng.below(8) as u32);
                }
                let n = 1 + rng.below(2) as usize;
                Self::mount_trojans(&mut rng, &mut sc, &mesh, n);
            }
            4 => {
                // The paper's DoS: unprotected, unbounded retransmission.
                sc.mitigation = false;
                sc.watchdog = true;
                Self::mount_trojans(&mut rng, &mut sc, &mesh, 1);
            }
            5 => {
                // Bounded retries without mitigation: quarantine + reroute.
                sc.mitigation = false;
                sc.retry_budget = Some(4 + rng.below(4) as u32);
                Self::mount_trojans(&mut rng, &mut sc, &mesh, 1);
                // Quarantine predictions need the trojan armed.
                for t in &mut sc.trojans {
                    t.armed = true;
                }
            }
            _ => {
                // One stuck-at-one wire; SECDED corrects every hit.
                sc.mitigation = rng.chance(1, 2);
                if mesh.links() > 0 {
                    sc.stuck.push(StuckSpec {
                        link: rng.below(mesh.links() as u64) as u16,
                        bit: rng.below(noc_ecc::CODEWORD_BITS as u64) as u8,
                    });
                }
            }
        }
        // Long idle gaps between injection bursts: the whole network goes
        // quiescent between bursts, stressing the fast-forward horizon
        // math (the skip must land exactly on each burst's first cycle).
        // Domain 4 keeps its tight 600-cycle DoS window.
        if domain != 4 && rng.chance(1, 4) {
            let gap = 300 + rng.below(700);
            for (i, p) in sc.packets.iter_mut().enumerate() {
                p.inject_at = (i as u64 / 4) * gap + rng.below(8);
            }
        }
        sc.max_cycles = if domain == 4 {
            600
        } else {
            4_000 + 200 * sc.packets.len() as u64
        };
        sc
    }

    /// Sample the packet list: either materialized from a `crates/traffic`
    /// generator (application model or synthetic pattern) or uniformly.
    fn generate_packets(rng: &mut Rng, mesh: &Mesh, vcs: u8, conc: u8) -> Vec<PacketSpec> {
        let horizon = 24 + rng.below(24);
        let captured: Option<Trace> = match rng.below(4) {
            0 => {
                let spec = match rng.below(4) {
                    0 => AppSpec::blackscholes(),
                    1 => AppSpec::facesim(),
                    2 => AppSpec::ferret(),
                    _ => AppSpec::fft(),
                };
                let mut model = AppModel::new(spec, mesh.clone(), rng.next_u64())
                    .with_vcs((0..vcs).collect())
                    .until(horizon);
                Some(Trace::capture(&mut model, horizon))
            }
            1 => {
                // Transpose is defined for square meshes only.
                let pattern = if mesh.width() == mesh.height() && rng.chance(1, 2) {
                    Pattern::Transpose
                } else {
                    Pattern::UniformRandom
                };
                let mut model = SyntheticTraffic::new(mesh.clone(), pattern, 0.1, rng.next_u64())
                    .until(horizon);
                Some(Trace::capture(&mut model, horizon))
            }
            _ => None,
        };
        let mut out = Vec::new();
        if let Some(trace) = captured {
            for (i, e) in trace.entries.iter().take(24).enumerate() {
                out.push(PacketSpec {
                    id: i as u64 + 1,
                    src: e.packet.src.0,
                    dest: e.packet.dest.0,
                    vc: e.packet.vc.0 % vcs,
                    len: e.packet.len.clamp(1, 4),
                    inject_at: e.cycle,
                    thread: e.packet.thread % conc,
                });
            }
        }
        if out.is_empty() {
            let n = 1 + rng.below(20);
            let routers = mesh.routers() as u64;
            for i in 0..n {
                out.push(PacketSpec {
                    id: i + 1,
                    src: rng.below(routers) as u16,
                    dest: rng.below(routers) as u16,
                    vc: rng.below(vcs as u64) as u8,
                    len: 1 + rng.below(4) as u8,
                    inject_at: rng.below(horizon),
                    thread: rng.below(conc as u64) as u8,
                });
            }
        }
        out
    }

    /// Mount up to `n` trojans on links actually crossed by a packet,
    /// targeting that packet's destination so the comparator fires.
    fn mount_trojans(rng: &mut Rng, sc: &mut Scenario, mesh: &Mesh, n: usize) {
        // The simulator's own routing function, so the sampled links are
        // on real first-pass paths on every topology (XY on a plain mesh).
        let routing = noc_sim::routing::Routing::for_mesh(mesh);
        for _ in 0..n {
            let candidates: Vec<(LinkId, u16)> = sc
                .packets
                .iter()
                .flat_map(|p| {
                    noc_sim::routing::route_path(mesh, &routing, NodeId(p.src), NodeId(p.dest))
                        .into_iter()
                        .map(move |l| (l, p.dest))
                })
                .filter(|(l, _)| !sc.trojans.iter().any(|t| t.link == l.index() as u16))
                .collect();
            if candidates.is_empty() {
                return;
            }
            let (link, dest) = candidates[rng.below(candidates.len() as u64) as usize];
            sc.trojans.push(TrojanSpec {
                link: link.index() as u16,
                target_dest: dest,
                // A disarmed trojan must behave exactly like a clean link.
                armed: rng.chance(4, 5),
                cooldown: 0,
            });
        }
    }
}

/// Non-destructive injection source over a scenario's packet list
/// (sorted by injection cycle at construction).
pub struct ReplaySource {
    packets: Vec<Packet>,
    next: usize,
}

impl TrafficSource for ReplaySource {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        while let Some(p) = self.packets.get(self.next) {
            if p.created_at > cycle {
                break;
            }
            out.push(p.clone());
            self.next += 1;
        }
    }
    fn done(&self) -> bool {
        self.next >= self.packets.len()
    }

    fn next_injection_at(&self, now: u64) -> Option<u64> {
        // The head entry is the earliest possible injection; `max(now)`
        // keeps an overdue head (possible after a shrinker edit) from
        // advertising a horizon in the past.
        self.packets.get(self.next).map(|p| p.created_at.max(now))
    }

    fn skip_to(&mut self, to: u64) {
        // As-if polled through `to - 1`: entries due strictly before `to`
        // would have been injected by a stepped cycle, but a skip cannot
        // inject — a fast-forward that lands past one (the OverSkip
        // defect) loses it here, and the oracle's exact `injected_by`
        // epoch check catches the divergence. A correct skip never lands
        // past the advertised horizon, so nothing is ever dropped.
        while self
            .packets
            .get(self.next)
            .is_some_and(|p| p.created_at < to)
        {
            self.next += 1;
        }
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        noc_sim::snapshot::put_u64(out, self.next as u64);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        if let Some(next) = noc_sim::snapshot::take_u64(input) {
            self.next = (next as usize).min(self.packets.len());
        }
    }
}

/// Splitmix64: a tiny, deterministic, dependency-free generator for
/// scenario sampling. Replay never consults it — scenarios are concrete.
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw (named to keep clear of `Iterator::next`).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Scenario::generate(42), Scenario::generate(42));
        assert_ne!(Scenario::generate(1), Scenario::generate(2));
    }

    #[test]
    fn json_round_trip_is_exact() {
        for seed in 0..50 {
            let sc = Scenario::generate(seed);
            let text = sc.to_json_string();
            assert_eq!(Scenario::parse(&text).unwrap(), sc, "seed {seed}");
        }
    }

    #[test]
    fn generated_scenarios_are_well_formed() {
        for seed in 0..100 {
            let sc = Scenario::generate(seed);
            let mesh = sc.mesh();
            assert!(mesh.routers() <= 16);
            assert!(!sc.packets.is_empty());
            for p in &sc.packets {
                assert!((p.src as usize) < mesh.routers(), "seed {seed}");
                assert!((p.dest as usize) < mesh.routers(), "seed {seed}");
                assert!(p.vc < sc.vcs);
                assert!(p.thread < sc.concentration);
                assert!(p.len >= 1);
            }
            for t in &sc.trojans {
                assert!((t.link as usize) < mesh.links());
                assert_eq!(t.cooldown, 0, "generator keeps oracle-exact cooldown");
            }
            for s in &sc.stuck {
                assert!((s.link as usize) < mesh.links());
                assert!((s.bit as usize) < noc_ecc::CODEWORD_BITS);
            }
        }
    }

    #[test]
    fn topology_families_generate_well_formed_scenarios() {
        let mut seen = [false; 3];
        for seed in 0..200 {
            for family in [None, Some(TOPOLOGY_TORUS), Some(TOPOLOGY_DEGRADED)] {
                let sc = Scenario::generate_in(seed, family);
                if let Some(f) = family {
                    assert_eq!(sc.topology, f);
                }
                seen[sc.topology as usize] = true;
                let mesh = sc.mesh();
                assert!(mesh.routers() <= 16, "seed {seed}");
                assert!(mesh.connected(), "seed {seed}");
                if sc.topology == TOPOLOGY_TORUS {
                    assert!(sc.vcs >= 2, "dateline classes need two VC halves");
                    assert!(sc.width >= 2 && sc.height >= 2);
                }
                if sc.topology == TOPOLOGY_DEGRADED {
                    // The stored list is exactly the effective one.
                    let effective: Vec<(u16, u8)> = sc
                        .effective_removed()
                        .iter()
                        .map(|&(n, d)| (n.0, d.index() as u8))
                        .collect();
                    assert_eq!(sc.removed, effective, "seed {seed}");
                }
                for t in &sc.trojans {
                    assert!((t.link as usize) < mesh.links(), "seed {seed}");
                }
                for s in &sc.stuck {
                    assert!((s.link as usize) < mesh.links(), "seed {seed}");
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "the free sampler must hit every family in 200 seeds"
        );
    }

    #[test]
    fn hostile_topology_json_never_panics_the_mesh_builder() {
        // Out-of-range nodes, non-existent adjacencies, and
        // graph-disconnecting removals must all be ignored, not panic.
        let mut sc = Scenario::generate_in(3, Some(TOPOLOGY_DEGRADED));
        sc.removed = vec![(999, 0), (0, 9), (0, 1), (0, 3), (0, 0), (0, 2)];
        let mesh = sc.mesh();
        assert!(mesh.connected());
        let round = Scenario::parse(&sc.to_json_string()).unwrap();
        assert_eq!(round, sc);
    }

    #[test]
    fn replay_source_injects_everything_in_order() {
        let sc = Scenario::generate(7);
        let mut src = sc.source();
        let mut got = 0;
        let mut buf = Vec::new();
        for c in 0..=sc.packets.iter().map(|p| p.inject_at).max().unwrap() {
            buf.clear();
            src.poll(c, &mut buf);
            for p in &buf {
                assert_eq!(p.created_at, c);
            }
            got += buf.len();
        }
        assert_eq!(got, sc.packets.len());
        assert!(src.done());
    }
}
