//! Replay a minimized failing scenario produced by the `fuzz` binary.
//!
//! ```text
//! cargo run -p htnoc-conformance --bin conformance_repro -- failing.json
//! ```
//!
//! Prints the scenario summary and every divergence, exiting nonzero if
//! any remain (so a fixed bug turns the reproducer green).

use htnoc_conformance::{run_differential, Scenario};

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: conformance_repro <scenario.json>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("conformance_repro: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let scenario = match Scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("conformance_repro: {path} is not a scenario: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "scenario: {}x{} mesh (conc {}), {} vcs x depth {}, {} packets, {} trojans, {} stuck, mitigation={}, budget={:?}, sabotage={:?}",
        scenario.width,
        scenario.height,
        scenario.concentration,
        scenario.vcs,
        scenario.vc_depth,
        scenario.packets.len(),
        scenario.trojans.len(),
        scenario.stuck.len(),
        scenario.mitigation,
        scenario.retry_budget,
        scenario.sabotage,
    );
    let report = run_differential(&scenario);
    println!(
        "ran {} cycles, quiesced={}, {} divergence(s)",
        report.cycles,
        report.quiesced,
        report.divergences.len()
    );
    for d in &report.divergences {
        println!("  {d}");
    }
    if !report.ok() {
        std::process::exit(1);
    }
    println!("conformant: no divergences");
}
