//! Randomized conformance fuzzing.
//!
//! ```text
//! cargo run -p htnoc-conformance --bin fuzz -- --seed 1 --cases 500
//! cargo run -p htnoc-conformance --bin fuzz -- --seed 1 --budget-secs 120
//! ```
//!
//! Runs `cases` scenarios generated from consecutive seeds (or as many
//! as fit in `budget-secs`), each through the differential driver. On
//! the first divergence the scenario is shrunk to a minimal reproducer,
//! written as JSON under `--out` (default `target/conformance`) next to
//! a pre-divergence simulator snapshot (the state at the last conformant
//! epoch boundary, restorable via `Simulator::restore` for single-step
//! debugging), and the exact replay command is printed; the process then
//! exits nonzero.
//!
//! With `--checkpoint-dir D`, progress is persisted atomically every
//! `--checkpoint-every` conformant scenarios (default 25), and
//! `--resume` continues a killed campaign from the first unfinished
//! seed instead of re-fuzzing the prefix.
//!
//! With `--telemetry-out DIR`, campaign liveness is exported on the
//! same interval: an atomically replaced Prometheus exposition
//! (`DIR/metrics.prom`, scenario throughput counters) plus an
//! append-only heartbeat log (`DIR/heartbeat.jsonl`) whose `cycle` field
//! counts scenarios completed — the hook a supervisor watches to tell a
//! slow campaign from a hung one.

use htnoc_conformance::{
    divergence_artifact, run_differential_threads, shrink, Scenario, TOPOLOGY_DEGRADED,
    TOPOLOGY_MESH, TOPOLOGY_TORUS,
};
use noc_sim::config::Sabotage;
use noc_sim::snapshot::{crc64, put_u64, take_u64};
use noc_sim::TelemetryOut;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    seed: u64,
    cases: u64,
    budget_secs: Option<u64>,
    out: String,
    sabotage: Option<Sabotage>,
    threads: usize,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    resume: bool,
    telemetry_out: Option<PathBuf>,
    topology: Option<u8>,
}

/// Parse `--topology` specs: `mesh`, `torus`, or `degraded`.
fn parse_topology(spec: &str) -> Result<u8, String> {
    match spec {
        "mesh" => Ok(TOPOLOGY_MESH),
        "torus" => Ok(TOPOLOGY_TORUS),
        "degraded" => Ok(TOPOLOGY_DEGRADED),
        other => Err(format!(
            "unknown topology '{other}' (mesh, torus, degraded)"
        )),
    }
}

/// Fuzz progress, persisted after every `--checkpoint-every` seeds so a
/// killed campaign resumes where it left off instead of re-fuzzing the
/// prefix.
struct Progress {
    /// First seed not yet completed.
    next_seed: u64,
    /// Scenarios completed so far.
    ran: u64,
}

const PROGRESS_MAGIC: &[u8; 8] = b"NOCFUZZ\0";

fn progress_path(dir: &Path) -> PathBuf {
    dir.join("fuzz-progress.bin")
}

/// Atomically persist progress (temp sibling + fsync + rename).
fn save_progress(dir: &Path, p: &Progress) -> std::io::Result<()> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let mut payload = Vec::new();
    put_u64(&mut payload, p.next_seed);
    put_u64(&mut payload, p.ran);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(PROGRESS_MAGIC);
    bytes.extend_from_slice(&crc64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let path = progress_path(dir);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load persisted progress; `None` when absent or corrupt (start fresh).
fn load_progress(dir: &Path) -> Option<Progress> {
    let bytes = std::fs::read(progress_path(dir)).ok()?;
    let body = bytes.strip_prefix(PROGRESS_MAGIC)?;
    let (crc_bytes, payload) = body.split_at_checked(8)?;
    if crc64(payload) != u64::from_le_bytes(crc_bytes.try_into().ok()?) {
        return None;
    }
    let mut input = payload;
    let next_seed = take_u64(&mut input)?;
    let ran = take_u64(&mut input)?;
    input.is_empty().then_some(Progress { next_seed, ran })
}

/// Parse `--sabotage` specs: `stall-sa:R`, `leak-credit:N`, `overcount:N`,
/// or the argless `over-skip`.
fn parse_sabotage(spec: &str) -> Result<Sabotage, String> {
    if spec == "over-skip" {
        return Ok(Sabotage::OverSkip);
    }
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| format!("sabotage spec '{spec}' needs kind:value"))?;
    let n: u32 = arg.parse().map_err(|e| format!("{e}"))?;
    match kind {
        "stall-sa" => Ok(Sabotage::StallSaRouter { router: n as u16 }),
        "leak-credit" => Ok(Sabotage::LeakCredit { every: n }),
        "overcount" => Ok(Sabotage::OvercountDelivered { every: n }),
        other => Err(format!(
            "unknown sabotage kind '{other}' (stall-sa, leak-credit, overcount, over-skip)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        cases: 100,
        budget_secs: None,
        out: "target/conformance".into(),
        sabotage: None,
        threads: 1,
        checkpoint_dir: None,
        checkpoint_every: 25,
        resume: false,
        telemetry_out: None,
        topology: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cases" => args.cases = value("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--budget-secs" => {
                args.budget_secs = Some(
                    value("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--out" => args.out = value("--out")?,
            "--sabotage" => args.sabotage = Some(parse_sabotage(&value("--sabotage")?)?),
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")?.into()),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--resume" => args.resume = true,
            "--telemetry-out" => args.telemetry_out = Some(value("--telemetry-out")?.into()),
            "--topology" => args.topology = Some(parse_topology(&value("--topology")?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Prometheus exposition for fuzz-campaign liveness (strict-parse
/// compatible with [`noc_sim::parse_prometheus`]).
fn fuzz_prom(ran: u64, next_seed: u64, threads: usize) -> String {
    let mut out = String::new();
    let mut metric = |name: &str, help: &str, kind: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        ));
    };
    metric(
        "fuzz_scenarios_total",
        "Conformant scenarios completed.",
        "counter",
        ran,
    );
    metric(
        "fuzz_next_seed",
        "First seed not yet completed.",
        "gauge",
        next_seed,
    );
    metric(
        "fuzz_threads",
        "Shard count each differential run uses.",
        "gauge",
        threads as u64,
    );
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            eprintln!(
                "usage: fuzz [--seed N] [--cases K] [--budget-secs S] [--out DIR] \
                 [--threads T] [--topology mesh|torus|degraded] \
                 [--sabotage stall-sa:R|leak-credit:N|overcount:N|over-skip] \
                 [--checkpoint-dir D [--checkpoint-every K] [--resume]] \
                 [--telemetry-out DIR]"
            );
            std::process::exit(2);
        }
    };
    let start = Instant::now();
    let mut ran = 0u64;
    let mut first_seed = args.seed;
    if args.resume {
        let Some(dir) = args.checkpoint_dir.as_deref() else {
            eprintln!("fuzz: --resume needs --checkpoint-dir");
            std::process::exit(2);
        };
        if let Some(p) = load_progress(dir) {
            // Completed seeds are skipped wholesale; the budget counts
            // them as already run.
            first_seed = first_seed.max(p.next_seed);
            ran = p.ran;
            println!("fuzz: resuming at seed {first_seed} ({ran} scenarios already done)");
        }
    }
    let mut telemetry = args.telemetry_out.as_ref().map(|dir| {
        TelemetryOut::new(dir, args.checkpoint_every.max(1)).unwrap_or_else(|e| {
            eprintln!("fuzz: cannot open {}: {e}", dir.display());
            std::process::exit(2);
        })
    });
    // Tracks the first seed not yet completed (where the loop broke).
    let mut next_seed = first_seed;
    for seed in first_seed.. {
        next_seed = seed;
        let time_up = args
            .budget_secs
            .is_some_and(|s| start.elapsed().as_secs() >= s);
        let cases_done = args.budget_secs.is_none() && ran >= args.cases;
        if time_up || cases_done {
            break;
        }
        let mut scenario = Scenario::generate_in(seed, args.topology);
        if let Some(sabotage) = args.sabotage {
            // Self-test mode: compile the defect into every scenario. A
            // stalled router must exist in the sampled mesh to bite.
            scenario.sabotage = Some(match sabotage {
                Sabotage::StallSaRouter { router } => Sabotage::StallSaRouter {
                    router: router % scenario.routers().max(1) as u16,
                },
                other => other,
            });
        }
        let report = run_differential_threads(&scenario, args.threads);
        ran += 1;
        if report.ok() {
            if let Some(dir) = args.checkpoint_dir.as_deref() {
                if args.checkpoint_every > 0 && ran.is_multiple_of(args.checkpoint_every) {
                    let p = Progress {
                        next_seed: seed + 1,
                        ran,
                    };
                    if let Err(e) = save_progress(dir, &p) {
                        eprintln!("fuzz: cannot persist progress: {e}");
                        std::process::exit(2);
                    }
                }
            }
            if let Some(out) = telemetry.as_mut() {
                // Heartbeat "cycle" counts scenarios completed, so a
                // supervisor can tell a slow campaign from a hung one.
                if out.due(ran) {
                    let prom = fuzz_prom(ran, seed + 1, args.threads);
                    if let Err(e) = out.write_now(ran, &prom, None, 0) {
                        eprintln!("fuzz: telemetry write failed: {e}");
                    }
                }
            }
            if ran.is_multiple_of(50) {
                println!(
                    "fuzz: {ran} scenarios conformant ({}s elapsed)",
                    start.elapsed().as_secs()
                );
            }
            continue;
        }
        println!("fuzz: seed {seed} diverged — shrinking");
        for d in report.divergences.iter().take(8) {
            println!("  {d}");
        }
        std::fs::create_dir_all(&args.out).expect("create output directory");
        // Forensic artifact: the simulator frozen at the last conformant
        // epoch boundary, restorable for single-step debugging.
        if let Some((cycle, snap)) = divergence_artifact(&scenario, args.threads) {
            let snap_path = format!("{}/failing-seed-{seed}-pre-divergence.snap", args.out);
            match snap.write_atomic(snap_path.as_ref()) {
                Ok(()) => println!("fuzz: pre-divergence snapshot (cycle {cycle}): {snap_path}"),
                Err(e) => eprintln!("fuzz: cannot write {snap_path}: {e}"),
            }
        }
        let minimal = shrink(&scenario, &|c| {
            !run_differential_threads(c, args.threads).ok()
        });
        let final_report = run_differential_threads(&minimal, args.threads);
        let path = format!("{}/failing-seed-{seed}.json", args.out);
        std::fs::create_dir_all(&args.out).expect("create output directory");
        std::fs::write(&path, minimal.to_json_string()).expect("write failing scenario");
        println!(
            "fuzz: minimized to {} routers / {} packets / {} trojans; divergences:",
            minimal.routers(),
            minimal.packets.len(),
            minimal.trojans.len()
        );
        for d in final_report.divergences.iter().take(8) {
            println!("  {d}");
        }
        println!("fuzz: wrote {path}");
        println!(
            "fuzz: replay with: cargo run -p htnoc-conformance --bin conformance_repro -- {path}"
        );
        std::process::exit(1);
    }
    if let Some(out) = telemetry.as_mut() {
        let prom = fuzz_prom(ran, next_seed, args.threads);
        if let Err(e) = out.write_now(ran, &prom, None, 0) {
            eprintln!("fuzz: telemetry write failed: {e}");
        }
    }
    println!(
        "fuzz: {ran} scenarios, zero divergences ({}s)",
        start.elapsed().as_secs()
    );
}
