//! Randomized conformance fuzzing.
//!
//! ```text
//! cargo run -p htnoc-conformance --bin fuzz -- --seed 1 --cases 500
//! cargo run -p htnoc-conformance --bin fuzz -- --seed 1 --budget-secs 120
//! ```
//!
//! Runs `cases` scenarios generated from consecutive seeds (or as many
//! as fit in `budget-secs`), each through the differential driver. On
//! the first divergence the scenario is shrunk to a minimal reproducer,
//! written as JSON under `--out` (default `target/conformance`), and the
//! exact replay command is printed; the process then exits nonzero.

use htnoc_conformance::{run_differential_threads, shrink, Scenario};
use noc_sim::config::Sabotage;
use std::time::Instant;

struct Args {
    seed: u64,
    cases: u64,
    budget_secs: Option<u64>,
    out: String,
    sabotage: Option<Sabotage>,
    threads: usize,
}

/// Parse `--sabotage` specs: `stall-sa:R`, `leak-credit:N`, `overcount:N`.
fn parse_sabotage(spec: &str) -> Result<Sabotage, String> {
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| format!("sabotage spec '{spec}' needs kind:value"))?;
    let n: u32 = arg.parse().map_err(|e| format!("{e}"))?;
    match kind {
        "stall-sa" => Ok(Sabotage::StallSaRouter { router: n as u16 }),
        "leak-credit" => Ok(Sabotage::LeakCredit { every: n }),
        "overcount" => Ok(Sabotage::OvercountDelivered { every: n }),
        other => Err(format!(
            "unknown sabotage kind '{other}' (stall-sa, leak-credit, overcount)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        cases: 100,
        budget_secs: None,
        out: "target/conformance".into(),
        sabotage: None,
        threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cases" => args.cases = value("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--budget-secs" => {
                args.budget_secs = Some(
                    value("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--out" => args.out = value("--out")?,
            "--sabotage" => args.sabotage = Some(parse_sabotage(&value("--sabotage")?)?),
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            eprintln!(
                "usage: fuzz [--seed N] [--cases K] [--budget-secs S] [--out DIR] \
                 [--threads T] [--sabotage stall-sa:R|leak-credit:N|overcount:N]"
            );
            std::process::exit(2);
        }
    };
    let start = Instant::now();
    let mut ran = 0u64;
    for seed in args.seed.. {
        let time_up = args
            .budget_secs
            .is_some_and(|s| start.elapsed().as_secs() >= s);
        let cases_done = args.budget_secs.is_none() && ran >= args.cases;
        if time_up || cases_done {
            break;
        }
        let mut scenario = Scenario::generate(seed);
        if let Some(sabotage) = args.sabotage {
            // Self-test mode: compile the defect into every scenario. A
            // stalled router must exist in the sampled mesh to bite.
            scenario.sabotage = Some(match sabotage {
                Sabotage::StallSaRouter { router } => Sabotage::StallSaRouter {
                    router: router % scenario.routers().max(1) as u16,
                },
                other => other,
            });
        }
        let report = run_differential_threads(&scenario, args.threads);
        ran += 1;
        if report.ok() {
            if ran.is_multiple_of(50) {
                println!(
                    "fuzz: {ran} scenarios conformant ({}s elapsed)",
                    start.elapsed().as_secs()
                );
            }
            continue;
        }
        println!("fuzz: seed {seed} diverged — shrinking");
        for d in report.divergences.iter().take(8) {
            println!("  {d}");
        }
        let minimal = shrink(&scenario, &|c| {
            !run_differential_threads(c, args.threads).ok()
        });
        let final_report = run_differential_threads(&minimal, args.threads);
        let path = format!("{}/failing-seed-{seed}.json", args.out);
        std::fs::create_dir_all(&args.out).expect("create output directory");
        std::fs::write(&path, minimal.to_json_string()).expect("write failing scenario");
        println!(
            "fuzz: minimized to {} routers / {} packets / {} trojans; divergences:",
            minimal.routers(),
            minimal.packets.len(),
            minimal.trojans.len()
        );
        for d in final_report.divergences.iter().take(8) {
            println!("  {d}");
        }
        println!("fuzz: wrote {path}");
        println!(
            "fuzz: replay with: cargo run -p htnoc-conformance --bin conformance_repro -- {path}"
        );
        std::process::exit(1);
    }
    println!(
        "fuzz: {ran} scenarios, zero divergences ({}s)",
        start.elapsed().as_secs()
    );
}
