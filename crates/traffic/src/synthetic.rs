//! Classic synthetic traffic patterns.

use noc_sim::TrafficSource;
use noc_types::{Mesh, NodeId, Packet, PacketId, VcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Destination-selection pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Uniformly random destination router ≠ source.
    UniformRandom,
    /// `(x, y) → (y, x)` (square meshes only).
    Transpose,
    /// Destination router index = bit-complement of the source index.
    BitComplement,
    /// All traffic converges on the given hotspot routers.
    Hotspot(Vec<NodeId>),
}

impl Pattern {
    fn dest(&self, mesh: &Mesh, src: NodeId, rng: &mut StdRng) -> NodeId {
        match self {
            Pattern::UniformRandom => {
                // A single-router mesh has no destination ≠ src; return
                // src and let the caller's self-traffic filter drop it
                // (the rejection loop below would otherwise never exit).
                if mesh.routers() <= 1 {
                    return src;
                }
                loop {
                    let d = NodeId(rng.gen_range(0..mesh.routers() as u16));
                    if d != src {
                        return d;
                    }
                }
            }
            Pattern::Transpose => {
                let c = mesh.coord_of(src);
                mesh.node_at(noc_types::Coord::new(c.y, c.x))
            }
            Pattern::BitComplement => {
                let mask = (mesh.routers() - 1) as u16;
                NodeId(!src.0 & mask)
            }
            Pattern::Hotspot(spots) => spots[rng.gen_range(0..spots.len())],
        }
    }
}

/// Rate-driven synthetic traffic: every core flips a Bernoulli coin each
/// cycle and, on success, injects one packet toward the pattern's target.
#[derive(Debug)]
pub struct SyntheticTraffic {
    mesh: Mesh,
    pattern: Pattern,
    /// Packets per core per cycle.
    rate: f64,
    packet_len: u8,
    vcs: u8,
    /// Stop injecting after this cycle (`u64::MAX` = run forever).
    until: u64,
    /// Highest cycle polled so far (drives `done`).
    polled: u64,
    rng: StdRng,
    next_packet: u64,
}

impl SyntheticTraffic {
    /// A new rate-driven source with the given pattern and seed.
    pub fn new(mesh: Mesh, pattern: Pattern, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        Self {
            mesh,
            pattern,
            rate,
            packet_len: 4,
            vcs: 4,
            until: u64::MAX,
            polled: 0,
            rng: StdRng::seed_from_u64(seed),
            next_packet: 0,
        }
    }

    /// Set the packet length in flits.
    pub fn with_packet_len(mut self, len: u8) -> Self {
        self.packet_len = len;
        self
    }

    /// Stop injecting at `cycle` (exclusive) so drain runs can terminate.
    pub fn until(mut self, cycle: u64) -> Self {
        self.until = cycle;
        self
    }

    /// Packets issued so far.
    pub fn packets_issued(&self) -> u64 {
        self.next_packet
    }
}

impl TrafficSource for SyntheticTraffic {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        self.polled = self.polled.max(cycle);
        if cycle >= self.until {
            return;
        }
        for core in 0..self.mesh.cores() {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let src = self.mesh.router_of_core(noc_types::CoreId(core as u16));
            let dest = self.pattern.dest(&self.mesh, src, &mut self.rng);
            if dest == src && !matches!(self.pattern, Pattern::Hotspot(_)) {
                continue;
            }
            let id = PacketId(self.next_packet);
            self.next_packet += 1;
            let vc = VcId((self.next_packet % self.vcs as u64) as u8);
            let thread = (core % self.mesh.concentration() as usize) as u8;
            let mem = self.rng.gen::<u32>();
            out.push(Packet::new(
                id,
                src,
                dest,
                vc,
                mem,
                thread,
                self.packet_len,
                cycle,
            ));
        }
    }

    fn done(&self) -> bool {
        // Done only once the whole injection window has been polled
        // through — a bounded source is not "done" before it has had the
        // chance to issue its schedule.
        self.until != u64::MAX && self.polled + 1 >= self.until
    }

    fn next_injection_at(&self, now: u64) -> Option<u64> {
        if now < self.until {
            // The Bernoulli coin is drawn (advancing the RNG) on every
            // polled cycle inside the window, so no cycle is provably
            // injection-free: the earliest candidate is `now` itself.
            Some(now)
        } else {
            // Window closed: `poll` returns before touching the RNG, no
            // packet can ever be produced, and `done()` is already final.
            None
        }
    }

    fn skip_to(&mut self, to: u64) {
        // Mirror what polling cycles `..to` would have done: past the
        // window only the `polled` watermark moves (it is serialized in
        // the cursor, so it must track exactly).
        if to > 0 {
            self.polled = self.polled.max(to - 1);
        }
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        noc_sim::snapshot::put_u64(out, self.polled);
        for s in self.rng.state() {
            noc_sim::snapshot::put_u64(out, s);
        }
        noc_sim::snapshot::put_u64(out, self.next_packet);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        use noc_sim::snapshot::take_u64;
        let Some(polled) = take_u64(input) else {
            return;
        };
        let mut state = [0u64; 4];
        for s in state.iter_mut() {
            let Some(v) = take_u64(input) else { return };
            *s = v;
        }
        let Some(next_packet) = take_u64(input) else {
            return;
        };
        self.polled = polled;
        self.rng = StdRng::from_state(state);
        self.next_packet = next_packet;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_never_self_targets() {
        let mesh = Mesh::paper();
        let mut t = SyntheticTraffic::new(mesh, Pattern::UniformRandom, 1.0, 42);
        let mut out = Vec::new();
        for c in 0..20 {
            t.poll(c, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|p| p.src != p.dest));
    }

    #[test]
    fn transpose_maps_coordinates() {
        let mesh = Mesh::paper();
        let mut rng = StdRng::seed_from_u64(0);
        // Router 1 = (1,0) → (0,1) = router 4.
        assert_eq!(
            Pattern::Transpose.dest(&mesh, NodeId(1), &mut rng),
            NodeId(4)
        );
    }

    #[test]
    fn bit_complement_within_range() {
        let mesh = Mesh::paper();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Pattern::BitComplement.dest(&mesh, NodeId(0), &mut rng),
            NodeId(15)
        );
        assert_eq!(
            Pattern::BitComplement.dest(&mesh, NodeId(5), &mut rng),
            NodeId(10)
        );
    }

    #[test]
    fn hotspot_targets_only_spots() {
        let mesh = Mesh::paper();
        let spots = vec![NodeId(3), NodeId(7)];
        let mut t = SyntheticTraffic::new(mesh, Pattern::Hotspot(spots.clone()), 1.0, 1);
        let mut out = Vec::new();
        t.poll(0, &mut out);
        assert!(out.iter().all(|p| spots.contains(&p.dest)));
    }

    #[test]
    fn rate_controls_volume() {
        let mesh = Mesh::paper();
        let mut lo = SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.01, 9);
        let mut hi = SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.5, 9);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for c in 0..200 {
            lo.poll(c, &mut a);
            hi.poll(c, &mut b);
        }
        assert!(b.len() > a.len() * 5, "{} vs {}", b.len(), a.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mesh = Mesh::paper();
        let run = |seed| {
            let mut t = SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.2, seed);
            let mut out = Vec::new();
            for c in 0..50 {
                t.poll(c, &mut out);
            }
            out
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn until_bounds_injection_and_reports_done() {
        let mesh = Mesh::paper();
        let mut t = SyntheticTraffic::new(mesh, Pattern::UniformRandom, 1.0, 1).until(10);
        assert!(!t.done(), "not done before the window was polled through");
        let mut out = Vec::new();
        t.poll(20, &mut out);
        assert!(out.is_empty());
        assert!(t.done(), "done once polled past the bound");
    }
}
