//! Traffic-matrix extraction for the Fig. 1 harness: src×dest packet
//! counts, per-source geographic totals, and analytical per-link shares
//! under XY routing.

use crate::app::AppModel;
use noc_sim::TrafficSource;
use noc_types::{LinkId, Mesh, NodeId, Packet};

/// Measured src×dest packet counts plus derived views.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    /// Number of routers (matrix dimension).
    pub routers: usize,
    /// `counts[src][dest]` in packets.
    pub counts: Vec<Vec<u64>>,
}

impl TrafficMatrix {
    /// An all-zero matrix for `routers` routers.
    pub fn zero(routers: usize) -> Self {
        Self {
            routers,
            counts: vec![vec![0; routers]; routers],
        }
    }

    /// Sample `cycles` of generation from an application model (no network
    /// simulation needed: Fig. 1 characterises the offered load).
    pub fn sample(model: &mut AppModel, cycles: u64) -> Self {
        let routers = model.mesh().routers();
        let mut m = Self::zero(routers);
        let mut buf: Vec<Packet> = Vec::new();
        for c in 0..cycles {
            buf.clear();
            model.poll(c, &mut buf);
            for p in &buf {
                m.counts[p.src.index()][p.dest.index()] += 1;
            }
        }
        m
    }

    /// Total packets sent by each source router (Fig. 1(b) hot spots).
    pub fn source_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|row| row.iter().sum()).collect()
    }

    /// Total packets in the matrix.
    pub fn total(&self) -> u64 {
        self.source_totals().iter().sum()
    }

    /// Per-link traffic share (fraction of all hops crossing each link)
    /// under XY routing — Fig. 1(c).
    pub fn link_shares_xy(&self, mesh: &Mesh) -> Vec<f64> {
        let mut hops = vec![0u64; mesh.links()];
        for s in 0..self.routers {
            for d in 0..self.routers {
                let n = self.counts[s][d];
                if n == 0 || s == d {
                    continue;
                }
                for link in noc_sim::routing::xy_path(mesh, NodeId(s as u16), NodeId(d as u16)) {
                    hops[link.index()] += n;
                }
            }
        }
        let total: u64 = hops.iter().sum();
        hops.iter()
            .map(|&h| {
                if total == 0 {
                    0.0
                } else {
                    h as f64 / total as f64
                }
            })
            .collect()
    }

    /// The `n` busiest links under XY routing, hottest first.
    pub fn hottest_links_xy(&self, mesh: &Mesh, n: usize) -> Vec<(LinkId, f64)> {
        let shares = self.link_shares_xy(mesh);
        let mut idx: Vec<usize> = (0..shares.len()).collect();
        idx.sort_by(|a, b| shares[*b].partial_cmp(&shares[*a]).expect("no NaN"));
        idx.into_iter()
            .take(n)
            .map(|i| (LinkId(i as u16), shares[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppSpec;

    fn sampled() -> (TrafficMatrix, Mesh) {
        let mesh = Mesh::paper();
        let mut model = AppModel::new(AppSpec::blackscholes(), mesh.clone(), 7);
        (TrafficMatrix::sample(&mut model, 3000), mesh)
    }

    #[test]
    fn matrix_has_no_self_traffic() {
        let (m, _) = sampled();
        assert!(m.total() > 100, "enough samples");
        for r in 0..m.routers {
            assert_eq!(m.counts[r][r], 0);
        }
    }

    #[test]
    fn primary_column_is_hottest() {
        let (m, _) = sampled();
        let primary = AppSpec::blackscholes().primary.index();
        let col = |d: usize| -> u64 { (0..m.routers).map(|s| m.counts[s][d]).sum() };
        let primary_mass = col(primary);
        for d in 0..m.routers {
            if d != primary {
                assert!(primary_mass >= col(d), "dest {d} beats the primary");
            }
        }
    }

    #[test]
    fn link_shares_sum_to_one() {
        let (m, mesh) = sampled();
        let shares = m.link_shares_xy(&mesh);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(shares.len(), 48);
    }

    #[test]
    fn hottest_links_cluster_near_the_primary() {
        let (m, mesh) = sampled();
        let hot = m.hottest_links_xy(&mesh, 5);
        assert_eq!(hot.len(), 5);
        // Every hot link's endpoint lies within 2 hops of the primary.
        let primary = AppSpec::blackscholes().primary;
        for (link, share) in hot {
            assert!(share > 0.0);
            let (src, _) = mesh.link_source(link);
            let dst = mesh.link_dest(link);
            let d = mesh
                .hop_distance(src, primary)
                .min(mesh.hop_distance(dst, primary));
            assert!(d <= 2, "hot link {link:?} is {d} hops from the primary");
        }
    }

    #[test]
    fn source_totals_match_total() {
        let (m, _) = sampled();
        assert_eq!(m.source_totals().iter().sum::<u64>(), m.total());
    }
}
