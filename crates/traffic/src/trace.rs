//! Traffic trace recording and replay.
//!
//! The paper drives its simulator from recorded benchmark traces. This
//! module gives the same workflow to any generator in this crate: wrap a
//! source in a [`Recorder`] to capture exactly what it injected, then
//! [`Replay`] the capture — bit-identically — into as many simulator
//! configurations as needed. Replay is how the figure harnesses guarantee
//! that every strategy in a comparison saw *the same* offered workload.

use noc_sim::TrafficSource;
use noc_types::Packet;

/// One recorded injection.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Cycle the packet was injected.
    pub cycle: u64,
    /// The injected packet.
    pub packet: Packet,
}

/// A complete recorded workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The recorded injections in nondecreasing cycle order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Record `cycles` of a source's output without running a simulator.
    pub fn capture<S: TrafficSource>(source: &mut S, cycles: u64) -> Self {
        let mut entries = Vec::new();
        let mut buf = Vec::new();
        for cycle in 0..cycles {
            buf.clear();
            source.poll(cycle, &mut buf);
            for p in buf.drain(..) {
                entries.push(TraceEntry { cycle, packet: p });
            }
        }
        Self { entries }
    }

    /// Number of recorded packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total flits in the trace.
    pub fn flits(&self) -> u64 {
        self.entries.iter().map(|e| e.packet.len as u64).sum()
    }

    /// A replayable source over this trace.
    pub fn replay(&self) -> Replay {
        Replay {
            entries: self.entries.clone(),
            next: 0,
        }
    }
}

/// Records everything an inner source injects while passing it through.
pub struct Recorder<S> {
    /// The wrapped source.
    pub inner: S,
    /// Everything the source has injected so far.
    pub trace: Trace,
}

impl<S> Recorder<S> {
    /// Wrap a source for recording.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            trace: Trace::default(),
        }
    }
}

impl<S: TrafficSource> TrafficSource for Recorder<S> {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let start = out.len();
        self.inner.poll(cycle, out);
        for p in &out[start..] {
            self.trace.entries.push(TraceEntry {
                cycle,
                packet: p.clone(),
            });
        }
    }
    fn done(&self) -> bool {
        self.inner.done()
    }

    // Lookahead delegates: a window where the inner source provably
    // injects nothing records nothing, so the trace is unperturbed.
    fn next_injection_at(&self, now: u64) -> Option<u64> {
        self.inner.next_injection_at(now)
    }

    fn skip_to(&mut self, to: u64) {
        self.inner.skip_to(to);
    }

    // The cursor delegates to the wrapped source; the already-captured
    // trace prefix is not part of the cursor (a resumed recorder records
    // only from the resume point onward).
    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.inner.save_cursor(out);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        self.inner.load_cursor(input);
    }
}

/// Replays a [`Trace`] injection-for-injection. Entries must be in
/// nondecreasing cycle order (which capture and recording guarantee).
pub struct Replay {
    entries: Vec<TraceEntry>,
    next: usize,
}

impl TrafficSource for Replay {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        while let Some(e) = self.entries.get(self.next) {
            if e.cycle > cycle {
                break;
            }
            if e.cycle == cycle {
                out.push(e.packet.clone());
            }
            self.next += 1;
        }
    }
    fn done(&self) -> bool {
        self.next >= self.entries.len()
    }

    fn next_injection_at(&self, now: u64) -> Option<u64> {
        // The head entry is the next act; an already-late head (stale
        // cycle) clamps to `now`, which disables skipping. Exhausted
        // trace: `done()` is final and nothing is ever produced.
        self.entries.get(self.next).map(|e| e.cycle.max(now))
    }

    fn skip_to(&mut self, to: u64) {
        // Naive polling of cycles `..to` consumes (without emitting)
        // every entry whose cycle is already behind `to`; the cursor is
        // `next`, so it must advance identically.
        while self.entries.get(self.next).is_some_and(|e| e.cycle < to) {
            self.next += 1;
        }
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        noc_sim::snapshot::put_u64(out, self.next as u64);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        if let Some(next) = noc_sim::snapshot::take_u64(input) {
            self.next = (next as usize).min(self.entries.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppModel, AppSpec};
    use crate::synthetic::{Pattern, SyntheticTraffic};
    use noc_types::Mesh;

    #[test]
    fn capture_and_replay_are_identical() {
        let mesh = Mesh::paper();
        let mut src = SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, 0.1, 5);
        let trace = Trace::capture(&mut src, 100);
        assert!(!trace.is_empty());
        let mut replay = trace.replay();
        let recaptured = Trace::capture(&mut replay, 100);
        assert_eq!(trace, recaptured);
    }

    #[test]
    fn recorder_is_transparent() {
        let mesh = Mesh::paper();
        let plain = {
            let mut s = AppModel::new(AppSpec::ferret(), mesh.clone(), 9);
            Trace::capture(&mut s, 80)
        };
        let recorded = {
            let mut r = Recorder::new(AppModel::new(AppSpec::ferret(), mesh, 9));
            let _ = Trace::capture(&mut r, 80);
            r.trace
        };
        assert_eq!(plain, recorded, "recording must not perturb the source");
    }

    #[test]
    fn replay_done_after_last_entry() {
        let mesh = Mesh::paper();
        let mut src = SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.5, 1);
        let trace = Trace::capture(&mut src, 10);
        let mut replay = trace.replay();
        assert!(!replay.done());
        let mut buf = Vec::new();
        for c in 0..11 {
            replay.poll(c, &mut buf);
        }
        assert!(replay.done());
        assert_eq!(buf.len(), trace.len());
    }

    #[test]
    fn flit_count_sums_packet_lengths() {
        let mesh = Mesh::paper();
        let mut src =
            SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.3, 2).with_packet_len(3);
        let trace = Trace::capture(&mut src, 20);
        assert_eq!(trace.flits(), trace.len() as u64 * 3);
    }

    #[test]
    fn replay_drives_a_simulator_deterministically() {
        use noc_sim::{SimConfig, Simulator};
        let mesh = Mesh::paper();
        let mut src = SyntheticTraffic::new(mesh, Pattern::Transpose, 0.02, 3).until(200);
        let trace = Trace::capture(&mut src, 250);
        let run = |trace: &Trace| {
            let mut sim = Simulator::new(SimConfig::paper());
            let mut replay = trace.replay();
            sim.run_to_quiescence(5000, &mut replay);
            (
                sim.stats().delivered_packets,
                sim.stats().latency_sum,
                sim.cycle(),
            )
        };
        assert_eq!(run(&trace), run(&trace));
        assert_eq!(run(&trace).0, trace.len() as u64);
    }
}
