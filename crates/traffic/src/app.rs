//! Synthetic application models standing in for the PARSEC / SPLASH-2
//! traces the paper evaluates (Blackscholes, Facesim, Ferret, FFT).
//!
//! Each model is a *gravity* distribution anchored at a primary router (the
//! application's master / hottest core in the paper's Fig. 1): a share of
//! every core's requests goes to the primary, the rest spreads over the
//! mesh with exponential decay in hop distance. The primary itself answers
//! back at an elevated rate (master→worker replies). On/off bursts add the
//! temporal texture of barrier-synchronised phases.

use noc_sim::TrafficSource;
use noc_types::{CoreId, Mesh, NodeId, Packet, PacketId, VcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of one application model.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Benchmark name as printed in tables.
    pub name: &'static str,
    /// The master router around which traffic localises.
    pub primary: NodeId,
    /// Fraction of worker requests aimed at the primary.
    pub to_primary: f64,
    /// Exponential decay of the remaining traffic with hop distance.
    pub decay: f64,
    /// Worker injection rate (packets / core / cycle).
    pub rate: f64,
    /// Rate multiplier for the primary router's cores (reply traffic).
    pub primary_boost: f64,
    /// Burst on/off period and duty length in cycles (0 period = no bursts).
    pub burst_period: u64,
    /// Burst duty length in cycles.
    pub burst_len: u64,
    /// Flits per packet.
    pub packet_len: u8,
    /// Base of the memory range this application touches (trojan Mem
    /// targets key on this).
    pub mem_base: u32,
}

/// The four benchmarks of the paper's Fig. 10, as model presets. Values are
/// chosen so the resulting distributions match the qualitative description
/// in §III-A: sharp primary peak for Blackscholes, flatter neighbourhoods
/// for Ferret's pipeline, wide butterfly exchange for FFT.
impl AppSpec {
    /// The Blackscholes-shaped preset (sharp master-worker peak).
    pub fn blackscholes() -> Self {
        Self {
            name: "blackscholes",
            primary: NodeId(0),
            to_primary: 0.55,
            decay: 0.9,
            rate: 0.02,
            primary_boost: 6.0,
            burst_period: 400,
            burst_len: 300,
            packet_len: 4,
            mem_base: 0x1000_0000,
        }
    }

    /// The Facesim-shaped preset.
    pub fn facesim() -> Self {
        Self {
            name: "facesim",
            primary: NodeId(5),
            to_primary: 0.40,
            decay: 0.6,
            rate: 0.025,
            primary_boost: 4.0,
            burst_period: 600,
            burst_len: 450,
            packet_len: 4,
            mem_base: 0x2000_0000,
        }
    }

    /// The Ferret-shaped preset (flat pipeline neighbourhoods).
    pub fn ferret() -> Self {
        Self {
            name: "ferret",
            primary: NodeId(10),
            to_primary: 0.30,
            decay: 0.35,
            rate: 0.03,
            primary_boost: 3.0,
            burst_period: 0,
            burst_len: 0,
            packet_len: 4,
            mem_base: 0x3000_0000,
        }
    }

    /// The FFT-shaped preset (wide butterfly exchange).
    pub fn fft() -> Self {
        Self {
            name: "fft",
            primary: NodeId(6),
            to_primary: 0.20,
            decay: 0.15,
            rate: 0.035,
            primary_boost: 2.0,
            burst_period: 500,
            burst_len: 250,
            packet_len: 4,
            mem_base: 0x4000_0000,
        }
    }

    /// All four Fig. 10 benchmarks.
    pub fn all() -> Vec<AppSpec> {
        vec![
            Self::blackscholes(),
            Self::facesim(),
            Self::ferret(),
            Self::fft(),
        ]
    }
}

/// A running instance of an application model.
#[derive(Debug)]
pub struct AppModel {
    spec: AppSpec,
    mesh: Mesh,
    /// Per-source cumulative destination distributions.
    dest_cdf: Vec<Vec<(f64, NodeId)>>,
    until: u64,
    /// Highest cycle polled so far (drives `done`).
    polled: u64,
    rng: StdRng,
    next_packet: u64,
    /// Added to every issued packet id so multiple concurrent models never
    /// collide in one simulator.
    id_offset: u64,
    vcs: u8,
    /// Restrict issued VCs to this set (TDM domain pinning); empty = all.
    vc_choices: Vec<u8>,
}

impl AppModel {
    /// Instantiate the model on a mesh with a deterministic seed.
    pub fn new(spec: AppSpec, mesh: Mesh, seed: u64) -> Self {
        let dest_cdf = (0..mesh.routers())
            .map(|s| Self::build_cdf(&spec, &mesh, NodeId(s as u16)))
            .collect();
        Self {
            spec,
            mesh,
            dest_cdf,
            until: u64::MAX,
            polled: 0,
            rng: StdRng::seed_from_u64(seed),
            next_packet: 0,
            id_offset: 0,
            vcs: 4,
            vc_choices: Vec::new(),
        }
    }

    /// Offset every issued packet id (required when several models feed the
    /// same simulator, so ids stay globally unique).
    pub fn with_packet_id_offset(mut self, offset: u64) -> Self {
        self.id_offset = offset;
        self
    }

    /// Stop injecting at `cycle` (exclusive).
    pub fn until(mut self, cycle: u64) -> Self {
        self.until = cycle;
        self
    }

    /// Pin all packets to the given VCs (e.g. one TDM domain's partition).
    pub fn with_vcs(mut self, vcs: Vec<u8>) -> Self {
        self.vc_choices = vcs;
        self
    }

    /// The model parameters.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The mesh the model runs on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn build_cdf(spec: &AppSpec, mesh: &Mesh, src: NodeId) -> Vec<(f64, NodeId)> {
        let mut weights = Vec::with_capacity(mesh.routers());
        for d in 0..mesh.routers() {
            let dest = NodeId(d as u16);
            if dest == src {
                continue;
            }
            let mut w = (-spec.decay * mesh.hop_distance(src, dest) as f64).exp();
            if dest == spec.primary {
                // Lump the dedicated primary share onto the gravity weight.
                w += spec.to_primary / (1.0 - spec.to_primary).max(1e-9);
            }
            weights.push((w, dest));
        }
        let total: f64 = weights.iter().map(|(w, _)| w).sum();
        let mut acc = 0.0;
        weights
            .into_iter()
            .map(|(w, d)| {
                acc += w / total;
                (acc, d)
            })
            .collect()
    }

    fn sample_dest(&mut self, src: NodeId) -> NodeId {
        let u: f64 = self.rng.gen();
        let cdf = &self.dest_cdf[src.index()];
        cdf.iter()
            .find(|(p, _)| u <= *p)
            .map(|(_, d)| *d)
            .unwrap_or(cdf.last().expect("nonempty").1)
    }

    fn bursting(&self, cycle: u64) -> bool {
        if self.spec.burst_period == 0 {
            return true;
        }
        cycle % self.spec.burst_period < self.spec.burst_len
    }

    /// The analytical probability that a packet from `src` targets `dest`
    /// (exposed for the Fig. 1 matrix harness and tests).
    pub fn dest_probability(&self, src: NodeId, dest: NodeId) -> f64 {
        if src == dest {
            return 0.0;
        }
        let cdf = &self.dest_cdf[src.index()];
        let mut prev = 0.0;
        for (p, d) in cdf {
            if *d == dest {
                return p - prev;
            }
            prev = *p;
        }
        0.0
    }

    /// Packets issued so far.
    pub fn packets_issued(&self) -> u64 {
        self.next_packet
    }
}

impl TrafficSource for AppModel {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        self.polled = self.polled.max(cycle);
        if cycle >= self.until || !self.bursting(cycle) {
            return;
        }
        for core in 0..self.mesh.cores() {
            let src = self.mesh.router_of_core(CoreId(core as u16));
            // A single-router mesh has no remote destination to sample
            // (the CDF excludes src), so this core can never inject.
            if self.dest_cdf[src.index()].is_empty() {
                continue;
            }
            let mut rate = self.spec.rate;
            if src == self.spec.primary {
                rate *= self.spec.primary_boost;
            }
            if !self.rng.gen_bool(rate.min(1.0)) {
                continue;
            }
            let dest = self.sample_dest(src);
            let id = PacketId(self.id_offset + self.next_packet);
            self.next_packet += 1;
            let vc = if self.vc_choices.is_empty() {
                VcId((id.0 % self.vcs as u64) as u8)
            } else {
                VcId(self.vc_choices[(id.0 % self.vc_choices.len() as u64) as usize])
            };
            let thread = (core % self.mesh.concentration() as usize) as u8;
            let mem = self.spec.mem_base | (self.rng.gen::<u32>() & 0x00FF_FFFF);
            out.push(Packet::new(
                id,
                src,
                dest,
                vc,
                mem,
                thread,
                self.spec.packet_len,
                cycle,
            ));
        }
    }

    fn done(&self) -> bool {
        // Done only once the whole injection window has been polled
        // through, so a drain lull mid-schedule never ends a run early.
        self.until != u64::MAX && self.polled + 1 >= self.until
    }

    fn next_injection_at(&self, now: u64) -> Option<u64> {
        if now >= self.until {
            // Schedule exhausted: `poll` only moves the watermark and
            // `done()` is already final.
            return None;
        }
        if self.bursting(now) {
            // Inside a burst the per-core coins are drawn every cycle.
            return Some(now);
        }
        // Burst-off phase: `poll` returns before touching the RNG, so
        // the lull is skippable up to the next burst boundary (clamped
        // to `until - 1`, the cycle whose poll finalizes `done()`).
        let next_burst = (now / self.spec.burst_period + 1) * self.spec.burst_period;
        Some(next_burst.min(self.until - 1).max(now))
    }

    fn skip_to(&mut self, to: u64) {
        // Only the serialized `polled` watermark moves during a lull.
        if to > 0 {
            self.polled = self.polled.max(to - 1);
        }
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        noc_sim::snapshot::put_u64(out, self.polled);
        for s in self.rng.state() {
            noc_sim::snapshot::put_u64(out, s);
        }
        noc_sim::snapshot::put_u64(out, self.next_packet);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        use noc_sim::snapshot::take_u64;
        let Some(polled) = take_u64(input) else {
            return;
        };
        let mut state = [0u64; 4];
        for s in state.iter_mut() {
            let Some(v) = take_u64(input) else { return };
            *s = v;
        }
        let Some(next_packet) = take_u64(input) else {
            return;
        };
        self.polled = polled;
        self.rng = StdRng::from_state(state);
        self.next_packet = next_packet;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(spec: AppSpec) -> AppModel {
        AppModel::new(spec, Mesh::paper(), 42)
    }

    #[test]
    fn cdf_is_normalised() {
        let m = model(AppSpec::blackscholes());
        for src in 0..16u16 {
            let total: f64 = (0..16u16)
                .map(|d| m.dest_probability(NodeId(src), NodeId(d)))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "src {src}: {total}");
        }
    }

    #[test]
    fn primary_is_the_hottest_aggregate_destination() {
        // Summed over all sources, the primary draws more traffic than any
        // other router (a near neighbour may beat a distant primary from a
        // single source under flat decay, as in Ferret's pipeline).
        for spec in AppSpec::all() {
            let primary = spec.primary;
            let m = model(spec.clone());
            let col =
                |d: NodeId| -> f64 { (0..16u16).map(|s| m.dest_probability(NodeId(s), d)).sum() };
            let p_primary = col(primary);
            for d in 0..16u16 {
                let d = NodeId(d);
                if d == primary {
                    continue;
                }
                assert!(
                    p_primary > col(d),
                    "{}: primary column {:.3} not hottest vs {d:?} {:.3}",
                    spec.name,
                    p_primary,
                    col(d)
                );
            }
        }
    }

    #[test]
    fn sharp_apps_make_primary_hottest_from_every_source() {
        // Blackscholes' master-worker shape is sharp enough that the
        // primary dominates from every individual source too (Fig. 1(a)).
        let m = model(AppSpec::blackscholes());
        let primary = AppSpec::blackscholes().primary;
        for src in 0..16u16 {
            let src = NodeId(src);
            if src == primary {
                continue;
            }
            let p_primary = m.dest_probability(src, primary);
            for d in 0..16u16 {
                let d = NodeId(d);
                if d == src || d == primary {
                    continue;
                }
                assert!(p_primary >= m.dest_probability(src, d));
            }
        }
    }

    #[test]
    fn traffic_decays_with_distance() {
        let m = model(AppSpec::blackscholes());
        // From router 15 (far corner), nearer routers get more traffic than
        // farther ones (primary excepted).
        let mesh = Mesh::paper();
        let src = NodeId(15);
        let p_near = m.dest_probability(src, NodeId(14)); // 1 hop
        let p_far = m.dest_probability(src, NodeId(3)); // 3+ hops, not primary
        assert!(p_near > p_far, "{p_near} vs {p_far}");
        let _ = mesh;
    }

    #[test]
    fn generation_is_deterministic() {
        let run = |seed| {
            let mut m = AppModel::new(AppSpec::ferret(), Mesh::paper(), seed);
            let mut out = Vec::new();
            for c in 0..100 {
                m.poll(c, &mut out);
            }
            out.len()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn mem_addresses_stay_in_the_apps_range() {
        let mut m = model(AppSpec::fft());
        let mut out = Vec::new();
        for c in 0..200 {
            m.poll(c, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out
            .iter()
            .all(|p| p.mem_addr & 0xFF00_0000 == AppSpec::fft().mem_base));
    }

    #[test]
    fn bursts_gate_injection() {
        let spec = AppSpec {
            burst_period: 10,
            burst_len: 5,
            rate: 1.0,
            ..AppSpec::blackscholes()
        };
        let mut m = model(spec);
        let mut on = Vec::new();
        let mut off = Vec::new();
        m.poll(2, &mut on); // inside burst
        m.poll(7, &mut off); // outside burst
        assert!(!on.is_empty());
        assert!(off.is_empty());
    }

    #[test]
    fn vc_pinning_restricts_vcs() {
        let mut m = model(AppSpec::blackscholes()).with_vcs(vec![1, 3]);
        let mut out = Vec::new();
        for c in 0..100 {
            m.poll(c, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|p| p.vc.0 == 1 || p.vc.0 == 3));
    }

    #[test]
    fn four_presets_have_distinct_primaries() {
        let primaries: Vec<_> = AppSpec::all().iter().map(|s| s.primary).collect();
        let mut dedup = primaries.clone();
        dedup.dedup();
        assert_eq!(primaries.len(), 4);
        assert_eq!(dedup.len(), 4);
    }
}
