//! Traffic generation: synthetic patterns and application-trace models.
//!
//! The paper drives its simulator with "real traffic distributions from the
//! PARSEC and SPLASH-2 benchmark suites". Those gate-level traces are not
//! redistributable, so this crate provides **seeded synthetic models** whose
//! src×dest distributions reproduce the *shape* the paper reports for them
//! (Fig. 1): a primary router acting as the application's master, traffic
//! mass decaying with hop distance from it, and a handful of hot links.
//! DESIGN.md §2 records the substitution argument.
//!
//! Every generator implements [`noc_sim::TrafficSource`] and is fully
//! deterministic given its seed.

pub mod app;
pub mod flood;
pub mod matrix;
pub mod synthetic;
pub mod trace;

pub use app::{AppModel, AppSpec};
pub use flood::FloodAttack;
pub use matrix::TrafficMatrix;
pub use synthetic::{Pattern, SyntheticTraffic};
pub use trace::{Recorder, Replay, Trace};
