//! Flood-based denial-of-service traffic: rogue threads on compromised
//! cores inject at line rate toward victim routers — the software-level
//! attack model of the paper's related work ([12], [14]) that the TASP
//! trojan is contrasted with, and the workload for the XY-vs-adaptive
//! routing comparison in §III-A.

use noc_sim::TrafficSource;
use noc_types::{CoreId, Mesh, NodeId, Packet, PacketId, VcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of compromised cores flooding one or more victim routers.
#[derive(Debug)]
pub struct FloodAttack {
    mesh: Mesh,
    /// The rogue cores.
    attackers: Vec<CoreId>,
    /// Flood destinations (round-robin per attacker).
    victims: Vec<NodeId>,
    /// Injection rate per rogue core (packets/cycle; 1.0 = line rate).
    rate: f64,
    packet_len: u8,
    /// Attack window.
    from: u64,
    until: u64,
    polled: u64,
    rng: StdRng,
    next_packet: u64,
    /// Offset so flood ids never collide with background traffic.
    id_offset: u64,
}

impl FloodAttack {
    /// A flood from `attackers` toward `victims` at line rate.
    pub fn new(mesh: Mesh, attackers: Vec<CoreId>, victims: Vec<NodeId>, seed: u64) -> Self {
        assert!(!attackers.is_empty() && !victims.is_empty());
        Self {
            mesh,
            attackers,
            victims,
            rate: 1.0,
            packet_len: 4,
            from: 0,
            until: u64::MAX,
            polled: 0,
            rng: StdRng::seed_from_u64(seed),
            next_packet: 0,
            id_offset: 1 << 48,
        }
    }

    /// Throttle the flood below line rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.rate = rate;
        self
    }

    /// Restrict the attack to `[from, until)`.
    pub fn window(mut self, from: u64, until: u64) -> Self {
        self.from = from;
        self.until = until;
        self
    }

    /// Packets issued so far.
    pub fn packets_issued(&self) -> u64 {
        self.next_packet
    }
}

impl TrafficSource for FloodAttack {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        self.polled = self.polled.max(cycle);
        if cycle < self.from || cycle >= self.until {
            return;
        }
        for (i, core) in self.attackers.iter().enumerate() {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let src = self.mesh.router_of_core(*core);
            let dest = self.victims[(self.next_packet as usize + i) % self.victims.len()];
            if dest == src {
                continue;
            }
            let id = PacketId(self.id_offset + self.next_packet);
            self.next_packet += 1;
            out.push(Packet::new(
                id,
                src,
                dest,
                VcId((id.0 % 4) as u8),
                self.rng.gen(),
                (core.0 % self.mesh.concentration() as u16) as u8,
                self.packet_len,
                cycle,
            ));
        }
    }

    fn done(&self) -> bool {
        self.until != u64::MAX && self.polled + 1 >= self.until
    }

    fn next_injection_at(&self, now: u64) -> Option<u64> {
        if now >= self.until {
            // Attack over: `poll` only moves the watermark and `done()`
            // is already final.
            return None;
        }
        // Before the window opens `poll` returns without touching the
        // RNG, so the quiet lead-in is skippable up to `from`. Clamp to
        // `until - 1` so a window that never opens (`from >= until`)
        // still stops at the cycle where `done()` flips.
        Some(self.from.max(now).min(self.until - 1))
    }

    fn skip_to(&mut self, to: u64) {
        if to > 0 {
            self.polled = self.polled.max(to - 1);
        }
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        noc_sim::snapshot::put_u64(out, self.polled);
        for s in self.rng.state() {
            noc_sim::snapshot::put_u64(out, s);
        }
        noc_sim::snapshot::put_u64(out, self.next_packet);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        use noc_sim::snapshot::take_u64;
        let Some(polled) = take_u64(input) else {
            return;
        };
        let mut state = [0u64; 4];
        for s in state.iter_mut() {
            let Some(v) = take_u64(input) else { return };
            *s = v;
        }
        let Some(next_packet) = take_u64(input) else {
            return;
        };
        self.polled = polled;
        self.rng = StdRng::from_state(state);
        self.next_packet = next_packet;
    }
}

/// Combine a background workload with a flood attack into one source.
pub struct WithFlood<S> {
    /// The legitimate workload.
    pub background: S,
    /// The attack traffic layered on top.
    pub flood: FloodAttack,
}

impl<S: TrafficSource> TrafficSource for WithFlood<S> {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        self.background.poll(cycle, out);
        self.flood.poll(cycle, out);
    }
    fn done(&self) -> bool {
        self.background.done() && self.flood.done()
    }

    fn next_injection_at(&self, now: u64) -> Option<u64> {
        // The combined source can act whenever either part can: the
        // earlier of the two horizons (a `None` part never acts again).
        match (
            self.background.next_injection_at(now),
            self.flood.next_injection_at(now),
        ) {
            (None, None) => None,
            (Some(h), None) | (None, Some(h)) => Some(h),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    fn skip_to(&mut self, to: u64) {
        self.background.skip_to(to);
        self.flood.skip_to(to);
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.background.save_cursor(out);
        self.flood.save_cursor(out);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        self.background.load_cursor(input);
        self.flood.load_cursor(input);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack() -> FloodAttack {
        FloodAttack::new(
            Mesh::paper(),
            vec![CoreId(20), CoreId(21)],
            vec![NodeId(0)],
            1,
        )
    }

    #[test]
    fn floods_at_line_rate_toward_victims() {
        let mut f = attack();
        let mut out = Vec::new();
        for c in 0..50 {
            f.poll(c, &mut out);
        }
        assert_eq!(out.len(), 100, "2 attackers × 50 cycles at line rate");
        assert!(out.iter().all(|p| p.dest == NodeId(0)));
        assert!(
            out.iter().all(|p| p.src == NodeId(5)),
            "cores 20/21 sit on router 5"
        );
    }

    #[test]
    fn window_bounds_the_attack() {
        let mut f = attack().window(10, 20);
        let mut out = Vec::new();
        f.poll(5, &mut out);
        assert!(out.is_empty());
        f.poll(15, &mut out);
        assert_eq!(out.len(), 2);
        assert!(!f.done());
        f.poll(25, &mut out);
        assert_eq!(out.len(), 2, "no injection past the window");
        assert!(f.done());
    }

    #[test]
    fn ids_are_offset_out_of_background_space() {
        let mut f = attack();
        let mut out = Vec::new();
        f.poll(0, &mut out);
        assert!(out.iter().all(|p| p.id.0 >= 1 << 48));
    }

    #[test]
    fn rate_throttles() {
        let mut f = attack().with_rate(0.1);
        let mut out = Vec::new();
        for c in 0..200 {
            f.poll(c, &mut out);
        }
        assert!(out.len() < 100, "{}", out.len());
        assert!(!out.is_empty());
    }
}
