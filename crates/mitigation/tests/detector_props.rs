//! Property tests for the threat source detector, exhaustive over bit
//! positions on a small link width.
//!
//! The TASP trojan flips exactly two wires per attack, so every fault the
//! detector ever sees on a trojaned link is a double-bit SECDED decode.
//! These tests drive the detector with *real* codewords — encode, flip a
//! pair of physical wire positions, decode — rather than hand-picked
//! syndrome numbers, so the classification contract is checked against the
//! same decode outcomes the router pipeline produces:
//!
//! * an isolated fault at any position pair classifies as a transient;
//! * repeats at the **same** positions classify as permanent and summon
//!   BIST (identical "transients" are implausible — a stuck wire is not);
//! * repeats at **shifting** positions on the same flit are the trojan
//!   signature and escalate to L-Ob;
//! * a clean BIST converts a permanent verdict into a hardware trojan.

use noc_ecc::{flip_bit, Decode, Secded, CODEWORD_BITS};
use noc_mitigation::{DetectorAction, DetectorConfig, FaultClass, ThreatDetector};
use noc_types::PacketId;
use proptest::prelude::*;

/// Exhaustive sweeps pair wires within this prefix of the codeword (the
/// "small link width"); 16 wires give 120 distinct flip pairs, enough to
/// cover every syndrome-collision shape without quadratic-in-72 blowups
/// where the test walks pairs of pairs.
const SMALL_WIDTH: usize = 16;

/// Decode of `data`'s codeword with wires `i` and `j` flipped in flight.
/// SECDED promises every double error is detected-but-uncorrectable.
fn double_flip(data: u64, i: usize, j: usize) -> Decode {
    assert_ne!(i, j);
    let tampered = flip_bit(flip_bit(Secded::encode(data), i), j);
    let decode = Secded::decode(tampered);
    assert!(
        matches!(decode, Decode::Uncorrectable { .. }),
        "double flip ({i},{j}) must be uncorrectable, got {decode:?}"
    );
    decode
}

/// An isolated double-bit fault — at *any* pair of wire positions on the
/// full codeword — draws a plain retransmission, no BIST, and a transient
/// classification. Exhaustive over all C(72,2) = 2556 pairs.
#[test]
fn every_isolated_fault_is_a_transient() {
    for i in 0..CODEWORD_BITS {
        for j in (i + 1)..CODEWORD_BITS {
            let mut det = ThreatDetector::default();
            let key = (PacketId(1), 0);
            let v = det.on_flit(key, &double_flip(0xDEAD_BEEF_F00D_CAFE, i, j), None);
            assert_eq!(v.action, DetectorAction::Retransmit, "pair ({i},{j})");
            assert!(!v.run_bist, "one fault never summons BIST ({i},{j})");
            assert_eq!(det.classify(&key), FaultClass::Transient);
            assert_eq!(det.link_class(), FaultClass::Transient);
        }
    }
}

/// The same wire pair faulting twice on one flit produces an identical
/// syndrome both times: the detector must request a BIST scan and classify
/// the link as a permanent (stuck-at) fault. Exhaustive over the small
/// link width.
#[test]
fn same_position_repeats_classify_permanent_and_summon_bist() {
    for i in 0..SMALL_WIDTH {
        for j in (i + 1)..SMALL_WIDTH {
            let mut det = ThreatDetector::default();
            let key = (PacketId(2), 3);
            // Same wires, same data word → byte-identical syndrome.
            let first = det.on_flit(key, &double_flip(0x0123_4567_89AB_CDEF, i, j), None);
            assert!(!first.run_bist);
            let second = det.on_flit(key, &double_flip(0x0123_4567_89AB_CDEF, i, j), None);
            assert!(
                second.run_bist,
                "identical repeat at ({i},{j}) must summon BIST"
            );
            assert_eq!(det.classify(&key), FaultClass::Permanent, "pair ({i},{j})");
            assert_eq!(det.link_class(), FaultClass::Permanent);
            assert_eq!(det.bist_requests(), 1);

            // BIST comes back clean: no stuck wire exists, so the repeats
            // were data-dependent — reclassify as a hardware trojan.
            det.on_bist_result(true);
            assert_eq!(det.classify(&key), FaultClass::HardwareTrojan);
            // A failed BIST confirms the stuck-at hypothesis instead.
            det.on_bist_result(false);
            assert_eq!(det.classify(&key), FaultClass::Permanent);
        }
    }
}

/// Two faults on the same flit at *different* wire pairs (with distinct
/// syndromes) are the TASP signature: escalate to an obfuscated
/// retransmission at ladder rung 0, skip BIST, classify hardware trojan.
/// Exhaustive over ordered pairs of flip pairs within the small width.
#[test]
fn shifting_position_repeats_classify_hardware_trojan() {
    let data = 0xFEED_FACE_CAFE_BABE;
    // Pre-compute each pair's syndrome so the sweep can skip the rare
    // aliases where two distinct pairs decode to the same syndrome (the
    // detector is *supposed* to read those as the same fault).
    let mut pairs = Vec::new();
    for i in 0..SMALL_WIDTH {
        for j in (i + 1)..SMALL_WIDTH {
            let Decode::Uncorrectable { syndrome } = double_flip(data, i, j) else {
                unreachable!()
            };
            pairs.push(((i, j), syndrome));
        }
    }
    let mut checked = 0u32;
    for (a, (pa, sa)) in pairs.iter().enumerate() {
        for (pb, sb) in pairs.iter().skip(a + 1) {
            if sa == sb {
                continue; // syndrome alias: indistinguishable from a repeat
            }
            let mut det = ThreatDetector::default();
            let key = (PacketId(3), 1);
            det.on_flit(key, &double_flip(data, pa.0, pa.1), None);
            let v = det.on_flit(key, &double_flip(data, pb.0, pb.1), None);
            assert_eq!(
                v.action,
                DetectorAction::RetransmitWithLob { attempt: 0 },
                "shift {pa:?} → {pb:?}"
            );
            assert!(!v.run_bist, "shifting syndromes are not a stuck wire");
            assert_eq!(det.classify(&key), FaultClass::HardwareTrojan);
            assert_eq!(det.link_class(), FaultClass::HardwareTrojan);
            checked += 1;
        }
    }
    // The sweep must not degenerate: syndrome aliases are the exception.
    assert!(checked > 5_000, "only {checked} distinguishable pairs");
}

/// Each further fault on an already-obfuscated retransmission climbs one
/// ladder rung: attempt numbers advance 0, 1, 2, … as the upstream keeps
/// reporting the rung it used.
#[test]
fn lob_ladder_advances_one_rung_per_obfuscated_failure() {
    let data = 0x5555_AAAA_5555_AAAA;
    let mut det = ThreatDetector::default();
    let key = (PacketId(4), 0);
    // Shift the fault position every round so syndromes keep moving
    // (positional SECDED: the double-flip syndrome is i ^ j, so pairs
    // like (0,1)/(2,3) alias — pick pairs with distinct xors).
    det.on_flit(key, &double_flip(data, 0, 1), None);
    let v = det.on_flit(key, &double_flip(data, 0, 2), None);
    assert_eq!(v.action, DetectorAction::RetransmitWithLob { attempt: 0 });
    for rung in 0..5u32 {
        let fault = double_flip(data, (rung as usize) % 8, 8 + rung as usize);
        let v = det.on_flit(key, &fault, Some((rung, 2)));
        assert_eq!(
            v.action,
            DetectorAction::RetransmitWithLob { attempt: rung + 1 },
            "rung {rung}"
        );
    }
    // The obfuscated flit finally crosses clean: accept with the undo
    // penalty and lock in the trojan classification.
    let v = det.on_flit(key, &Secded::decode(Secded::encode(data)), Some((5, 2)));
    assert_eq!(v.action, DetectorAction::AcceptObfuscated { penalty: 2 });
    assert_eq!(det.classify(&key), FaultClass::HardwareTrojan);
}

/// Book-keeping stays bounded and per-packet: forgetting a delivered
/// packet erases its classification without touching other packets.
#[test]
fn forget_packet_drops_only_that_packets_records() {
    let data = 0x1111_2222_3333_4444;
    let mut det = ThreatDetector::default();
    // (0,1) and (0,2) xor to distinct syndromes 1 and 2 — a real shift.
    det.on_flit((PacketId(1), 0), &double_flip(data, 0, 1), None);
    det.on_flit((PacketId(1), 0), &double_flip(data, 0, 2), None);
    det.on_flit((PacketId(2), 0), &double_flip(data, 4, 5), None);
    assert_eq!(det.classify(&(PacketId(1), 0)), FaultClass::HardwareTrojan);
    det.forget_packet(PacketId(1));
    assert_eq!(det.classify(&(PacketId(1), 0)), FaultClass::None);
    assert_eq!(det.classify(&(PacketId(2), 0)), FaultClass::Transient);
    assert_eq!(det.link_class(), FaultClass::Transient);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Randomized fault sequences over the small width: whatever the
    /// interleaving, (a) every uncorrectable fault draws exactly one
    /// retransmission, (b) any flit that faulted at two distinct
    /// syndromes classifies as a hardware trojan, (c) a flit whose
    /// faults all share one syndrome classifies permanent (absent a
    /// clean BIST), and (d) the link class is the worst per-flit class.
    #[test]
    fn random_fault_sequences_respect_the_classification_contract(
        seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rng = move |bound: usize| {
            // xorshift — deterministic in `seed`, no external RNG needed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        let data = 0xA5A5_5A5A_A5A5_5A5A;
        // Raise the history cap past `steps` so the reference model below
        // (which remembers everything) matches the detector exactly.
        let mut det = ThreatDetector::new(DetectorConfig {
            max_history: 64,
            ..DetectorConfig::default()
        });
        let mut seen: std::collections::HashMap<(u64, u8), Vec<u8>> =
            std::collections::HashMap::new();
        for _ in 0..steps {
            let key = (PacketId(1 + rng(3) as u64), rng(2) as u8);
            let i = rng(SMALL_WIDTH);
            let j = (i + 1 + rng(SMALL_WIDTH - 1)) % SMALL_WIDTH;
            let decode = double_flip(data, i.min(j), i.max(j));
            let Decode::Uncorrectable { syndrome } = decode else { unreachable!() };
            let v = det.on_flit(key, &decode, None);
            prop_assert!(matches!(
                v.action,
                DetectorAction::Retransmit | DetectorAction::RetransmitWithLob { .. }
            ));
            seen.entry((key.0 .0, key.1)).or_default().push(syndrome.0);
        }
        let total: usize = seen.values().map(Vec::len).sum();
        prop_assert_eq!(det.total_retransmissions(), total as u64);
        prop_assert_eq!(det.total_faults(), total as u64);
        let mut worst = FaultClass::None;
        for ((pid, seq), syndromes) in &seen {
            let expect = if syndromes.len() == 1 {
                FaultClass::Transient
            } else if syndromes.iter().all(|s| s == &syndromes[0]) {
                FaultClass::Permanent
            } else {
                FaultClass::HardwareTrojan
            };
            prop_assert_eq!(det.classify(&(PacketId(*pid), *seq)), expect);
            worst = match (worst, expect) {
                (FaultClass::HardwareTrojan, _) | (_, FaultClass::HardwareTrojan) => {
                    FaultClass::HardwareTrojan
                }
                (FaultClass::Permanent, _) | (_, FaultClass::Permanent) => FaultClass::Permanent,
                _ => FaultClass::Transient,
            };
        }
        prop_assert_eq!(det.link_class(), worst);
    }
}
