//! Round-trip property tests over the complete L-Ob repertoire: every
//! method × every granularity. The contract that keeps a DoS'd link
//! usable is two-sided —
//!
//! 1. **identity**: `undo(apply(word)) == word` for any word and key, so
//!    the receiver always recovers the flit the sender meant to send;
//! 2. **difference**: the word on the wire differs from the original
//!    (inside the window) whenever the method can change it at all, so
//!    the trojan's comparator no longer sees its trigger. `Reorder` is
//!    the deliberate exception — it shifts *when* the word crosses, not
//!    *what* crosses — and is pinned to the identity transform instead.
//!
//! Both sides are checked for every plan in the cross-product, not just
//! the escalation ladder, so adding a rung can never outrun the tests.

use noc_mitigation::{Granularity, LobPlan, ObfuscationMethod};
use proptest::prelude::*;

const GRANULARITIES: [Granularity; 3] =
    [Granularity::Full, Granularity::Header, Granularity::Payload];

/// Every method the repertoire contains, with rotation sampled across
/// small, window-sized, and wrapping shift amounts (k is reduced mod the
/// window width, so k=64 exercises the wrap on sub-64-bit windows).
fn methods() -> Vec<ObfuscationMethod> {
    let mut m = vec![
        ObfuscationMethod::Invert,
        ObfuscationMethod::Scramble,
        ObfuscationMethod::Reorder,
    ];
    for k in [1, 7, 13, 21, 29, 41, 63, 64, 255] {
        m.push(ObfuscationMethod::Rotate(k));
    }
    m
}

fn plans() -> Vec<LobPlan> {
    let mut out = Vec::new();
    for method in methods() {
        for granularity in GRANULARITIES {
            out.push(LobPlan {
                method,
                granularity,
            });
        }
    }
    out
}

/// Whether `plan` is able to alter `word` at all: rotations of a
/// rotation-symmetric window and scrambles with a zero key-window are
/// no-ops by construction, and `Reorder` never edits bits.
fn can_change(plan: LobPlan, word: u64, key: u64) -> bool {
    let mask = plan.granularity.mask();
    let (off, width) = plan.granularity.window();
    match plan.method {
        ObfuscationMethod::Invert => mask != 0,
        ObfuscationMethod::Scramble => key & mask != 0,
        ObfuscationMethod::Reorder => false,
        ObfuscationMethod::Rotate(k) => {
            let k = u32::from(k) % width;
            if k == 0 {
                return false;
            }
            let win = (word & mask) >> off;
            let rotated = ((win << k) | (win >> (width - k))) & (mask >> off);
            rotated != win
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Obfuscate → deobfuscate is the identity for every plan in the
    /// method × granularity cross-product, any word, any key.
    #[test]
    fn every_plan_roundtrips(word in any::<u64>(), key in any::<u64>()) {
        for plan in plans() {
            prop_assert_eq!(
                plan.undo(plan.apply(word, key), key),
                word,
                "round-trip broke for {}", plan.label()
            );
        }
    }

    /// The wire word differs from the original exactly when the method can
    /// change it — and all movement stays inside the granularity window.
    #[test]
    fn every_plan_disguises_the_word_within_its_window(
        word in any::<u64>(),
        key in any::<u64>(),
    ) {
        for plan in plans() {
            let obf = plan.apply(word, key);
            let mask = plan.granularity.mask();
            prop_assert_eq!(
                obf & !mask, word & !mask,
                "{} leaked outside its window", plan.label()
            );
            if can_change(plan, word, key) {
                prop_assert_ne!(
                    obf, word,
                    "{} left the trojan's trigger intact", plan.label()
                );
            } else {
                prop_assert_eq!(obf, word, "{} should be a no-op here", plan.label());
            }
        }
    }

    /// Applying with one key and undoing with another never silently
    /// round-trips for scramble: the key is load-bearing.
    #[test]
    fn scramble_requires_the_matching_key(word in any::<u64>(), key in any::<u64>()) {
        for granularity in GRANULARITIES {
            let plan = LobPlan { method: ObfuscationMethod::Scramble, granularity };
            let wrong = key ^ (1 << (plan.granularity.window().0 % 64));
            let obf = plan.apply(word, key);
            prop_assert_ne!(
                plan.undo(obf, wrong), word,
                "wrong partner word must not decode {}", plan.label()
            );
        }
    }
}

/// Deterministic spot-check: every ladder rung disguises the exact header
/// word a TASP comparator would be armed with (the paper's attack setup),
/// except the temporal `Reorder` rung.
#[test]
fn every_ladder_rung_breaks_a_header_comparator_match() {
    // A realistic header word: dense, asymmetric bit pattern.
    let target = 0x0000_03A7_1C45_9E21u64;
    for plan in LobPlan::LADDER {
        let obf = plan.apply(target, 0x5A5A_5A5A_5A5A_5A5A);
        assert_eq!(
            plan.undo(obf, 0x5A5A_5A5A_5A5A_5A5A),
            target,
            "{} must stay reversible",
            plan.label()
        );
        if matches!(plan.method, ObfuscationMethod::Reorder) {
            assert_eq!(obf, target, "reorder is temporal, not bitwise");
        } else {
            assert_ne!(
                obf & plan.granularity.mask(),
                target & plan.granularity.mask(),
                "{} failed to disguise the comparator target",
                plan.label()
            );
        }
    }
}

/// Labels round-trip for the full cross-product, so traces and replay
/// tooling can name any plan, not just ladder rungs.
#[test]
fn plan_labels_roundtrip_for_the_full_cross_product() {
    for plan in plans() {
        let label = plan.label();
        assert_eq!(
            LobPlan::from_label(&label),
            Some(plan),
            "label {label} did not parse back"
        );
    }
}
