//! L-Ob: switch-to-switch link obfuscation.
//!
//! Each obfuscation is a reversible transform of the 64-bit wire word,
//! restricted to a granularity window (full flit, header bits, or payload
//! bits). The upstream L-Ob applies the transform after a flit has drawn
//! repeated faults; the downstream L-Ob undoes it after a clean ECC decode.
//! Because the trojan's comparator reads the *transformed* word, a matching
//! target no longer matches and the trojan never fires — the link keeps
//! carrying traffic for a 1–3 cycle penalty instead of being abandoned to
//! rerouting.
//!
//! Methods (the paper's brute-force repertoire):
//!
//! * **Invert** — complement every bit in the window (zero hardware state).
//! * **Rotate** — barrel-rotate the window by a fixed amount (the paper's
//!   "shuffling/shifting").
//! * **Scramble** — XOR the window with a partner flit queued behind it
//!   (the walk-through's `(2+4)` pairing); undone once both flits arrive.
//! * **Reorder** — swap the victim flit's departure slot with a younger
//!   flit so the targeted word crosses the link at an unexpected time.
//!   Reorder changes *when*, not *what*, so it composes with the others.

use noc_types::header::HeaderLayout;

/// Bit window an obfuscation applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// All 64 wire bits.
    Full,
    /// The header window (the 42 bits a TASP comparator can watch).
    Header,
    /// Everything above the header window.
    Payload,
}

impl Granularity {
    /// `(offset, width)` of the window within the 64-bit word.
    #[inline]
    pub fn window(self) -> (u32, u32) {
        match self {
            Granularity::Full => (0, 64),
            Granularity::Header => (0, HeaderLayout::FULL_BITS),
            Granularity::Payload => (HeaderLayout::FULL_BITS, 64 - HeaderLayout::FULL_BITS),
        }
    }

    /// Mask of the window bits.
    #[inline]
    pub fn mask(self) -> u64 {
        let (off, w) = self.window();
        if w == 64 {
            u64::MAX
        } else {
            ((1u64 << w) - 1) << off
        }
    }
}

/// One reversible obfuscation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObfuscationMethod {
    /// Bitwise complement of the window.
    Invert,
    /// Rotate the window left by `k` bits (undo rotates right).
    Rotate(u8),
    /// XOR the window with the partner flit's word (key supplied at
    /// apply/undo time). Self-inverse given the same key.
    Scramble,
    /// Temporal reordering: the transform on the word itself is the
    /// identity; the queueing layer swaps departure slots.
    Reorder,
}

impl ObfuscationMethod {
    /// Receiver-side penalty in cycles for undoing this method, per the
    /// paper: invert/shuffle cost one cycle; scramble costs 1–2 while
    /// waiting for the partner flit (we charge the worst case).
    pub fn undo_penalty(self) -> u32 {
        match self {
            ObfuscationMethod::Invert | ObfuscationMethod::Rotate(_) => 1,
            ObfuscationMethod::Scramble => 2,
            ObfuscationMethod::Reorder => 1,
        }
    }
}

/// A fully specified obfuscation decision for one flit.
///
/// ```
/// use noc_mitigation::LobPlan;
///
/// let plan = LobPlan::LADDER[0]; // header-window inversion
/// let word = 0x0123_4567_89AB_CDEFu64;
/// let wire = plan.apply(word, 0);
/// assert_ne!(wire, word, "the trojan's comparator sees garbage");
/// assert_eq!(plan.undo(wire, 0), word, "the receiver recovers the flit");
/// assert!(plan.method.undo_penalty() <= 3, "within the paper's 1-3 cycles");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LobPlan {
    /// The transform to apply.
    pub method: ObfuscationMethod,
    /// The bit window it applies to.
    pub granularity: Granularity,
}

impl LobPlan {
    /// The escalation ladder: tried in order on successive retransmissions
    /// of the same flit until one crosses the link cleanly. Header-window
    /// methods come first (cheapest to undo and most likely to break a
    /// header-matching comparator); scramble and full-window methods follow.
    pub const LADDER: [LobPlan; 6] = [
        LobPlan {
            method: ObfuscationMethod::Invert,
            granularity: Granularity::Header,
        },
        LobPlan {
            method: ObfuscationMethod::Rotate(13),
            granularity: Granularity::Header,
        },
        LobPlan {
            method: ObfuscationMethod::Scramble,
            granularity: Granularity::Full,
        },
        LobPlan {
            method: ObfuscationMethod::Invert,
            granularity: Granularity::Full,
        },
        LobPlan {
            method: ObfuscationMethod::Rotate(29),
            granularity: Granularity::Full,
        },
        LobPlan {
            method: ObfuscationMethod::Reorder,
            granularity: Granularity::Full,
        },
    ];

    /// Stable machine-readable label, `method:granularity` (e.g.
    /// `rotate13:header`) — used by the trace JSONL schema.
    pub fn label(self) -> String {
        let method = match self.method {
            ObfuscationMethod::Invert => "invert".to_string(),
            ObfuscationMethod::Rotate(k) => format!("rotate{k}"),
            ObfuscationMethod::Scramble => "scramble".to_string(),
            ObfuscationMethod::Reorder => "reorder".to_string(),
        };
        let gran = match self.granularity {
            Granularity::Full => "full",
            Granularity::Header => "header",
            Granularity::Payload => "payload",
        };
        format!("{method}:{gran}")
    }

    /// Parse a [`LobPlan::label`] back.
    pub fn from_label(s: &str) -> Option<LobPlan> {
        let (method, gran) = s.split_once(':')?;
        let method = match method {
            "invert" => ObfuscationMethod::Invert,
            "scramble" => ObfuscationMethod::Scramble,
            "reorder" => ObfuscationMethod::Reorder,
            _ => ObfuscationMethod::Rotate(method.strip_prefix("rotate")?.parse().ok()?),
        };
        let granularity = match gran {
            "full" => Granularity::Full,
            "header" => Granularity::Header,
            "payload" => Granularity::Payload,
            _ => return None,
        };
        Some(LobPlan {
            method,
            granularity,
        })
    }

    /// Apply the transform. `key` is the partner word for `Scramble` and is
    /// ignored otherwise.
    pub fn apply(self, word: u64, key: u64) -> u64 {
        transform(word, self, key, false)
    }

    /// Undo the transform (same `key` for `Scramble`).
    pub fn undo(self, word: u64, key: u64) -> u64 {
        transform(word, self, key, true)
    }
}

/// Rotate `width` bits of `value` left (or right when `inverse`) by `k`.
fn rotate_window(value: u64, off: u32, width: u32, k: u32, inverse: bool) -> u64 {
    debug_assert!(width >= 1 && off + width <= 64);
    let k = k % width;
    if k == 0 || width == 1 {
        return value;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << off
    };
    let win = (value & mask) >> off;
    let k = if inverse { width - k } else { k };
    let rotated = ((win << k) | (win >> (width - k)))
        & (if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        });
    (value & !mask) | (rotated << off)
}

fn transform(word: u64, plan: LobPlan, key: u64, inverse: bool) -> u64 {
    let mask = plan.granularity.mask();
    let (off, width) = plan.granularity.window();
    match plan.method {
        ObfuscationMethod::Invert => word ^ mask,
        ObfuscationMethod::Rotate(k) => rotate_window(word, off, width, k as u32, inverse),
        ObfuscationMethod::Scramble => word ^ (key & mask),
        ObfuscationMethod::Reorder => word,
    }
}

/// Per-output-port L-Ob controller: chooses the next method for a flit that
/// keeps faulting and remembers which method last succeeded on this link so
/// similar flits skip straight to it (the paper's method log).
#[derive(Debug, Clone, Default)]
pub struct LobModule {
    /// The last plan that crossed this link cleanly (any plan, ladder or
    /// custom).
    logged: Option<LobPlan>,
    /// Methods attempted since the last success (diagnostics).
    attempts: u64,
    successes: u64,
}

impl LobModule {
    /// A fresh controller with an empty method log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Choose the plan for the `attempt`-th obfuscated retransmission of a
    /// flit (0-based). If a method previously succeeded on this link, start
    /// there; otherwise walk the ladder.
    pub fn plan_for_attempt(&self, attempt: usize) -> LobPlan {
        let base = self
            .logged
            .and_then(|p| LobPlan::LADDER.iter().position(|l| *l == p))
            .unwrap_or(0);
        LobPlan::LADDER[(base + attempt) % LobPlan::LADDER.len()]
    }

    /// Record that `plan` crossed the link without triggering a fault. The
    /// downstream router reports this after a clean decode of an obfuscated
    /// flit; future escalations start from the winning rung.
    pub fn log_success(&mut self, plan: LobPlan) {
        self.logged = Some(plan);
        self.successes += 1;
    }

    /// Record an attempt (for statistics).
    pub fn log_attempt(&mut self) {
        self.attempts += 1;
    }

    /// Attempts made since construction.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Clean crossings logged.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// The method currently logged as working on this link, if any.
    pub fn logged_plan(&self) -> Option<LobPlan> {
        self.logged
    }

    /// Restore the runtime state captured from another module via
    /// [`LobModule::logged_plan`], [`LobModule::attempts`] and
    /// [`LobModule::successes`] (checkpoint/restore support).
    pub fn restore(&mut self, logged: Option<LobPlan>, attempts: u64, successes: u64) {
        self.logged = logged;
        self.attempts = attempts;
        self.successes = successes;
    }

    /// What the successful granularity says about the trojan's trigger —
    /// "changing the granularity within the packet could allow us to
    /// identify the triggering mechanism" (§IV-A). A header-window method
    /// succeeding pins the comparator to the header; a payload-window
    /// success pins it to payload bits; full-window successes don't narrow
    /// the scope.
    pub fn inferred_trigger_scope(&self) -> TriggerScope {
        match self.logged_plan() {
            Some(LobPlan {
                granularity: Granularity::Header,
                ..
            }) => TriggerScope::Header,
            Some(LobPlan {
                granularity: Granularity::Payload,
                ..
            }) => TriggerScope::Payload,
            Some(_) => TriggerScope::Unknown,
            None => TriggerScope::Unknown,
        }
    }
}

/// The part of the flit a trojan's trigger has been narrowed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerScope {
    /// The comparator keys on header bits (src/dest/vc/mem).
    Header,
    /// The trigger keys on payload bits.
    Payload,
    /// Not yet narrowed (no success, or only a full-window method worked).
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn windows_tile_the_word() {
        assert_eq!(
            Granularity::Header.mask() | Granularity::Payload.mask(),
            Granularity::Full.mask()
        );
        assert_eq!(Granularity::Header.mask() & Granularity::Payload.mask(), 0);
    }

    #[test]
    fn invert_is_self_inverse_and_confined_to_window() {
        let w = 0x0123_4567_89AB_CDEF;
        for g in [Granularity::Full, Granularity::Header, Granularity::Payload] {
            let plan = LobPlan {
                method: ObfuscationMethod::Invert,
                granularity: g,
            };
            let obf = plan.apply(w, 0);
            assert_eq!(plan.undo(obf, 0), w);
            assert_eq!(obf & !g.mask(), w & !g.mask(), "bits outside window moved");
            assert_ne!(obf & g.mask(), w & g.mask());
        }
    }

    #[test]
    fn rotate_undo_restores_word() {
        let w = 0xFEDC_BA98_7654_3210;
        for k in [1u8, 13, 29, 41, 63] {
            for g in [Granularity::Full, Granularity::Header, Granularity::Payload] {
                let plan = LobPlan {
                    method: ObfuscationMethod::Rotate(k),
                    granularity: g,
                };
                assert_eq!(plan.undo(plan.apply(w, 0), 0), w, "k={k} g={g:?}");
            }
        }
    }

    #[test]
    fn scramble_is_keyed_xor() {
        let w = 0x1111_2222_3333_4444;
        let key = 0xAAAA_BBBB_CCCC_DDDD;
        let plan = LobPlan {
            method: ObfuscationMethod::Scramble,
            granularity: Granularity::Full,
        };
        let obf = plan.apply(w, key);
        assert_eq!(obf, w ^ key);
        assert_eq!(plan.undo(obf, key), w);
        // Wrong key does not restore.
        assert_ne!(plan.undo(obf, key ^ 1), w);
    }

    #[test]
    fn reorder_leaves_word_untouched() {
        let plan = LobPlan {
            method: ObfuscationMethod::Reorder,
            granularity: Granularity::Full,
        };
        assert_eq!(plan.apply(42, 99), 42);
    }

    #[test]
    fn penalties_match_paper_budget() {
        // All within the paper's quoted 1–3 cycle band.
        for plan in LobPlan::LADDER {
            let p = plan.method.undo_penalty();
            assert!((1..=3).contains(&p));
        }
    }

    #[test]
    fn ladder_escalates_and_wraps() {
        let lob = LobModule::new();
        assert_eq!(lob.plan_for_attempt(0), LobPlan::LADDER[0]);
        assert_eq!(lob.plan_for_attempt(5), LobPlan::LADDER[5]);
        assert_eq!(lob.plan_for_attempt(6), LobPlan::LADDER[0]);
    }

    #[test]
    fn trigger_scope_inference_follows_the_winning_granularity() {
        let mut lob = LobModule::new();
        assert_eq!(lob.inferred_trigger_scope(), TriggerScope::Unknown);
        // A header-window success pins the trigger to the header.
        lob.log_success(LobPlan::LADDER[0]);
        assert_eq!(lob.inferred_trigger_scope(), TriggerScope::Header);
        // A later full-window success widens the scope back to unknown.
        lob.log_success(LobPlan::LADDER[3]);
        assert_eq!(lob.inferred_trigger_scope(), TriggerScope::Unknown);
        // A payload-window success pins it to the payload.
        lob.log_success(LobPlan {
            method: ObfuscationMethod::Invert,
            granularity: Granularity::Payload,
        });
        assert_eq!(lob.inferred_trigger_scope(), TriggerScope::Payload);
    }

    #[test]
    fn success_log_fast_paths_future_attempts() {
        let mut lob = LobModule::new();
        lob.log_success(LobPlan::LADDER[2]);
        assert_eq!(lob.plan_for_attempt(0), LobPlan::LADDER[2]);
        assert_eq!(lob.plan_for_attempt(1), LobPlan::LADDER[3]);
        assert_eq!(lob.logged_plan(), Some(LobPlan::LADDER[2]));
        assert_eq!(lob.successes(), 1);
    }

    proptest! {
        #[test]
        fn every_ladder_plan_roundtrips(word in any::<u64>(), key in any::<u64>(),
                                        idx in 0usize..LobPlan::LADDER.len()) {
            let plan = LobPlan::LADDER[idx];
            prop_assert_eq!(plan.undo(plan.apply(word, key), key), word);
        }

        #[test]
        fn rotate_any_k_roundtrips(word in any::<u64>(), k in any::<u8>()) {
            for g in [Granularity::Full, Granularity::Header, Granularity::Payload] {
                let plan = LobPlan { method: ObfuscationMethod::Rotate(k), granularity: g };
                prop_assert_eq!(plan.undo(plan.apply(word, 0), 0), word);
            }
        }

        #[test]
        fn header_window_methods_keep_payload_bits(word in any::<u64>(), key in any::<u64>()) {
            for m in [ObfuscationMethod::Invert, ObfuscationMethod::Rotate(7),
                      ObfuscationMethod::Scramble] {
                let plan = LobPlan { method: m, granularity: Granularity::Header };
                let obf = plan.apply(word, key);
                prop_assert_eq!(obf & !Granularity::Header.mask(),
                                word & !Granularity::Header.mask());
            }
        }
    }
}
