//! Threat detection and switch-to-switch link obfuscation (the paper's
//! proposed mitigation).
//!
//! Three cooperating pieces:
//!
//! * [`lob`] — the **L-Ob** module attached to each output port's
//!   retransmission buffers. It obfuscates flits *before* they re-cross a
//!   suspicious link (invert / rotate-shuffle / scramble-with-partner /
//!   reorder, at full-flit, header, or payload granularity) so a deep-packet-
//!   inspection trojan no longer recognises its target, and un-obfuscates on
//!   the receiving side for a 1–3 cycle penalty. A per-link method log
//!   remembers what worked.
//! * [`detector`] — the **threat source detector** on each input port. It
//!   fingerprints every ECC event (syndrome + packet signature), decides
//!   whether a fault is fresh or a repeat, escalates repeats to L-Ob, asks
//!   BIST to rule out permanent faults, and classifies the fault source as
//!   transient, permanent, or hardware trojan (Fig. 6).
//! * [`bist`] — a built-in self-test that drives known patterns across a
//!   link to find stuck-at wires. A link that keeps faulting under traffic
//!   but passes BIST cleanly is the trojan's tell.

pub mod bist;
pub mod detector;
pub mod lob;

pub use bist::{Bist, BistReport, LinkUnderTest};
pub use detector::{
    DetectorAction, DetectorConfig, DetectorState, FaultClass, FaultRecordState, ThreatDetector,
    Verdict,
};
pub use lob::{Granularity, LobModule, LobPlan, ObfuscationMethod, TriggerScope};
