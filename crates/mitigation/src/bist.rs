//! Built-in self-test for link wires.
//!
//! When the threat detector sees the *same* fault recur it cannot yet tell a
//! stuck-at wire from a trojan holding its payload state. BIST settles the
//! question: it drives known patterns (all-zeros, all-ones, alternating,
//! and a walking-one) across the raw 72-bit wire bundle and compares what
//! arrives. A stuck-at wire corrupts patterns deterministically; a TASP
//! trojan stays silent because BIST patterns never contain its target (and
//! during post-silicon test its kill switch is off anyway). A link that
//! faults under traffic but passes BIST is therefore trojan-infected.

use noc_ecc::{Codeword, CODEWORD_BITS};

/// Abstraction over "push one raw codeword across the physical link".
/// The simulator implements this for its fault-layer links.
pub trait LinkUnderTest {
    /// Push one raw codeword across the physical wires.
    fn transmit(&mut self, cw: Codeword) -> Codeword;
}

/// Stuck-at polarity of a faulty wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckAt {
    /// Wire reads 0 regardless of the driven value.
    Zero,
    /// Wire reads 1 regardless of the driven value.
    One,
}

/// Result of one BIST scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistReport {
    /// Wires observed stuck, with polarity.
    pub stuck_wires: Vec<(u8, StuckAt)>,
    /// Wires that flipped inconsistently (neither healthy nor stuck) —
    /// intermittent contact or an active injector.
    pub flaky_wires: Vec<u8>,
    /// Number of test patterns driven.
    pub patterns: u32,
}

impl BistReport {
    /// The link is physically healthy (which, after recurring traffic
    /// faults, is the hardware-trojan tell).
    pub fn passed(&self) -> bool {
        self.stuck_wires.is_empty() && self.flaky_wires.is_empty()
    }
}

/// The BIST engine. Stateless; `scan` drives the full pattern set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bist;

impl Bist {
    /// Patterns: all-zeros, all-ones, 0x55…, 0xAA…, then a walking one.
    /// Every wire is exercised at both polarities.
    pub fn scan<L: LinkUnderTest>(link: &mut L) -> BistReport {
        let mask = Codeword::MASK;
        let mut always_one = mask; // wires that read 1 on every pattern
        let mut always_zero = mask; // wires that read 0 on every pattern
        let mut ever_wrong = 0u128; // wires that ever differed from driven
        let mut patterns = 0u32;

        let mut drive = |link: &mut L, pat: u128| {
            let got = link.transmit(Codeword(pat & mask)).0 & mask;
            always_one &= got;
            always_zero &= !got;
            ever_wrong |= got ^ (pat & mask);
        };

        let alternating_a = {
            let mut p = 0u128;
            let mut i = 0;
            while i < CODEWORD_BITS {
                if i % 2 == 0 {
                    p |= 1 << i;
                }
                i += 1;
            }
            p
        };
        for pat in [0u128, mask, alternating_a, !alternating_a & mask] {
            drive(link, pat);
            patterns += 1;
        }
        for i in 0..CODEWORD_BITS {
            drive(link, 1u128 << i);
            patterns += 1;
        }

        let mut stuck_wires = Vec::new();
        let mut flaky_wires = Vec::new();
        for w in 0..CODEWORD_BITS as u8 {
            let bit = 1u128 << w;
            if always_one & bit != 0 {
                stuck_wires.push((w, StuckAt::One));
            } else if always_zero & bit != 0 {
                stuck_wires.push((w, StuckAt::Zero));
            } else if ever_wrong & bit != 0 {
                flaky_wires.push(w);
            }
        }
        BistReport {
            stuck_wires,
            flaky_wires,
            patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A healthy link.
    struct Healthy;
    impl LinkUnderTest for Healthy {
        fn transmit(&mut self, cw: Codeword) -> Codeword {
            cw
        }
    }

    /// A link with configured stuck-at wires.
    struct Stuck {
        stuck_one: u128,
        stuck_zero: u128,
    }
    impl LinkUnderTest for Stuck {
        fn transmit(&mut self, cw: Codeword) -> Codeword {
            Codeword((cw.0 | self.stuck_one) & !self.stuck_zero)
        }
    }

    /// A link that flips one wire on every other transmission.
    struct Intermittent {
        n: u32,
    }
    impl LinkUnderTest for Intermittent {
        fn transmit(&mut self, cw: Codeword) -> Codeword {
            self.n += 1;
            if self.n.is_multiple_of(2) {
                Codeword(cw.0 ^ (1 << 17))
            } else {
                cw
            }
        }
    }

    #[test]
    fn healthy_link_passes() {
        let report = Bist::scan(&mut Healthy);
        assert!(report.passed());
        assert_eq!(report.patterns, 4 + CODEWORD_BITS as u32);
    }

    #[test]
    fn stuck_at_one_is_located() {
        let mut link = Stuck {
            stuck_one: 1 << 5,
            stuck_zero: 0,
        };
        let report = Bist::scan(&mut link);
        assert_eq!(report.stuck_wires, vec![(5, StuckAt::One)]);
        assert!(!report.passed());
    }

    #[test]
    fn stuck_at_zero_is_located() {
        let mut link = Stuck {
            stuck_one: 0,
            stuck_zero: 1 << 70,
        };
        let report = Bist::scan(&mut link);
        assert_eq!(report.stuck_wires, vec![(70, StuckAt::Zero)]);
    }

    #[test]
    fn multiple_stuck_wires_all_found() {
        let mut link = Stuck {
            stuck_one: (1 << 3) | (1 << 40),
            stuck_zero: 1 << 12,
        };
        let report = Bist::scan(&mut link);
        assert_eq!(
            report.stuck_wires,
            vec![(3, StuckAt::One), (12, StuckAt::Zero), (40, StuckAt::One)]
        );
    }

    #[test]
    fn intermittent_wire_reported_flaky_not_stuck() {
        let report = Bist::scan(&mut Intermittent { n: 0 });
        assert!(report.stuck_wires.is_empty());
        assert_eq!(report.flaky_wires, vec![17]);
        assert!(!report.passed());
    }
}
