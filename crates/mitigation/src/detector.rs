//! The threat source detector (Fig. 6).
//!
//! One detector guards each router input port (i.e. one incoming link). For
//! every arriving flit it receives the ECC decode outcome plus the side-band
//! facts the receiving router knows (was this flit obfuscated? which plan?),
//! fingerprints faults by packet signature and syndrome, and decides:
//!
//! * first fault on a flit → plain retransmission (could be a transient);
//! * repeat fault at the **same** syndrome → ask BIST to scan for a
//!   permanent (stuck-at) fault — repeated identical transients are
//!   implausible;
//! * repeat fault on the **same flit** at shifting syndromes → the TASP
//!   signature: enable L-Ob on the upstream retransmission, escalating
//!   through the method ladder on each further failure;
//! * clean arrival of an obfuscated flit → stall to undo the obfuscation
//!   and notify the upstream router so it logs the winning method.
//!
//! The detector also maintains a per-link *classification* (transient /
//! permanent / hardware-trojan) that the routing layer uses to decide
//! between continuing with L-Ob and abandoning the link.

use noc_ecc::{Decode, Syndrome};
use noc_types::ids::PacketId;
use std::collections::HashMap;

/// Detector tuning knobs (ablation targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Identical-syndrome repeats on one flit before BIST is invoked.
    pub bist_threshold: u32,
    /// Faults on one flit before L-Ob is enabled for its retransmissions.
    /// The paper's walk-through escalates on the second targeting (Fig. 7
    /// step g), i.e. a threshold of 2.
    pub lob_threshold: u32,
    /// Cap on recorded per-flit syndromes (bounded memory).
    pub max_history: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            bist_threshold: 2,
            lob_threshold: 2,
            max_history: 8,
        }
    }
}

/// What the receiving router must do with the flit that just arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorAction {
    /// Clean, un-obfuscated: deliver normally.
    Accept,
    /// Clean and obfuscated: stall `penalty` cycles to undo, deliver, and
    /// notify the upstream L-Ob of success.
    AcceptObfuscated {
        /// Undo stall in cycles.
        penalty: u32,
    },
    /// Uncorrectable fault, first sighting: NACK for plain retransmission.
    Retransmit,
    /// Uncorrectable repeat: NACK and tell upstream to (re-)obfuscate with
    /// ladder attempt number `attempt` (0 = first obfuscated try).
    RetransmitWithLob {
        /// Ladder attempt number for the retry.
        attempt: u32,
    },
}

/// Full verdict: the action plus whether a BIST scan should be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// The action the receiving router must take.
    pub action: DetectorAction,
    /// Whether a BIST scan of the link should be scheduled.
    pub run_bist: bool,
}

/// The detector's best current explanation for a link's faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// No faults observed.
    None,
    /// Isolated faults that did not recur.
    Transient,
    /// Identical faults recurring — stuck-at wire (subject to BIST
    /// confirmation).
    Permanent,
    /// Recurring faults at shifting positions that stop under obfuscation —
    /// a data-dependent injector, i.e. a hardware trojan.
    HardwareTrojan,
}

impl FaultClass {
    /// Stable machine-readable label (used by the trace JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Transient => "transient",
            FaultClass::Permanent => "permanent",
            FaultClass::HardwareTrojan => "hardware_trojan",
        }
    }

    /// Parse a [`FaultClass::label`] back.
    pub fn from_label(s: &str) -> Option<FaultClass> {
        match s {
            "none" => Some(FaultClass::None),
            "transient" => Some(FaultClass::Transient),
            "permanent" => Some(FaultClass::Permanent),
            "hardware_trojan" => Some(FaultClass::HardwareTrojan),
            _ => None,
        }
    }
}

/// Identity of a flit for fault bookkeeping: the packet signature plus the
/// flit's sequence inside it (the detector records "the packet's source,
/// destination, vc, requested memory address" — `PacketId` stands in for
/// that tuple here, with the full header retained in [`FaultRecord`]).
pub type FlitKey = (PacketId, u8);

#[derive(Debug, Clone, Default)]
struct FaultRecord {
    faults: u32,
    syndromes: Vec<u8>,
    /// Obfuscated retransmissions attempted so far.
    obf_attempts: u32,
    /// The flit eventually crossed cleanly while obfuscated.
    clean_after_obf: bool,
}

/// Externalised [`FaultRecord`] contents (checkpoint/restore support).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultRecordState {
    /// Uncorrectable faults recorded for the flit.
    pub faults: u32,
    /// Recorded syndromes, in arrival order.
    pub syndromes: Vec<u8>,
    /// Obfuscated retransmissions attempted so far.
    pub obf_attempts: u32,
    /// The flit eventually crossed cleanly while obfuscated.
    pub clean_after_obf: bool,
}

/// Externalised [`ThreatDetector`] runtime state (checkpoint/restore
/// support). Records are sorted by key so the export is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorState {
    /// Per-flit fault records, sorted by key.
    pub records: Vec<(FlitKey, FaultRecordState)>,
    /// Total uncorrectable faults seen on the guarded link.
    pub total_faults: u64,
    /// Total retransmissions requested.
    pub total_retransmissions: u64,
    /// BIST scans requested.
    pub bist_requests: u64,
    /// Obfuscation escalations requested.
    pub lob_escalations: u64,
    /// Outcome of the most recent BIST scan of the guarded link.
    pub bist_passed: Option<bool>,
}

/// Per-input-port threat source detector.
///
/// ```
/// use noc_ecc::{Decode, Syndrome};
/// use noc_mitigation::{DetectorAction, FaultClass, ThreatDetector};
/// use noc_types::PacketId;
///
/// let mut det = ThreatDetector::default();
/// let key = (PacketId(7), 0);
/// let fault = |s| Decode::Uncorrectable { syndrome: Syndrome(s) };
///
/// // First fault: plain retransmission (could be a transient).
/// let v = det.on_flit(key, &fault(12), None);
/// assert_eq!(v.action, DetectorAction::Retransmit);
///
/// // Repeat at a *shifting* position: the TASP signature — obfuscate.
/// let v = det.on_flit(key, &fault(34), None);
/// assert_eq!(v.action, DetectorAction::RetransmitWithLob { attempt: 0 });
/// assert_eq!(det.classify(&key), FaultClass::HardwareTrojan);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThreatDetector {
    config: DetectorConfig,
    records: HashMap<FlitKey, FaultRecord>,
    // Link-level aggregates.
    total_faults: u64,
    total_retransmissions: u64,
    bist_requests: u64,
    lob_escalations: u64,
    /// Outcome of the most recent BIST scan of the guarded link.
    bist_passed: Option<bool>,
}

impl ThreatDetector {
    /// Construct a detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Process one arriving flit.
    ///
    /// * `key` — packet signature + flit sequence.
    /// * `decode` — the link ECC decode outcome.
    /// * `obf_attempt` — `Some(n)` when the upstream router sent this flit
    ///   obfuscated with ladder attempt `n`, together with the undo penalty.
    pub fn on_flit(
        &mut self,
        key: FlitKey,
        decode: &Decode,
        obf_attempt: Option<(u32, u32)>,
    ) -> Verdict {
        match decode {
            Decode::Clean { .. } | Decode::Corrected { .. } => {
                // A corrected single-bit error is logged (it still costs
                // energy and may be an HT probing) but passes through.
                if let Decode::Corrected { syndrome, .. } = decode {
                    self.note_corrected(key, *syndrome);
                }
                if let Some((_, penalty)) = obf_attempt {
                    if let Some(rec) = self.records.get_mut(&key) {
                        rec.clean_after_obf = true;
                    }
                    Verdict {
                        action: DetectorAction::AcceptObfuscated { penalty },
                        run_bist: false,
                    }
                } else {
                    Verdict {
                        action: DetectorAction::Accept,
                        run_bist: false,
                    }
                }
            }
            Decode::Uncorrectable { syndrome } => self.on_fault(key, *syndrome, obf_attempt),
        }
    }

    fn note_corrected(&mut self, key: FlitKey, syndrome: Syndrome) {
        let rec = self.records.entry(key).or_default();
        if rec.syndromes.len() < self.config.max_history {
            rec.syndromes.push(syndrome.0);
        }
    }

    fn on_fault(
        &mut self,
        key: FlitKey,
        syndrome: Syndrome,
        obf_attempt: Option<(u32, u32)>,
    ) -> Verdict {
        self.total_faults += 1;
        self.total_retransmissions += 1;
        let max_history = self.config.max_history;
        let rec = self.records.entry(key).or_default();
        rec.faults += 1;
        let repeat_same_syndrome = rec.syndromes.iter().filter(|s| **s == syndrome.0).count() + 1;
        if rec.syndromes.len() < max_history {
            rec.syndromes.push(syndrome.0);
        }
        if let Some((attempt, _)) = obf_attempt {
            rec.obf_attempts = rec.obf_attempts.max(attempt + 1);
        }

        // Repeated identical syndromes are not plausible transients: have
        // BIST look for a stuck-at wire.
        let run_bist = repeat_same_syndrome >= self.config.bist_threshold as usize;
        if run_bist {
            self.bist_requests += 1;
        }

        let action = if rec.faults >= self.config.lob_threshold {
            // Repeat offender: obfuscate the retransmission. If it was
            // already obfuscated, move to the next ladder rung.
            let attempt = rec.obf_attempts;
            self.lob_escalations += 1;
            DetectorAction::RetransmitWithLob { attempt }
        } else {
            DetectorAction::Retransmit
        };
        Verdict { action, run_bist }
    }

    /// Feed back a BIST result for the guarded link: a clean BIST rules out
    /// permanent faults and strengthens the HT hypothesis.
    pub fn on_bist_result(&mut self, passed: bool) {
        self.bist_passed = Some(passed);
    }

    /// Classify the fault source for a specific flit signature.
    pub fn classify(&self, key: &FlitKey) -> FaultClass {
        let Some(rec) = self.records.get(key) else {
            return FaultClass::None;
        };
        if rec.faults == 0 {
            return FaultClass::None;
        }
        if rec.faults == 1 {
            return FaultClass::Transient;
        }
        let all_same = rec.syndromes.windows(2).all(|w| w[0] == w[1]);
        if all_same && self.bist_passed != Some(true) {
            return FaultClass::Permanent;
        }
        if rec.clean_after_obf || self.bist_passed == Some(true) {
            return FaultClass::HardwareTrojan;
        }
        // Shifting syndromes but no obfuscation evidence yet: the best
        // guess is already "trojan-like", pending confirmation.
        FaultClass::HardwareTrojan
    }

    /// Classify the link overall: the most severe class over all records.
    pub fn link_class(&self) -> FaultClass {
        let mut best = FaultClass::None;
        for key in self.records.keys() {
            let c = self.classify(key);
            best = match (best, c) {
                (_, FaultClass::HardwareTrojan) | (FaultClass::HardwareTrojan, _) => {
                    FaultClass::HardwareTrojan
                }
                (_, FaultClass::Permanent) | (FaultClass::Permanent, _) => FaultClass::Permanent,
                (_, FaultClass::Transient) | (FaultClass::Transient, _) => FaultClass::Transient,
                _ => FaultClass::None,
            };
        }
        best
    }

    /// Total uncorrectable faults seen on the guarded link.
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    /// Total retransmissions requested.
    pub fn total_retransmissions(&self) -> u64 {
        self.total_retransmissions
    }

    /// BIST scans requested.
    pub fn bist_requests(&self) -> u64 {
        self.bist_requests
    }

    /// Obfuscation escalations requested.
    pub fn lob_escalations(&self) -> u64 {
        self.lob_escalations
    }

    /// Drop bookkeeping for a delivered packet (bounded memory in long runs).
    pub fn forget_packet(&mut self, packet: PacketId) {
        self.records.retain(|(p, _), _| *p != packet);
    }

    /// Export the runtime state for checkpointing. Records are sorted by
    /// key so the export is byte-stable regardless of hash-map iteration
    /// order.
    pub fn export_state(&self) -> DetectorState {
        let mut records: Vec<(FlitKey, FaultRecordState)> = self
            .records
            .iter()
            .map(|(k, r)| {
                (
                    *k,
                    FaultRecordState {
                        faults: r.faults,
                        syndromes: r.syndromes.clone(),
                        obf_attempts: r.obf_attempts,
                        clean_after_obf: r.clean_after_obf,
                    },
                )
            })
            .collect();
        records.sort_unstable_by_key(|(k, _)| *k);
        DetectorState {
            records,
            total_faults: self.total_faults,
            total_retransmissions: self.total_retransmissions,
            bist_requests: self.bist_requests,
            lob_escalations: self.lob_escalations,
            bist_passed: self.bist_passed,
        }
    }

    /// Restore runtime state captured by [`ThreatDetector::export_state`].
    /// The detector keeps its current configuration — thresholds are not
    /// part of the runtime state.
    pub fn import_state(&mut self, state: DetectorState) {
        self.records = state
            .records
            .into_iter()
            .map(|(k, r)| {
                (
                    k,
                    FaultRecord {
                        faults: r.faults,
                        syndromes: r.syndromes,
                        obf_attempts: r.obf_attempts,
                        clean_after_obf: r.clean_after_obf,
                    },
                )
            })
            .collect();
        self.total_faults = state.total_faults;
        self.total_retransmissions = state.total_retransmissions;
        self.bist_requests = state.bist_requests;
        self.lob_escalations = state.lob_escalations;
        self.bist_passed = state.bist_passed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ecc::Syndrome;

    fn fault(s: u8) -> Decode {
        Decode::Uncorrectable {
            syndrome: Syndrome(s),
        }
    }

    fn clean() -> Decode {
        Decode::Clean { data: 0 }
    }

    const KEY: FlitKey = (PacketId(7), 0);

    #[test]
    fn first_fault_retransmits_plainly() {
        let mut d = ThreatDetector::default();
        let v = d.on_flit(KEY, &fault(12), None);
        assert_eq!(v.action, DetectorAction::Retransmit);
        assert!(!v.run_bist);
        assert_eq!(d.classify(&KEY), FaultClass::Transient);
    }

    #[test]
    fn second_fault_enables_lob() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(12), None);
        let v = d.on_flit(KEY, &fault(34), None);
        assert_eq!(v.action, DetectorAction::RetransmitWithLob { attempt: 0 });
    }

    #[test]
    fn repeated_same_syndrome_triggers_bist_and_permanent_class() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(12), None);
        let v = d.on_flit(KEY, &fault(12), None);
        assert!(v.run_bist, "identical repeat fault must schedule BIST");
        assert_eq!(d.classify(&KEY), FaultClass::Permanent);
    }

    #[test]
    fn shifting_syndromes_classify_as_trojan() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(12), None);
        let v = d.on_flit(KEY, &fault(56), None);
        assert!(!v.run_bist, "shifting syndrome is not a stuck-at suspect");
        assert_eq!(d.classify(&KEY), FaultClass::HardwareTrojan);
    }

    #[test]
    fn obfuscated_fault_escalates_to_next_method() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(1), None);
        d.on_flit(KEY, &fault(2), None); // → lob attempt 0
        let v = d.on_flit(KEY, &fault(3), Some((0, 1)));
        assert_eq!(v.action, DetectorAction::RetransmitWithLob { attempt: 1 });
    }

    #[test]
    fn clean_obfuscated_arrival_pays_undo_penalty_and_confirms_trojan() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(1), None);
        d.on_flit(KEY, &fault(2), None);
        let v = d.on_flit(KEY, &clean(), Some((0, 2)));
        assert_eq!(v.action, DetectorAction::AcceptObfuscated { penalty: 2 });
        assert_eq!(d.classify(&KEY), FaultClass::HardwareTrojan);
        assert_eq!(d.link_class(), FaultClass::HardwareTrojan);
    }

    #[test]
    fn clean_unobfuscated_flits_pass_untouched() {
        let mut d = ThreatDetector::default();
        let v = d.on_flit(KEY, &clean(), None);
        assert_eq!(v.action, DetectorAction::Accept);
        assert_eq!(d.classify(&KEY), FaultClass::None);
    }

    #[test]
    fn bist_pass_converts_permanent_suspicion_into_trojan() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(12), None);
        d.on_flit(KEY, &fault(12), None);
        assert_eq!(d.classify(&KEY), FaultClass::Permanent);
        d.on_bist_result(true); // link physically healthy
        assert_eq!(d.classify(&KEY), FaultClass::HardwareTrojan);
    }

    #[test]
    fn corrected_single_bit_errors_are_logged_but_accepted() {
        let mut d = ThreatDetector::default();
        let v = d.on_flit(
            KEY,
            &Decode::Corrected {
                data: 0,
                bit: 3,
                syndrome: Syndrome(3),
            },
            None,
        );
        assert_eq!(v.action, DetectorAction::Accept);
        assert_eq!(d.total_faults(), 0);
    }

    #[test]
    fn forget_packet_releases_history() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(9), None);
        d.forget_packet(PacketId(7));
        assert_eq!(d.classify(&KEY), FaultClass::None);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = ThreatDetector::default();
        d.on_flit(KEY, &fault(1), None);
        d.on_flit(KEY, &fault(2), None);
        d.on_flit(KEY, &fault(2), None);
        assert_eq!(d.total_faults(), 3);
        assert_eq!(d.total_retransmissions(), 3);
        assert!(d.lob_escalations() >= 1);
        assert!(d.bist_requests() >= 1);
    }
}
