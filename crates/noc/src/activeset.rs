//! Hierarchical active-set bitmaps for the sharded cycle engine.
//!
//! An [`ActiveSet`] is a two-level bitmap over a dense id space (routers,
//! or link *positions* in a shard-ordered permutation): a `words` level
//! with one bit per id, and a `summary` level with one bit per word. The
//! phase loops iterate only the set bits of their own shard's range
//! instead of linearly scanning every id, and the whole-network
//! quiescence gate in [`crate::Simulator::skip_idle_cycles`] is a scan of
//! the (tiny) summary level.
//!
//! Bits are *superset hints*: a set bit means the id **may** have work,
//! and every consumer re-checks the authoritative predicate (the
//! `router_active` bool, wire occupancy, queue emptiness) before acting.
//! A stale set bit therefore costs one wasted check; a stale *clear* bit
//! would lose work, so the update protocol only ever clears a bit at the
//! single site that just observed the authoritative predicate false.
//!
//! Concurrency: `set`/`clear`/`get` use relaxed atomics. The engine's
//! barrier groups provide the happens-before edges (a bit set in group
//! G2 is consumed in G1 of the *next* cycle, across a pool barrier), and
//! within a group each bit is touched only by the shard that owns its
//! id, so same-word operations from different shards target disjoint
//! bits and commute — iteration order and results stay deterministic at
//! every shard count. `clear` deliberately leaves the summary bit alone
//! (a concurrent summary clear could lose a sibling's set); the serial
//! [`ActiveSet::compact`] pass between cycles trims the summary level,
//! after which [`ActiveSet::all_clear`] is exact.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

/// Two-level atomic bitmap over `len` ids (see module docs).
pub(crate) struct ActiveSet {
    /// One bit per id.
    words: Vec<AtomicU64>,
    /// One bit per word: a superset of "word is nonzero".
    summary: Vec<AtomicU64>,
    len: usize,
}

impl std::fmt::Debug for ActiveSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSet")
            .field("len", &self.len)
            .field("set", &self.count())
            .finish()
    }
}

impl ActiveSet {
    /// A set over ids `0..len` with every bit set (everything may have
    /// work until proven otherwise — the safe initial state).
    pub(crate) fn new_all_set(len: usize) -> Self {
        let mut s = Self {
            words: (0..len.div_ceil(WORD_BITS))
                .map(|_| AtomicU64::new(0))
                .collect(),
            summary: (0..len.div_ceil(WORD_BITS).div_ceil(WORD_BITS))
                .map(|_| AtomicU64::new(0))
                .collect(),
            len,
        };
        s.set_all();
        s
    }

    /// Mark every id active (new/restore/re-shard: conservative reset).
    /// Tail bits past `len` stay zero so [`ActiveSet::all_clear`] and
    /// [`ActiveSet::count`] never see phantom ids.
    pub(crate) fn set_all(&mut self) {
        for (w, word) in self.words.iter_mut().enumerate() {
            let base = w * WORD_BITS;
            let live = self.len.saturating_sub(base).min(WORD_BITS);
            *word.get_mut() = if live == WORD_BITS {
                u64::MAX
            } else {
                (1u64 << live) - 1
            };
        }
        for (s, sw) in self.summary.iter_mut().enumerate() {
            let base = s * WORD_BITS;
            let live = self.words.len().saturating_sub(base).min(WORD_BITS);
            *sw.get_mut() = if live == WORD_BITS {
                u64::MAX
            } else {
                (1u64 << live) - 1
            };
        }
    }

    /// Mark id `i` active. Safe to call concurrently from any shard.
    #[inline]
    pub(crate) fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        let w = i / WORD_BITS;
        self.words[w].fetch_or(1u64 << (i % WORD_BITS), Ordering::Relaxed);
        self.summary[w / WORD_BITS].fetch_or(1u64 << (w % WORD_BITS), Ordering::Relaxed);
    }

    /// Mark id `i` inactive. Only the shard that owns `i` in the current
    /// group may call this, and only after observing the authoritative
    /// predicate false. The summary bit is left set (see module docs).
    #[inline]
    pub(crate) fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS].fetch_and(!(1u64 << (i % WORD_BITS)), Ordering::Relaxed);
    }

    /// Whether id `i` is marked active.
    #[cfg(test)]
    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Serial maintenance between cycles: drop summary bits whose word
    /// went all-clear. After this, [`ActiveSet::all_clear`] is exact.
    pub(crate) fn compact(&mut self) {
        for (s, sw) in self.summary.iter_mut().enumerate() {
            let mut bits = *sw.get_mut();
            let mut keep = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let w = s * WORD_BITS + b;
                if self
                    .words
                    .get_mut(w)
                    .is_none_or(|word| *word.get_mut() == 0)
                {
                    keep &= !(1u64 << b);
                }
            }
            *sw.get_mut() = keep;
        }
    }

    /// Whether no id is marked active. Exact immediately after
    /// [`ActiveSet::compact`]; otherwise may report a stale `false`
    /// (never a stale `true` — sets raise summary bits eagerly).
    pub(crate) fn all_clear(&self) -> bool {
        self.summary.iter().all(|s| s.load(Ordering::Relaxed) == 0)
    }

    /// Whether any id is marked active — exact, without mutating the
    /// summary level. The word level is authoritative (`clear` lands
    /// there immediately), so each set summary bit is chased to its
    /// word and a nonzero word answers `true`. Under saturation the
    /// very first probe is nonzero, making this a one-or-two-load
    /// reject for the skip gate; after a drain, stale summary bits
    /// cost one extra load each but the answer stays exact.
    #[inline]
    pub(crate) fn any_set(&self) -> bool {
        for (s, sw) in self.summary.iter().enumerate() {
            let mut bits = sw.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let w = s * WORD_BITS + b;
                if self
                    .words
                    .get(w)
                    .is_some_and(|word| word.load(Ordering::Relaxed) != 0)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Number of set bits (diagnostics only).
    pub(crate) fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Visit every set id in `range`, ascending. The summary level skips
    /// 64-word (4096-id) dead zones in one load. Iterates over a
    /// snapshot of each word, so the callback may `clear` visited ids
    /// (the refresh loop does) without perturbing the walk.
    #[inline]
    pub(crate) fn for_each_set_in(&self, range: Range<usize>, mut f: impl FnMut(usize)) {
        if range.start >= range.end {
            return;
        }
        let first_w = range.start / WORD_BITS;
        let last_w = (range.end - 1) / WORD_BITS;
        let mut w = first_w;
        while w <= last_w {
            // Summary hop: skip whole all-clear summary blocks.
            let s = w / WORD_BITS;
            let sbits = self.summary[s].load(Ordering::Relaxed) >> (w % WORD_BITS);
            if sbits == 0 {
                w = (s + 1) * WORD_BITS;
                continue;
            }
            w += sbits.trailing_zeros() as usize;
            if w > last_w {
                break;
            }
            let mut bits = self.words[w].load(Ordering::Relaxed);
            if w == first_w {
                bits &= u64::MAX << (range.start % WORD_BITS);
            }
            if w == last_w {
                let tail = range.end - w * WORD_BITS;
                if tail < WORD_BITS {
                    bits &= (1u64 << tail) - 1;
                }
            }
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(w * WORD_BITS + b);
            }
            w += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(set: &ActiveSet, r: Range<usize>) -> Vec<usize> {
        let mut v = Vec::new();
        set.for_each_set_in(r, |i| v.push(i));
        v
    }

    #[test]
    fn starts_all_set_and_clears_exactly() {
        let mut s = ActiveSet::new_all_set(130);
        assert_eq!(s.count(), 130);
        assert!(!s.all_clear());
        for i in 0..130 {
            assert!(s.get(i));
            s.clear(i);
        }
        assert_eq!(s.count(), 0);
        // Summary is a lazy superset until compacted.
        assert!(!s.all_clear());
        s.compact();
        assert!(s.all_clear());
    }

    #[test]
    fn set_after_compact_raises_summary_again() {
        let mut s = ActiveSet::new_all_set(100);
        for i in 0..100 {
            s.clear(i);
        }
        s.compact();
        assert!(s.all_clear());
        s.set(77);
        assert!(!s.all_clear(), "set must eagerly raise the summary");
        assert!(s.get(77));
        assert_eq!(collect(&s, 0..100), vec![77]);
    }

    #[test]
    fn ranged_iteration_is_ascending_and_masked() {
        let s = ActiveSet::new_all_set(300);
        for i in 0..300 {
            s.clear(i);
        }
        for &i in &[3usize, 63, 64, 65, 127, 128, 200, 299] {
            s.set(i);
        }
        assert_eq!(collect(&s, 0..300), vec![3, 63, 64, 65, 127, 128, 200, 299]);
        assert_eq!(collect(&s, 64..128), vec![64, 65, 127]);
        assert_eq!(collect(&s, 65..65), Vec::<usize>::new());
        assert_eq!(collect(&s, 66..200), vec![127, 128]);
        assert_eq!(collect(&s, 299..300), vec![299]);
    }

    #[test]
    fn iteration_survives_clearing_visited_bits() {
        let mut s = ActiveSet::new_all_set(192);
        for i in 0..192 {
            s.clear(i);
        }
        for &i in &[10usize, 70, 130, 190] {
            s.set(i);
        }
        let mut seen = Vec::new();
        s.for_each_set_in(0..192, |i| {
            seen.push(i);
            s.clear(i);
        });
        assert_eq!(seen, vec![10, 70, 130, 190]);
        s.compact();
        assert!(s.all_clear());
    }

    #[test]
    fn any_set_is_exact_without_compaction() {
        let s = ActiveSet::new_all_set(300);
        assert!(s.any_set());
        for i in 0..300 {
            s.clear(i);
        }
        // Summary bits are still raised (clear leaves them), but the
        // word level is authoritative — any_set must say drained.
        assert!(!s.all_clear(), "summary is a lazy superset");
        assert!(!s.any_set(), "any_set chases summary bits to words");
        s.set(257);
        assert!(s.any_set());
        s.clear(257);
        assert!(!s.any_set());
    }

    #[test]
    fn summary_hop_skips_dead_zones() {
        // 8192 ids = 2 summary words; only the far end is populated.
        let mut s = ActiveSet::new_all_set(8192);
        for i in 0..8192 {
            s.clear(i);
        }
        s.compact();
        s.set(8000);
        assert_eq!(collect(&s, 0..8192), vec![8000]);
    }
}
