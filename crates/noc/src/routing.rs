//! Route computation: XY dimension-order routing, table-driven routing
//! for the fault-avoidance (Ariadne-style) baseline, and topology-derived
//! tables ([`TopoRoutes`]) for tori and degraded meshes.

use noc_types::{Direction, Header, LinkId, Mesh, NodeId, Port, Topology};
use std::collections::VecDeque;

/// The routing function installed in every router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routing {
    /// XY dimension-order routing (deadlock-free on a mesh; the paper's
    /// default, and the better performer under flood DoS at < 0.65
    /// injection).
    Xy,
    /// Per-router lookup tables: `tables[router][dest] = direction`.
    /// Used by the rerouting baseline after links are disabled.
    Table(RouteTables),
    /// Odd-even turn-model minimal adaptive routing (Chiu 2000):
    /// east-to-north/south turns are banned in even columns and
    /// north/south-to-west turns in odd columns, which breaks every
    /// channel-dependency cycle without VCs. At each hop the router picks
    /// among the legal minimal directions by downstream credit count —
    /// the "multiple adaptive algorithms" the paper compares XY against
    /// under flood DoS.
    OddEven,
    /// Topology-derived tables with per-hop VC classes: wrap-minimal
    /// dimension-order routing plus dateline VC classes on a torus,
    /// up*/down* shortest legal paths on a degraded mesh. Built by
    /// [`TopoRoutes::for_mesh`]; installed by the simulator whenever the
    /// configured [`Mesh`] is not a plain mesh.
    Topo(TopoRoutes),
}

/// The virtual-channel class a flit must allocate on its next hop.
///
/// On a torus, deadlock freedom comes from the **dateline** scheme: the
/// VC space is split into a low half (class 0) and a high half (class 1),
/// a ring's wrap link is always taken in class 1, and a flit that still
/// has the wrap ahead of it travels in class 0. Since the class is a pure
/// function of (current router, destination) it costs no per-flit state —
/// and therefore no snapshot bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcClass {
    /// No class restriction (mesh, tables, odd-even).
    Any = 2,
    /// Dateline class 0: VCs `[0, vcs/2)`.
    Low = 0,
    /// Dateline class 1: VCs `[vcs/2, vcs)`.
    High = 1,
}

impl VcClass {
    /// Whether VC `vc` (of `vcs` total) belongs to this class.
    #[inline]
    pub fn admits(self, vc: u8, vcs: u8) -> bool {
        match self {
            VcClass::Any => true,
            VcClass::Low => vc < vcs / 2,
            VcClass::High => vc >= vcs / 2,
        }
    }
}

/// Table-driven routes, rebuilt whenever a link is declared dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTables {
    /// `next[router][dest]` — `None` when `dest` is unreachable.
    pub(crate) next: Vec<Vec<Option<Direction>>>,
}

/// A fixed-capacity set of legal output ports, best-default first — the
/// allocation-free form of [`Routing::route_candidates`] used by the
/// per-cycle RC stage. A mesh router never has more than 4 candidates
/// (one local port, or up to the 4 network directions).
#[derive(Debug, Clone, Copy)]
pub struct RouteSet {
    ports: [Port; 4],
    len: u8,
}

impl RouteSet {
    fn new() -> Self {
        Self {
            ports: [Port::Local(0); 4],
            len: 0,
        }
    }

    fn push(&mut self, p: Port) {
        self.ports[self.len as usize] = p;
        self.len += 1;
    }

    /// The candidates, in the same order `route_candidates` returns them.
    pub fn as_slice(&self) -> &[Port] {
        &self.ports[..self.len as usize]
    }

    /// Whether no legal port exists.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Routing {
    /// Output port for a flit with header `h` standing at `node`.
    /// Local delivery uses the destination thread's local port. Adaptive
    /// functions return their first legal candidate here; congestion-aware
    /// selection goes through [`Routing::route_candidates`].
    pub fn route(&self, mesh: &Mesh, node: NodeId, h: &Header) -> Option<Port> {
        self.route_set(mesh, node, h).as_slice().first().copied()
    }

    /// All legal output ports for the flit, best-default first. XY and
    /// table routing are deterministic (one candidate); odd-even returns
    /// every direction the turn model allows so the router can pick the
    /// least congested.
    pub fn route_candidates(&self, mesh: &Mesh, node: NodeId, h: &Header) -> Vec<Port> {
        self.route_set(mesh, node, h).as_slice().to_vec()
    }

    /// Allocation-free [`Routing::route_candidates`]: same candidates in
    /// the same order, in a fixed-size [`RouteSet`].
    pub fn route_set(&self, mesh: &Mesh, node: NodeId, h: &Header) -> RouteSet {
        let mut set = RouteSet::new();
        if node == h.dest {
            set.push(Port::Local(h.thread % mesh.concentration()));
            return set;
        }
        match self {
            Routing::Xy => set.push(Port::Net(xy_direction(mesh, node, h.dest))),
            Routing::Table(t) => {
                if let Some(dir) = t.next[node.index()][h.dest.index()] {
                    set.push(Port::Net(dir));
                }
            }
            Routing::OddEven => {
                let (dirs, n) = odd_even_dirs(mesh, node, h.src, h.dest);
                for dir in &dirs[..n] {
                    set.push(Port::Net(*dir));
                }
            }
            Routing::Topo(t) => {
                if let Some(dir) = t.next[node.index()][h.dest.index()] {
                    set.push(Port::Net(dir));
                }
            }
        }
        set
    }

    /// The VC class a flit standing at `node` must allocate for its next
    /// hop toward `dest`. Only [`Routing::Topo`] on a torus restricts the
    /// class; every other routing function (and every hop of an up*/down*
    /// route, whose turn restrictions already break dependency cycles)
    /// admits any VC.
    #[inline]
    pub fn vc_class(&self, node: NodeId, dest: NodeId) -> VcClass {
        match self {
            Routing::Topo(t) => t.class(node, dest),
            _ => VcClass::Any,
        }
    }

    /// The routing function the simulator installs for a given fabric:
    /// XY on a plain mesh (bit-identical to the pre-topology simulator),
    /// topology tables otherwise.
    ///
    /// # Panics
    /// Panics when a degraded mesh is disconnected (no routing function
    /// can serve it).
    pub fn for_mesh(mesh: &Mesh) -> Routing {
        match mesh.topology() {
            Topology::Mesh => Routing::Xy,
            _ => Routing::Topo(
                TopoRoutes::for_mesh(mesh)
                    .expect("topology must be connected to build route tables"),
            ),
        }
    }
}

/// Topology-derived route tables with per-hop dateline VC classes.
///
/// * **Torus** — wrap-minimal dimension-order routing: correct X first
///   (shorter way around the ring, ties broken East), then Y (ties broken
///   North), with [`VcClass`] datelines making each unidirectional ring's
///   channel-dependency graph acyclic.
/// * **Degraded mesh** — up*/down* shortest legal paths over the surviving
///   adjacencies ([`RouteTables::build_updown`] on the degraded graph);
///   deadlock-free by turn restriction, so every hop is [`VcClass::Any`].
/// * **Plain mesh** — shortest-path tables (the simulator prefers
///   [`Routing::Xy`] here; the tables exist for tests and oracles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoRoutes {
    /// `next[router][dest]` — `None` when `dest` is unreachable.
    pub(crate) next: Vec<Vec<Option<Direction>>>,
    /// `class[router][dest]` encoded 0 = Low, 1 = High, 2 = Any.
    pub(crate) class: Vec<Vec<u8>>,
}

impl TopoRoutes {
    /// Build the route tables for `mesh`'s topology. Returns `None` when
    /// the graph is disconnected (possible only for degraded meshes).
    pub fn for_mesh(mesh: &Mesh) -> Option<Self> {
        let n = mesh.routers();
        match mesh.topology() {
            Topology::Torus => {
                let mut next = vec![vec![None; n]; n];
                let mut class = vec![vec![2u8; n]; n];
                for src in 0..n {
                    for dest in 0..n {
                        if src == dest {
                            continue;
                        }
                        let (at, d) = (NodeId(src as u16), NodeId(dest as u16));
                        let dir = torus_direction(mesh, at, d);
                        next[src][dest] = Some(dir);
                        class[src][dest] = torus_vc_class(mesh, at, d) as u8;
                    }
                }
                Some(Self { next, class })
            }
            Topology::Mesh | Topology::Degraded { .. } => {
                let tables = match mesh.topology() {
                    Topology::Mesh => {
                        let t = RouteTables::build(mesh, &[]);
                        t.fully_connected().then_some(t)?
                    }
                    _ => RouteTables::build_updown(mesh, &[])?,
                };
                let class = vec![vec![2u8; n]; n];
                Some(Self {
                    next: tables.next,
                    class,
                })
            }
        }
    }

    /// Reassemble from raw tables (snapshot decode).
    pub(crate) fn from_parts(next: Vec<Vec<Option<Direction>>>, class: Vec<Vec<u8>>) -> Self {
        Self { next, class }
    }

    /// The VC class for the hop out of `node` toward `dest`.
    #[inline]
    pub fn class(&self, node: NodeId, dest: NodeId) -> VcClass {
        match self.class[node.index()][dest.index()] {
            0 => VcClass::Low,
            1 => VcClass::High,
            _ => VcClass::Any,
        }
    }

    /// Whether every router can still reach every other.
    pub fn fully_connected(&self) -> bool {
        let n = self.next.len();
        (0..n).all(|r| (0..n).all(|d| r == d || self.next[r][d].is_some()))
    }
}

/// Wrap-minimal dimension-order direction on a torus: correct X before Y;
/// on each axis take the shorter way around the ring, breaking the exact
/// tie (half the ring either way) toward East / North. The choice is
/// stable along the route: moving the minimal way shrinks that way's
/// distance, so every downstream router picks the same direction.
pub fn torus_direction(mesh: &Mesh, node: NodeId, dest: NodeId) -> Direction {
    let (w, h) = (mesh.width() as i16, mesh.height() as i16);
    let here = mesh.coord_of(node);
    let there = mesh.coord_of(dest);
    if here.x != there.x {
        let east = (there.x as i16 - here.x as i16).rem_euclid(w);
        if east * 2 <= w {
            Direction::East
        } else {
            Direction::West
        }
    } else {
        let north = (there.y as i16 - here.y as i16).rem_euclid(h);
        if north * 2 <= h {
            Direction::North
        } else {
            Direction::South
        }
    }
}

/// Dateline VC class for the hop [`torus_direction`] picks at `node`.
///
/// Each unidirectional ring has one dateline: the wrap link (East out of
/// `x = W-1`, West out of `x = 0`, and the Y analogues). A route segment
/// that still has its ring's wrap link **ahead** of it travels in class 0;
/// the wrap link itself and everything after it travel in class 1. Both
/// facts are decidable from (node, dest) alone: going East, the remaining
/// path crosses the wrap iff `x_node > x_dest`.
///
/// Deadlock-freedom witness (per ring): a class-0 cycle would need the
/// wrap link in class 0, but the wrap link is always class 1; a class-1
/// cycle would need some flit to *enter* the wrap link from a class-1
/// non-wrap link, but any flit one hop before the wrap is still on the
/// crossing side and therefore class 0 (or starts at the dateline router
/// itself, where its first link is the wrap). Each flit's class is
/// monotone 0 → 1, X is fully corrected before Y, and the four rings of
/// an axis pair are link-disjoint — so the whole channel-dependency graph
/// is acyclic. The property test
/// `torus_channel_dependency_graph_is_acyclic` checks this exhaustively.
pub fn torus_vc_class(mesh: &Mesh, node: NodeId, dest: NodeId) -> VcClass {
    let (w, h) = (mesh.width(), mesh.height());
    let here = mesh.coord_of(node);
    let there = mesh.coord_of(dest);
    if here.x != there.x {
        match torus_direction(mesh, node, dest) {
            Direction::East => {
                // Crosses the x = W-1 → 0 seam iff walking East must pass
                // it, i.e. the destination column is numerically behind.
                if here.x > there.x && here.x != w - 1 {
                    VcClass::Low
                } else {
                    VcClass::High
                }
            }
            _ => {
                if here.x < there.x && here.x != 0 {
                    VcClass::Low
                } else {
                    VcClass::High
                }
            }
        }
    } else {
        match torus_direction(mesh, node, dest) {
            Direction::North => {
                if here.y > there.y && here.y != h - 1 {
                    VcClass::Low
                } else {
                    VcClass::High
                }
            }
            _ => {
                if here.y < there.y && here.y != 0 {
                    VcClass::Low
                } else {
                    VcClass::High
                }
            }
        }
    }
}

/// The unique link path a deterministic routing function sends a packet
/// along — the generalization of [`xy_path`] the conformance oracle and
/// trojan placement use on every topology.
///
/// # Panics
/// Panics on [`Routing::OddEven`] (adaptive: no unique path) and on
/// unroutable pairs.
pub fn route_path(mesh: &Mesh, routing: &Routing, src: NodeId, dest: NodeId) -> Vec<LinkId> {
    let mut path = Vec::new();
    let mut at = src;
    let mut hops = 0;
    while at != dest {
        let dir = match routing {
            Routing::Xy => xy_direction(mesh, at, dest),
            Routing::Table(t) => t.next[at.index()][dest.index()].expect("table routes the pair"),
            Routing::Topo(t) => {
                t.next[at.index()][dest.index()].expect("topology tables route the pair")
            }
            Routing::OddEven => panic!("odd-even is adaptive: no unique path"),
        };
        path.push(mesh.link_out(at, dir).expect("routed hop exists"));
        at = mesh.neighbor(at, dir).expect("routed hop exists");
        hops += 1;
        assert!(hops <= mesh.routers(), "routing cycle on {src:?}->{dest:?}");
    }
    path
}

/// Legal minimal directions under the odd-even turn model.
///
/// From Chiu's minimal route-candidate algorithm: eastbound packets may
/// only leave the current column northward/southward where a later
/// east-to-vertical turn would remain legal, and westbound packets may
/// only turn vertical in even columns (vertical-to-west turns are banned
/// in odd columns).
pub fn odd_even_candidates(mesh: &Mesh, node: NodeId, src: NodeId, dest: NodeId) -> Vec<Direction> {
    let (dirs, n) = odd_even_dirs(mesh, node, src, dest);
    dirs[..n].to_vec()
}

/// Allocation-free core of [`odd_even_candidates`]: at most two minimal
/// directions are ever legal, returned as `(buffer, count)`.
fn odd_even_dirs(mesh: &Mesh, node: NodeId, src: NodeId, dest: NodeId) -> ([Direction; 2], usize) {
    let cur = mesh.coord_of(node);
    let d = mesh.coord_of(dest);
    let s = mesh.coord_of(src);
    let dx = d.x as i16 - cur.x as i16;
    let dy = d.y as i16 - cur.y as i16;
    let vertical = |dy: i16| {
        if dy > 0 {
            Direction::North
        } else {
            Direction::South
        }
    };
    let mut out = [Direction::East; 2];
    let mut n = 0;
    let mut push = |dir: Direction| {
        out[n] = dir;
        n += 1;
    };
    if dx == 0 {
        // Same column: straight vertical is always legal.
        push(vertical(dy));
        return (out, n);
    }
    if dx > 0 {
        // Eastbound.
        if dy == 0 {
            push(Direction::East);
        } else {
            // A vertical move now implies an east-to-vertical turn happened
            // or will happen; it is legal only in odd columns (or at the
            // source column, where no turn has been taken yet).
            if cur.x % 2 == 1 || cur.x == s.x {
                push(vertical(dy));
            }
            // Going further east is legal unless the destination column is
            // even and exactly one hop away (the final EN/ES turn there
            // would be illegal).
            if d.x % 2 == 1 || dx != 1 {
                push(Direction::East);
            }
        }
    } else {
        // Westbound: west is always legal; verticals only in even columns
        // (NW/SW turns are banned in odd columns).
        push(Direction::West);
        if dy != 0 && cur.x.is_multiple_of(2) {
            push(vertical(dy));
        }
    }
    debug_assert!(n > 0, "odd-even must always offer a move");
    (out, n)
}

/// Classic XY: correct x first, then y.
pub fn xy_direction(mesh: &Mesh, node: NodeId, dest: NodeId) -> Direction {
    let here = mesh.coord_of(node);
    let there = mesh.coord_of(dest);
    if here.x != there.x {
        if there.x > here.x {
            Direction::East
        } else {
            Direction::West
        }
    } else if there.y > here.y {
        Direction::North
    } else {
        Direction::South
    }
}

/// Hops along the XY route from `src` to `dest` (for latency models).
pub fn xy_path(mesh: &Mesh, src: NodeId, dest: NodeId) -> Vec<LinkId> {
    let mut path = Vec::new();
    let mut at = src;
    while at != dest {
        let dir = xy_direction(mesh, at, dest);
        path.push(mesh.link_out(at, dir).expect("XY step exists on a mesh"));
        at = mesh.neighbor(at, dir).expect("XY step exists on a mesh");
    }
    path
}

impl RouteTables {
    /// Build shortest-path routes avoiding `dead` links by per-destination
    /// BFS. **Not deadlock-free in general** — the union of per-destination
    /// trees can close channel-dependency cycles. Use
    /// [`RouteTables::build_updown`] for the fault-tolerant baseline; this
    /// construction is kept for latency studies and unit tests on
    /// single-link failures (where XY-conformant detours dominate).
    pub fn build(mesh: &Mesh, dead: &[LinkId]) -> Self {
        let is_dead = |l: LinkId| dead.contains(&l);
        let n = mesh.routers();
        let mut next = vec![vec![None; n]; n];
        // BFS from each destination over *reverse* usable links.
        for dest in 0..n {
            let dest_node = NodeId(dest as u16);
            let mut dist = vec![u32::MAX; n];
            let mut q = VecDeque::new();
            dist[dest] = 0;
            q.push_back(dest_node);
            while let Some(at) = q.pop_front() {
                for dir in Direction::ALL {
                    // A neighbour `nb` routes to `at` via `dir.opposite()`
                    // using link nb→at; usable iff that link is alive.
                    if let Some(nb) = mesh.neighbor(at, dir) {
                        let link_nb_to_at = mesh
                            .link_out(nb, dir.opposite())
                            .expect("reverse link exists");
                        if is_dead(link_nb_to_at) {
                            continue;
                        }
                        if dist[nb.index()] == u32::MAX {
                            dist[nb.index()] = dist[at.index()] + 1;
                            next[nb.index()][dest] = Some(dir.opposite());
                            q.push_back(nb);
                        }
                    }
                }
            }
        }
        Self { next }
    }

    /// Build **up*/down*** routes avoiding `dead` links — the Ariadne-style
    /// deadlock-free reconfiguration. Routers are totally ordered by
    /// `(BFS level over the undirected alive graph, id)`; a directed hop is
    /// *up* when it decreases that order. Every route climbs zero or more
    /// up-links, then descends zero or more down-links; since no route ever
    /// takes a down→up turn, the channel dependency graph is acyclic and
    /// the network cannot deadlock on routing.
    ///
    /// Per destination `d`, let `h(r)` be the shortest all-down distance
    /// and `f(r)` the shortest legal (up\* down\*) distance. The next hop
    /// is chosen by the rule *"go down when `f(r) == h(r)`, else go up
    /// toward `argmin f`"*. This rule is self-consistent even though the
    /// table is keyed only by (router, dest): if `r` goes down to `n` on a
    /// shortest all-down path and `n` preferred a shorter up-containing
    /// path, then `f(r) ≤ 1 + f(n) < 1 + h(n) = h(r) = f(r)` — a
    /// contradiction — so `n` continues downward too.
    ///
    /// Returns `None` when some pair has no legal path (e.g. `dead`
    /// disconnects the mesh).
    pub fn build_updown(mesh: &Mesh, dead: &[LinkId]) -> Option<Self> {
        // The root fixes the up/down orientation; an orientation can be
        // infeasible for a given asymmetric failure set even though
        // another one routes it (a node whose only alive exits point
        // "down" can never climb). Try every root and keep the feasible
        // orientation with the smallest total path length.
        (0..mesh.routers() as u16)
            .filter_map(|root| {
                let t = Self::build_updown_rooted(mesh, dead, NodeId(root))?;
                let total: u32 = (0..mesh.routers() as u16)
                    .flat_map(|s| {
                        (0..mesh.routers() as u16)
                            .filter_map(move |d| Some((s, d)).filter(|(s, d)| s != d))
                    })
                    .map(|(s, d)| {
                        t.path_len(mesh, NodeId(s), NodeId(d))
                            .unwrap_or(u32::MAX / 256)
                    })
                    .sum();
                Some((total, t))
            })
            .min_by_key(|(total, _)| *total)
            .map(|(_, t)| t)
    }

    /// One up*/down* construction attempt with a fixed orientation root.
    fn build_updown_rooted(mesh: &Mesh, dead: &[LinkId], root: NodeId) -> Option<Self> {
        let n = mesh.routers();
        let alive = |r: NodeId, dir: Direction| -> Option<NodeId> {
            let l = mesh.link_out(r, dir)?;
            if dead.contains(&l) {
                return None;
            }
            mesh.neighbor(r, dir)
        };
        // Levels over the undirected union graph (either direction alive).
        let mut level = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        level[root.index()] = 0;
        q.push_back(root);
        while let Some(at) = q.pop_front() {
            for dir in Direction::ALL {
                let Some(nb) = mesh.neighbor(at, dir) else {
                    continue;
                };
                let fwd = alive(at, dir).is_some();
                let rev = alive(nb, dir.opposite()).is_some();
                if (fwd || rev) && level[nb.index()] == u32::MAX {
                    level[nb.index()] = level[at.index()] + 1;
                    q.push_back(nb);
                }
            }
        }
        if level.contains(&u32::MAX) {
            return None;
        }
        let order = |r: NodeId| (level[r.index()], r.0);
        // Process nodes in ascending order so `f` of up-neighbours (which
        // are strictly smaller in the order) is final before it is used.
        let mut by_order: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
        by_order.sort_by_key(|r| order(*r));

        let mut next = vec![vec![None::<Direction>; n]; n];
        for dest in 0..n {
            let d = NodeId(dest as u16);
            // h: shortest all-down distance to d — BFS from d over
            // *reversed* down-links (r→nb is down iff order(nb) > order(r)).
            let mut h = vec![u32::MAX; n];
            h[dest] = 0;
            let mut q = VecDeque::new();
            q.push_back(d);
            while let Some(at) = q.pop_front() {
                for dir in Direction::ALL {
                    // Predecessor r with a down-link r→at.
                    let Some(r) = mesh.neighbor(at, dir) else {
                        continue;
                    };
                    if alive(r, dir.opposite()) != Some(at) {
                        continue;
                    }
                    if order(at) > order(r) && h[r.index()] == u32::MAX {
                        h[r.index()] = h[at.index()] + 1;
                        q.push_back(r);
                    }
                }
            }
            // f: shortest legal distance, by DP in ascending node order
            // (up-neighbours are smaller, so their f is already final).
            let mut f = vec![u32::MAX; n];
            f[dest] = 0;
            for r in &by_order {
                if *r == d {
                    continue;
                }
                let mut best = h[r.index()];
                for dir in Direction::ALL {
                    if let Some(nb) = alive(*r, dir) {
                        if order(nb) < order(*r) && f[nb.index()] != u32::MAX {
                            best = best.min(1 + f[nb.index()]);
                        }
                    }
                }
                f[r.index()] = best;
            }
            for src in 0..n {
                if src == dest {
                    continue;
                }
                let r = NodeId(src as u16);
                let fr = f[src];
                if fr == u32::MAX {
                    return None; // no legal path
                }
                let pick = if fr == h[src] {
                    // Continue the all-down path.
                    Direction::ALL.iter().copied().find(|dir| {
                        alive(r, *dir).is_some_and(|nb| {
                            order(nb) > order(r)
                                && h[nb.index()] != u32::MAX
                                && 1 + h[nb.index()] == h[src]
                        })
                    })
                } else {
                    // Climb toward the best legal distance.
                    Direction::ALL.iter().copied().find(|dir| {
                        alive(r, *dir).is_some_and(|nb| {
                            order(nb) < order(r)
                                && f[nb.index()] != u32::MAX
                                && 1 + f[nb.index()] == fr
                        })
                    })
                };
                next[src][dest] = Some(pick.expect("finite f implies a witness hop"));
            }
        }
        let tables = Self { next };
        debug_assert!((0..n as u16).all(|s| {
            (0..n as u16).all(|dd| {
                tables.walk_is_legal(mesh, NodeId(s), NodeId(dd), &|a, b| order(b) < order(a))
            })
        }));
        Some(tables)
    }

    /// Check one route walk: terminates within `n` hops and never takes an
    /// up-hop after a down-hop.
    fn walk_is_legal(
        &self,
        mesh: &Mesh,
        src: NodeId,
        dest: NodeId,
        is_up: &impl Fn(NodeId, NodeId) -> bool,
    ) -> bool {
        if src == dest {
            return true;
        }
        let mut at = src;
        let mut up_ok = true;
        for _ in 0..mesh.routers() {
            let Some(dir) = self.next[at.index()][dest.index()] else {
                return false;
            };
            let Some(nb) = mesh.neighbor(at, dir) else {
                return false;
            };
            let hop_up = is_up(at, nb);
            if hop_up && !up_ok {
                return false;
            }
            up_ok = up_ok && hop_up;
            at = nb;
            if at == dest {
                return true;
            }
        }
        false
    }

    /// Whether every router can still reach every other.
    pub fn fully_connected(&self) -> bool {
        let n = self.next.len();
        (0..n).all(|r| (0..n).all(|d| r == d || self.next[r][d].is_some()))
    }

    /// Path length from `src` to `dest`, or `None` if unreachable.
    pub fn path_len(&self, mesh: &Mesh, src: NodeId, dest: NodeId) -> Option<u32> {
        let mut at = src;
        let mut hops = 0;
        while at != dest {
            let dir = self.next[at.index()][dest.index()]?;
            at = mesh.neighbor(at, dir)?;
            hops += 1;
            if hops > mesh.routers() as u32 {
                return None; // would be a cycle — must not happen
            }
        }
        Some(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Coord, VcId};

    fn hdr(dest: u16, thread: u8) -> Header {
        Header {
            src: NodeId(0),
            dest: NodeId(dest),
            vc: VcId(0),
            mem_addr: 0,
            thread,
            len: 1,
        }
    }

    #[test]
    fn xy_corrects_x_before_y() {
        let m = Mesh::paper();
        // Router 0 is (0,0); router 15 is (3,3).
        assert_eq!(xy_direction(&m, NodeId(0), NodeId(15)), Direction::East);
        // Router 3 is (3,0): x aligned with 15, go north.
        assert_eq!(xy_direction(&m, NodeId(3), NodeId(15)), Direction::North);
        assert_eq!(xy_direction(&m, NodeId(15), NodeId(0)), Direction::West);
        assert_eq!(xy_direction(&m, NodeId(12), NodeId(0)), Direction::South);
    }

    #[test]
    fn xy_path_length_is_manhattan_distance() {
        let m = Mesh::paper();
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let path = xy_path(&m, NodeId(s), NodeId(d));
                assert_eq!(path.len() as u32, m.hop_distance(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn local_delivery_picks_thread_port() {
        let m = Mesh::paper();
        let r = Routing::Xy;
        assert_eq!(r.route(&m, NodeId(5), &hdr(5, 6)), Some(Port::Local(6 % 4)));
    }

    #[test]
    fn tables_match_xy_lengths_when_no_links_dead() {
        let m = Mesh::paper();
        let t = RouteTables::build(&m, &[]);
        assert!(t.fully_connected());
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                assert_eq!(
                    t.path_len(&m, NodeId(s), NodeId(d)),
                    Some(m.hop_distance(NodeId(s), NodeId(d))),
                    "{s}->{d}"
                );
            }
        }
    }

    #[test]
    fn tables_detour_around_a_dead_link() {
        let m = Mesh::paper();
        // Kill the eastward link out of router 0 ((0,0) → (1,0)).
        let dead = m.link_out(NodeId(0), Direction::East).unwrap();
        let t = RouteTables::build(&m, &[dead]);
        assert!(t.fully_connected());
        // 0 → 1 is now 3 hops (e.g. north, east, south).
        assert_eq!(t.path_len(&m, NodeId(0), NodeId(1)), Some(3));
        // Routes from 1 back to 0 are unaffected (reverse link alive).
        assert_eq!(t.path_len(&m, NodeId(1), NodeId(0)), Some(1));
    }

    #[test]
    fn tables_report_disconnection() {
        let m = Mesh::new(2, 1, 1); // two routers, one link each way
        let dead = m.link_out(NodeId(0), Direction::East).unwrap();
        let t = RouteTables::build(&m, &[dead]);
        assert!(!t.fully_connected());
        assert_eq!(t.path_len(&m, NodeId(0), NodeId(1)), None);
        assert_eq!(t.path_len(&m, NodeId(1), NodeId(0)), Some(1));
    }

    #[test]
    fn table_routing_via_route_api() {
        let m = Mesh::paper();
        let t = RouteTables::build(&m, &[]);
        let r = Routing::Table(t);
        let p = r.route(&m, NodeId(0), &hdr(3, 0));
        assert_eq!(p, Some(Port::Net(Direction::East)));
    }

    #[test]
    fn corner_to_corner_path_is_along_edges() {
        let m = Mesh::paper();
        let path = xy_path(&m, m.node_at(Coord::new(0, 0)), m.node_at(Coord::new(3, 3)));
        assert_eq!(path.len(), 6);
    }

    #[test]
    fn updown_with_no_dead_links_is_connected_and_near_minimal() {
        let m = Mesh::paper();
        let t = RouteTables::build_updown(&m, &[]).expect("connected");
        assert!(t.fully_connected());
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let len = t.path_len(&m, NodeId(s), NodeId(d)).expect("reachable");
                let min = m.hop_distance(NodeId(s), NodeId(d));
                // Up*/down* may inflate some pairs, but never pathologically
                // on a healthy 4×4 mesh.
                assert!(len >= min && len <= min + 6, "{s}->{d}: {len} vs {min}");
            }
        }
    }

    /// Walk every pair through the tables: terminates within 16 hops and
    /// never uses a dead link.
    fn assert_walks_sound(m: &Mesh, t: &RouteTables, dead: &[LinkId]) {
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let mut at = NodeId(s);
                let mut hops = 0;
                while at != NodeId(d) {
                    let dir = t.next[at.index()][d as usize].expect("route exists");
                    let link = m.link_out(at, dir).unwrap();
                    assert!(!dead.contains(&link), "route used a dead link");
                    at = m.neighbor(at, dir).unwrap();
                    hops += 1;
                    assert!(hops <= 16, "cycle in up*/down* tables");
                }
            }
        }
    }

    #[test]
    fn updown_survives_scattered_dead_links() {
        let m = Mesh::paper();
        // Several deterministic failure sets; each must either be declared
        // infeasible (no orientation routes it) or produce sound tables.
        // Most must route — the paper's infection fractions are mild.
        let mut routable = 0;
        let mut tried = 0;
        for stride in [5u16, 9, 11, 13, 17] {
            let dead: Vec<LinkId> = m
                .all_links()
                .filter(|l| l.0 % stride == 1)
                .take(7)
                .collect();
            tried += 1;
            if let Some(t) = RouteTables::build_updown(&m, &dead) {
                routable += 1;
                assert!(t.fully_connected());
                assert_walks_sound(&m, &t, &dead);
            }
        }
        assert!(routable * 2 >= tried, "{routable}/{tried} sets routable");
    }

    #[test]
    fn updown_routes_never_turn_down_then_up() {
        let m = Mesh::paper();
        let dead: Vec<LinkId> = m.all_links().filter(|l| l.0 % 9 == 1).take(5).collect();
        // Find the first feasible orientation root (same scan order as the
        // public builder) so the legality check below can recompute
        // exactly the order the builder used.
        let (root, t) = (0..16u16)
            .find_map(|r| {
                RouteTables::build_updown_rooted(&m, &dead, NodeId(r)).map(|t| (NodeId(r), t))
            })
            .expect("some orientation must route this mild failure set");
        assert_walks_sound(&m, &t, &dead);
        // Recompute the (level, id) order over the undirected union graph.
        let alive = |r: NodeId, dir: Direction| -> Option<NodeId> {
            let l = m.link_out(r, dir)?;
            if dead.contains(&l) {
                return None;
            }
            m.neighbor(r, dir)
        };
        let mut level = [u32::MAX; 16];
        let mut q = std::collections::VecDeque::new();
        level[root.index()] = 0;
        q.push_back(root);
        while let Some(at) = q.pop_front() {
            for dir in Direction::ALL {
                let Some(nb) = m.neighbor(at, dir) else {
                    continue;
                };
                let usable = alive(at, dir).is_some() || alive(nb, dir.opposite()).is_some();
                if usable && level[nb.index()] == u32::MAX {
                    level[nb.index()] = level[at.index()] + 1;
                    q.push_back(nb);
                }
            }
        }
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let mut at = NodeId(s);
                let mut up_ok = true;
                let mut hops = 0;
                while at != NodeId(d) {
                    let dir = t.next[at.index()][d as usize].expect("route");
                    let nb = m.neighbor(at, dir).unwrap();
                    let hop_up = (level[nb.index()], nb.0) < (level[at.index()], at.0);
                    assert!(
                        !hop_up || up_ok,
                        "illegal down-then-up turn on route {s}->{d} at {at:?}"
                    );
                    up_ok = up_ok && hop_up;
                    at = nb;
                    hops += 1;
                    assert!(hops <= 16);
                }
            }
        }
    }

    #[test]
    fn odd_even_candidates_are_minimal_and_legal() {
        let m = Mesh::paper();
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let src = NodeId(s);
                let dest = NodeId(d);
                let cands = odd_even_candidates(&m, src, src, dest);
                assert!(!cands.is_empty(), "{s}->{d}");
                for dir in cands {
                    // Minimal: every candidate reduces the distance.
                    let nb = m.neighbor(src, dir).expect("minimal move exists");
                    assert_eq!(
                        m.hop_distance(nb, dest) + 1,
                        m.hop_distance(src, dest),
                        "{s}->{d} via {dir:?} is not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn odd_even_turn_restrictions_hold_along_every_walk() {
        // Walk a greedy route (always the first candidate) for every pair
        // and check no banned turn appears: EN/ES in even columns, NW/SW
        // in odd columns.
        let m = Mesh::paper();
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                let src = NodeId(s);
                let dest = NodeId(d);
                let mut at = src;
                let mut prev: Option<Direction> = None;
                let mut hops = 0;
                while at != dest {
                    let dir = odd_even_candidates(&m, at, src, dest)[0];
                    let col = m.coord_of(at).x;
                    if let Some(p) = prev {
                        let en_es = p == Direction::East
                            && (dir == Direction::North || dir == Direction::South);
                        let nw_sw = (p == Direction::North || p == Direction::South)
                            && dir == Direction::West;
                        assert!(
                            !(en_es && col.is_multiple_of(2)),
                            "EN/ES in even column {col}"
                        );
                        assert!(!(nw_sw && col % 2 == 1), "NW/SW in odd column {col}");
                    }
                    prev = Some(dir);
                    at = m.neighbor(at, dir).unwrap();
                    hops += 1;
                    assert!(hops <= 6, "odd-even walk exceeded minimal length");
                }
            }
        }
    }

    #[test]
    fn odd_even_offers_path_diversity_where_xy_does_not() {
        let m = Mesh::paper();
        // 0 → 15 (corner to corner): odd-even can spread over multiple
        // minimal directions at intermediate odd columns.
        let h = Header {
            src: NodeId(0),
            dest: NodeId(15),
            vc: VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 1,
        };
        let r = Routing::OddEven;
        let at_odd_col = m.node_at(Coord::new(1, 0));
        let cands = r.route_candidates(&m, at_odd_col, &h);
        assert!(cands.len() >= 2, "diversity expected: {cands:?}");
        assert_eq!(Routing::Xy.route_candidates(&m, at_odd_col, &h).len(), 1);
    }

    #[test]
    fn updown_detects_disconnection() {
        let m = Mesh::new(2, 1, 1);
        let dead: Vec<LinkId> = m.all_links().collect();
        assert!(RouteTables::build_updown(&m, &dead).is_none());
    }

    #[test]
    fn torus_direction_is_wrap_minimal_with_east_north_ties() {
        let t = Mesh::new_torus(4, 4, 1);
        // (0,0) → (3,0): one wrap hop West beats three hops East.
        assert_eq!(torus_direction(&t, NodeId(0), NodeId(3)), Direction::West);
        // (0,0) → (2,0): exact tie (2 either way) breaks East.
        assert_eq!(torus_direction(&t, NodeId(0), NodeId(2)), Direction::East);
        // X corrected before Y: (0,0) → (3,3) goes West first.
        assert_eq!(torus_direction(&t, NodeId(0), NodeId(15)), Direction::West);
        // Aligned column: (1,0) → (1,3) is one wrap hop South.
        assert_eq!(torus_direction(&t, NodeId(1), NodeId(13)), Direction::South);
    }

    #[test]
    fn torus_routes_terminate_and_are_wrap_minimal() {
        for (w, h) in [(4u8, 4u8), (3, 5), (2, 4)] {
            let t = Mesh::new_torus(w, h, 1);
            let r = Routing::for_mesh(&t);
            assert!(matches!(r, Routing::Topo(_)));
            let n = t.routers() as u16;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let path = route_path(&t, &r, NodeId(s), NodeId(d));
                    assert_eq!(
                        path.len() as u32,
                        t.hop_distance(NodeId(s), NodeId(d)),
                        "{w}x{h}: {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_dateline_class_is_monotone_and_wrap_is_high() {
        let t = Mesh::new_torus(4, 4, 1);
        let r = Routing::for_mesh(&t);
        let n = t.routers() as u16;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let mut at = NodeId(s);
                // Class must be monotone Low → High within each
                // dimension's segment of the route (the X prefix, then
                // the Y suffix; Y may legitimately restart at Low).
                let mut high = [false; 2];
                while at != NodeId(d) {
                    let class = r.vc_class(at, NodeId(d));
                    assert_ne!(class, VcClass::Any, "torus hops carry a class");
                    let dir = torus_direction(&t, at, NodeId(d));
                    let nb = t.neighbor(at, dir).unwrap();
                    let (ca, cb) = (t.coord_of(at), t.coord_of(nb));
                    // Wrap hops (coordinate jumps across the seam) are
                    // always class 1.
                    if ca.x.abs_diff(cb.x) > 1 || ca.y.abs_diff(cb.y) > 1 {
                        assert_eq!(class, VcClass::High, "{s}->{d} wrap at {at:?}");
                    }
                    let dim = usize::from(ca.x == cb.x); // 0 = X hop, 1 = Y hop
                    if high[dim] {
                        assert_eq!(
                            class,
                            VcClass::High,
                            "{s}->{d}: class fell back to Low at {at:?}"
                        );
                    }
                    high[dim] |= class == VcClass::High;
                    at = nb;
                }
            }
        }
    }

    #[test]
    fn degraded_mesh_routes_avoid_removed_adjacencies() {
        let d = Mesh::new_degraded(
            4,
            4,
            1,
            &[(NodeId(5), Direction::East), (NodeId(9), Direction::North)],
        );
        let r = Routing::for_mesh(&d);
        let n = d.routers() as u16;
        for s in 0..n {
            for dd in 0..n {
                if s == dd {
                    continue;
                }
                // route_path itself asserts every hop's link exists on the
                // degraded graph — a removed adjacency has no LinkId.
                let path = route_path(&d, &r, NodeId(s), NodeId(dd));
                assert!(!path.is_empty());
            }
        }
    }

    #[test]
    fn vc_class_partition_covers_the_vc_space() {
        for vcs in [2u8, 3, 4, 8] {
            for v in 0..vcs {
                assert!(VcClass::Any.admits(v, vcs));
                assert_ne!(
                    VcClass::Low.admits(v, vcs),
                    VcClass::High.admits(v, vcs),
                    "vc {v} of {vcs} must belong to exactly one dateline class"
                );
            }
            assert!(VcClass::High.admits(vcs - 1, vcs));
            assert!(VcClass::Low.admits(0, vcs));
        }
    }

    #[test]
    fn route_path_matches_xy_path_on_a_plain_mesh() {
        let m = Mesh::paper();
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    continue;
                }
                assert_eq!(
                    route_path(&m, &Routing::Xy, NodeId(s), NodeId(d)),
                    xy_path(&m, NodeId(s), NodeId(d))
                );
            }
        }
    }
}
