//! The per-link fault layer: transient, permanent, and trojan faults.
//!
//! Fig. 2 of the paper contrasts the three ways a link can corrupt a
//! codeword. This module composes all three on one wire bundle, in the
//! order physical reality imposes: the trojan's XOR tree sits between the
//! upstream ECC encoder and the wire, transient upsets strike in flight,
//! and stuck-at wires override whatever arrives at the far end.

use noc_ecc::Codeword;
use noc_mitigation::LinkUnderTest;
use noc_trojan::TaspHt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Permanent stuck-at wire set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StuckWires {
    /// Wires forced to 1.
    pub stuck_one: u128,
    /// Wires forced to 0.
    pub stuck_zero: u128,
}

impl StuckWires {
    /// No stuck wires.
    pub fn none() -> Self {
        Self::default()
    }

    /// A stuck-wire set with overlapping masks normalised: a wire listed
    /// in both sets reads as stuck-at-0, matching [`StuckWires::apply`]'s
    /// order of operations. (Physically a wire has exactly one defect;
    /// the overlap only arises from composing fault descriptions.)
    pub fn new(stuck_one: u128, stuck_zero: u128) -> Self {
        Self {
            stuck_one: stuck_one & !stuck_zero,
            stuck_zero,
        }
    }

    /// Whether no wire is stuck.
    pub fn is_clean(&self) -> bool {
        self.stuck_one == 0 && self.stuck_zero == 0
    }

    #[inline]
    /// Force the stuck wires onto a codeword: first OR in the stuck-at-1
    /// wires, then clear the stuck-at-0 wires. `stuck_zero` therefore
    /// wins wherever the two masks overlap — the same precedence
    /// [`StuckWires::new`] normalises to.
    pub fn apply(&self, cw: Codeword) -> Codeword {
        Codeword((cw.0 | self.stuck_one) & !self.stuck_zero)
    }
}

/// Everything that can corrupt one unidirectional link.
#[derive(Debug)]
pub struct LinkFaults {
    /// Per-bit flip probability per traversal (transient upsets).
    pub transient_bit_prob: f64,
    /// Stuck-at wires (permanent faults).
    pub stuck: StuckWires,
    /// A mounted TASP trojan, if this link was compromised at fabrication.
    pub trojan: Option<TaspHt>,
    pub(crate) rng: StdRng,
    /// Counters for analysis.
    pub transient_flips: u64,
    /// Trojan fault injections performed on this link.
    pub trojan_injections: u64,
}

impl LinkFaults {
    /// A healthy link (deterministic: the RNG seed only matters once
    /// `transient_bit_prob > 0`).
    pub fn healthy(seed: u64) -> Self {
        Self {
            transient_bit_prob: 0.0,
            stuck: StuckWires::none(),
            trojan: None,
            rng: StdRng::seed_from_u64(seed),
            transient_flips: 0,
            trojan_injections: 0,
        }
    }

    /// Set the per-bit transient upset probability.
    pub fn with_transients(mut self, bit_prob: f64) -> Self {
        self.transient_bit_prob = bit_prob;
        self
    }

    /// Set the permanent stuck-at wire set.
    pub fn with_stuck(mut self, stuck: StuckWires) -> Self {
        self.stuck = stuck;
        self
    }

    /// Mount a TASP trojan on this link.
    pub fn with_trojan(mut self, trojan: TaspHt) -> Self {
        self.trojan = Some(trojan);
        self
    }

    /// Pass one codeword across the wire during normal operation.
    ///
    /// `wire_word` is the (possibly obfuscated) 64-bit data word the trojan's
    /// comparator taps; `carries_header` is the head-flit side-band.
    pub fn traverse(
        &mut self,
        cycle: u64,
        wire_word: u64,
        carries_header: bool,
        mut cw: Codeword,
    ) -> Codeword {
        // Trojan XOR tree (between encoder and wire).
        if let Some(ht) = self.trojan.as_mut() {
            if let Some(mask) = ht.snoop(cycle, wire_word, carries_header) {
                cw = Codeword(cw.0 ^ mask);
                self.trojan_injections += 1;
            }
        }
        // Transient upsets in flight.
        if self.transient_bit_prob > 0.0 {
            for bit in 0..noc_ecc::CODEWORD_BITS {
                if self.rng.gen_bool(self.transient_bit_prob) {
                    cw = Codeword(cw.0 ^ (1u128 << bit));
                    self.transient_flips += 1;
                }
            }
        }
        // Stuck-at wires at the receiver.
        self.stuck.apply(cw)
    }

    /// Whether a trojan is mounted *and* its kill switch is up.
    pub fn trojan_armed(&self) -> bool {
        self.trojan.as_ref().is_some_and(|t| t.kill_switch())
    }

    /// Earliest future cycle this fault layer could act *on its own*,
    /// without a flit traversal — `None` for every fault model in this
    /// crate: transient upsets and the trojan's XOR tree strike only in
    /// flight (inside [`LinkFaults::traverse`], which is also the only
    /// place the RNG is drawn), stuck wires are combinational, and the
    /// TASP cooldown is anchored to the absolute cycle of the last
    /// injection rather than a per-cycle countdown. The simulator's
    /// fast-forward engine folds this into its skip horizon, so a future
    /// *time-triggered* fault model (a cycle-counter time-bomb trojan,
    /// periodic wear-out) bounds the window by reporting its wakeup here
    /// instead of being silently jumped over.
    pub fn next_autonomous_event_at(&self, now: u64) -> Option<u64> {
        self.trojan
            .as_ref()
            .and_then(|t| t.autonomous_wakeup_at(now))
    }
}

/// BIST drives raw patterns through the same physical effects — except the
/// trojan never fires on them: BIST patterns are not header flits carrying
/// its target (and during manufacturing test the kill switch is down). This
/// is precisely why a trojan-infected link passes BIST.
impl LinkUnderTest for LinkFaults {
    fn transmit(&mut self, cw: Codeword) -> Codeword {
        // Trojan comparator taps the data wires but sees test patterns, not
        // its target; model by snooping with the pattern's data bits.
        let mut out = cw;
        if let Some(ht) = self.trojan.as_mut() {
            if let Some(mask) = ht.snoop(0, (cw.0 >> 1) as u64, false) {
                out = Codeword(out.0 ^ mask);
            }
        }
        // Transients can strike during BIST too, but scan patterns are
        // repeated by real BIST engines; we keep scans noise-free so tests
        // are deterministic (transient_bit_prob is consulted by traffic
        // traversal only).
        self.stuck.apply(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_ecc::Secded;
    use noc_mitigation::Bist;
    use noc_trojan::{TargetSpec, TaspConfig};

    #[test]
    fn healthy_link_is_transparent() {
        let mut f = LinkFaults::healthy(1);
        let cw = Secded::encode(0x1234);
        assert_eq!(f.traverse(0, 0x1234, true, cw), cw);
    }

    #[test]
    fn stuck_zero_wins_where_masks_overlap() {
        let bit = 1u128 << 17;
        let overlapping = StuckWires {
            stuck_one: bit,
            stuck_zero: bit,
        };
        // Raw apply: the AND-with-!stuck_zero runs last, so the wire
        // reads 0 whatever was driven.
        assert_eq!(overlapping.apply(Codeword(bit)).0 & bit, 0);
        assert_eq!(overlapping.apply(Codeword(0)).0 & bit, 0);
        // The normalising constructor encodes the same precedence.
        let normal = StuckWires::new(bit, bit);
        assert_eq!(normal.stuck_one, 0);
        assert_eq!(normal.stuck_zero, bit);
        assert_eq!(
            normal.apply(Codeword(bit)),
            overlapping.apply(Codeword(bit))
        );
        assert!(!normal.is_clean());
    }

    #[test]
    fn stuck_wires_corrupt_and_bist_finds_them() {
        let stuck = StuckWires {
            stuck_one: 1 << 9,
            stuck_zero: 0,
        };
        let mut f = LinkFaults::healthy(1).with_stuck(stuck);
        let report = Bist::scan(&mut f);
        assert!(!report.passed());
        assert_eq!(report.stuck_wires.len(), 1);
    }

    #[test]
    fn transients_flip_bits_at_high_probability() {
        let mut f = LinkFaults::healthy(7).with_transients(0.5);
        let cw = Secded::encode(0);
        let mut changed = false;
        for c in 0..8 {
            if f.traverse(c, 0, false, cw) != cw {
                changed = true;
            }
        }
        assert!(changed);
        assert!(f.transient_flips > 0);
    }

    #[test]
    fn armed_trojan_corrupts_its_target_with_two_bits() {
        let target = TargetSpec::dest(9);
        let mut ht = TaspHt::new(TaspConfig::new(target));
        ht.set_kill_switch(true);
        let mut f = LinkFaults::healthy(1).with_trojan(ht);
        assert!(f.trojan_armed());
        let word = noc_types::Header {
            src: noc_types::NodeId(0),
            dest: noc_types::NodeId(9),
            vc: noc_types::VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 1,
        }
        .pack();
        let cw = Secded::encode(word);
        let out = f.traverse(0, word, true, cw);
        assert_eq!((out.0 ^ cw.0).count_ones(), 2);
        assert!(Secded::decode(out).needs_retransmission());
        assert_eq!(f.trojan_injections, 1);
    }

    #[test]
    fn trojan_infected_link_passes_bist() {
        let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)));
        ht.set_kill_switch(true); // even armed, BIST sees no target
        let mut f = LinkFaults::healthy(1).with_trojan(ht);
        assert!(Bist::scan(&mut f).passed(), "the trojan's BIST tell");
    }

    #[test]
    fn disarmed_trojan_is_invisible_to_traffic() {
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)));
        let mut f = LinkFaults::healthy(1).with_trojan(ht);
        assert!(!f.trojan_armed());
        let word = 0x0000_0009_u64 << 4; // dest=9 wire pattern
        let cw = Secded::encode(word);
        assert_eq!(f.traverse(0, word, true, cw), cw);
    }
}
