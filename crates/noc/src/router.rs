//! The router micro-architecture: input units, output units, and the
//! VA / SA / ST pipeline stages with round-robin allocators.
//!
//! The simulator calls the stage methods in reverse pipeline order each
//! cycle (see the crate docs); every state transition is stamped with the
//! cycle it happened so a flit spends exactly one cycle per stage.

use crate::arbiter::RoundRobin;
use crate::config::{QosMode, SimConfig};
use crate::input::{InputUnit, VcState};
use crate::output::OutputUnit;
use crate::routing::Routing;
use noc_mitigation::ThreatDetector;
use noc_types::{Direction, Flit, FlitId, Mesh, NodeId, PacketId, Port, VcId};
use std::collections::HashSet;

/// A crossbar traversal in progress: granted at SA in cycle `granted_at`,
/// committed to the output stage at ST in the next cycle.
#[derive(Debug, Clone, Copy)]
pub struct StMove {
    /// The flit crossing the crossbar.
    pub flit: Flit,
    /// Output port the flit was granted.
    pub out_port: Port,
    /// Downstream input VC (None for local ejection).
    pub out_vc: Option<VcId>,
    /// Cycle of the SA grant.
    pub granted_at: u64,
}

/// A flit ejected to a local core this cycle.
#[derive(Debug, Clone, Copy)]
pub struct Ejection {
    /// The ejected flit.
    pub flit: Flit,
    /// Local port (core) the flit exits through.
    pub local_port: u8,
}

/// Credit to return to the upstream router feeding network input `dir`.
#[derive(Debug, Clone, Copy)]
pub struct CreditReturn {
    /// Input direction whose upstream gets the credit.
    pub in_dir: Direction,
    /// The VC whose buffer slot freed.
    pub vc: VcId,
}

/// Where the flow-control credit held by a purged flit copy lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditSite {
    /// This router's own output: the credit was consumed at SA (crossbar
    /// moves in `st_pending` and retransmission entries).
    SelfOutput(Direction, VcId),
    /// The upstream router feeding network input `in_dir`: the copy still
    /// occupied (or was committed to) a downstream buffer slot whose
    /// credit had not yet been returned.
    Upstream(Direction, VcId),
}

/// One flit copy removed by [`Router::purge_packets`].
///
/// A flit can transiently have two live copies (a retransmission entry
/// upstream plus the delivered copy downstream while the ACK is on the
/// reverse wire), but at most one flow-control credit: the simulator
/// deduplicates restorations by flit id, preferring non-`from_retx`
/// records — a retransmission entry's reservation is already released
/// (credit in flight back) once its downstream copy advanced past SA.
#[derive(Debug, Clone, Copy)]
pub struct PurgedCopy {
    /// The purged flit.
    pub flit: FlitId,
    /// Credit to restore, when this copy held one.
    pub site: Option<CreditSite>,
    /// Whether the copy was a retransmission entry (see above).
    pub from_retx: bool,
}

/// SoA membership lanes over a router's input VCs: one bit per
/// `input_port * vcs + vc` requester, mirroring the per-VC struct state
/// so the allocation stages (RC/VA/SA) build their request masks with a
/// handful of AND/ANDNOT ops instead of walking every `InputVc`.
///
/// The lanes are *derived* state — `InputVc` stays authoritative, the
/// snapshot codec never sees them, and [`VcLanes::rebuild`] reconstructs
/// them exactly from the structs (restore, purge). Every lane is exact,
/// not a superset: each transition site updates its bit in the same
/// statement block as the struct mutation, and the debug-build reference
/// oracle (`reference_*_mask`) re-derives each stage's mask from the
/// structs and asserts equality every cycle.
///
/// Freshness replaces the per-VC `since < cycle` pipeline-pacing reads:
/// stage stamps never exceed the current cycle, so `since < cycle` is
/// exactly "not stamped this cycle", i.e. `!fresh_at(cycle)`.
#[derive(Debug, Default, Clone)]
pub(crate) struct VcLanes {
    /// VCs in [`VcState::Routing`].
    routing: u64,
    /// VCs in [`VcState::VcAlloc`].
    vcalloc: u64,
    /// VCs in [`VcState::Active`].
    active: u64,
    /// VCs with a nonempty FIFO (head-flit readiness).
    head: u64,
    /// VCs whose `since` stamp equals `fresh_cycle`.
    fresh: u64,
    /// The cycle `fresh` is valid for.
    fresh_cycle: u64,
    /// VCs routed toward each network direction.
    route_dir: [u64; 4],
    /// VCs routed toward a local ejection port.
    route_local: u64,
}

impl VcLanes {
    /// Bits stamped in `cycle` (empty when the lane belongs to an older
    /// cycle — stamps never run ahead of the clock).
    #[inline]
    fn fresh_at(&self, cycle: u64) -> u64 {
        if self.fresh_cycle == cycle {
            self.fresh
        } else {
            0
        }
    }

    /// Record that `bit`'s VC was stamped `since = cycle`.
    #[inline]
    fn stamp(&mut self, bit: u64, cycle: u64) {
        if self.fresh_cycle != cycle {
            self.fresh = 0;
            self.fresh_cycle = cycle;
        }
        self.fresh |= bit;
    }

    /// Drop `bit` from every route lane (VC released or purged).
    #[inline]
    fn clear_route(&mut self, bit: u64) {
        for l in self.route_dir.iter_mut() {
            *l &= !bit;
        }
        self.route_local &= !bit;
    }

    /// Reconstruct every lane from the authoritative per-VC structs
    /// (snapshot restore, packet purge — the two sites that mutate VC
    /// state without going through the stage methods).
    fn rebuild(inputs: &[InputUnit], cycle: u64) -> Self {
        let vcs = inputs.first().map_or(0, |u| u.vcs.len());
        let mut l = Self {
            fresh_cycle: cycle,
            ..Self::default()
        };
        for (p, unit) in inputs.iter().enumerate() {
            for (v, ivc) in unit.vcs.iter().enumerate() {
                let bit = 1u64 << (p * vcs + v);
                match ivc.state {
                    VcState::Idle => {}
                    VcState::Routing => l.routing |= bit,
                    VcState::VcAlloc => l.vcalloc |= bit,
                    VcState::Active => l.active |= bit,
                }
                if !ivc.fifo.is_empty() {
                    l.head |= bit;
                }
                if ivc.since >= cycle {
                    l.fresh |= bit;
                }
                match ivc.route {
                    Some(Port::Net(dir)) => l.route_dir[dir.index()] |= bit,
                    Some(Port::Local(_)) => l.route_local |= bit,
                    None => {}
                }
            }
        }
        l
    }
}

/// `rc_cache` sentinel: the destination is unroutable under the current
/// tables (hold the head; the watchdog reports a permanent hold).
const RC_UNROUTABLE: u8 = 5;

/// One router.
#[derive(Debug)]
pub struct Router {
    /// The router position in the mesh.
    pub node: NodeId,
    /// Input units indexed by [`Port::index`]: 4 network + `c` locals.
    pub inputs: Vec<InputUnit>,
    /// Output units per network direction (None where no neighbour).
    pub outputs: [Option<OutputUnit>; 4],
    /// VA arbiter per network output, over `input_port * vcs + vc`.
    pub(crate) va_arb: [RoundRobin; 4],
    /// SA arbiter per output port (4 net + locals), same indexing.
    pub(crate) sa_arb: Vec<RoundRobin>,
    /// Crossbar traversals granted last cycle.
    pub st_pending: Vec<StMove>,
    /// Slots already committed to each network output by pending STs.
    pub(crate) pending_to_output: [u8; 4],
    /// SoA request-mask lanes mirroring the input VC state.
    pub(crate) lanes: VcLanes,
    /// Route memo keyed by destination: `0` = unfilled, `1..=4` =
    /// `Direction::ALL` index + 1, [`RC_UNROUTABLE`] = empty route set.
    /// Valid only for deterministic single-candidate routing functions
    /// (XY and table-driven — not odd-even, whose choice is adaptive)
    /// and only while `rc_cache_epoch` matches the simulator's routing
    /// epoch. Sized at construction: one byte per destination.
    pub(crate) rc_cache: Vec<u8>,
    /// Routing epoch `rc_cache` was filled under.
    pub(crate) rc_cache_epoch: u32,
}

impl Router {
    /// Construct the router for `node` with the given configuration.
    pub fn new(node: NodeId, mesh: &Mesh, cfg: &SimConfig) -> Self {
        let ports = cfg.ports();
        let requesters = ports * cfg.vcs as usize;
        assert!(
            requesters <= 64,
            "requester bitmasks hold 64 (port, VC) pairs"
        );
        let inputs = (0..ports)
            .map(|_| InputUnit::new(cfg.vcs, ThreatDetector::new(cfg.detector)))
            .collect();
        let outputs = std::array::from_fn(|d| {
            let dir = Direction::ALL[d];
            mesh.neighbor(node, dir).map(|_| {
                OutputUnit::new(
                    cfg.vcs,
                    cfg.vc_depth,
                    cfg.retx_depth as usize,
                    cfg.retx_scheme,
                )
            })
        });
        Self {
            node,
            inputs,
            outputs,
            va_arb: std::array::from_fn(|_| RoundRobin::new(requesters)),
            sa_arb: (0..ports).map(|_| RoundRobin::new(requesters)).collect(),
            st_pending: Vec::new(),
            pending_to_output: [0; 4],
            lanes: VcLanes::default(),
            // One byte per destination, allocated up front: the steady
            // state never touches the allocator.
            rc_cache: vec![0u8; mesh.routers()],
            rc_cache_epoch: 0,
        }
    }

    /// Reconstruct the SoA lanes from the per-VC structs. Called after
    /// the two paths that mutate VC state outside the stage methods
    /// (snapshot restore, packet purge).
    pub(crate) fn rebuild_lanes(&mut self, cycle: u64) {
        self.lanes = VcLanes::rebuild(&self.inputs, cycle);
    }

    /// Buffer write (BW): place an accepted flit into an input VC FIFO and
    /// advance the wormhole state machine. A head arriving behind a still-
    /// draining packet simply queues; `InputVc::release` re-arms the state
    /// machine when the stream reaches it.
    pub fn buffer_write(&mut self, port: Port, vc: VcId, flit: Flit, cycle: u64) {
        let vcs = self.inputs[0].vcs.len();
        let bit = 1u64 << (port.index() * vcs + vc.index());
        let unit = &mut self.inputs[port.index()];
        let ivc = &mut unit.vcs[vc.index()];
        if flit.kind.carries_header() && ivc.state == VcState::Idle && ivc.fifo.is_empty() {
            ivc.state = VcState::Routing;
            ivc.packet = Some(flit.packet);
            ivc.since = cycle;
            self.lanes.routing |= bit;
            self.lanes.stamp(bit, cycle);
        }
        ivc.fifo.push_back(flit);
        self.lanes.head |= bit;
        let occ = unit.occupancy() as u64;
        unit.occupancy_high_water = unit.occupancy_high_water.max(occ);
    }

    /// RC: compute routes for VCs that buffered a head last cycle. With an
    /// adaptive routing function (odd-even), the least congested legal
    /// candidate wins — judged by downstream credits plus free
    /// retransmission slots at each candidate output.
    ///
    /// `routing_epoch` versions the simulator's routing function; a bump
    /// (table reroute after quarantine, or an explicit swap) invalidates
    /// the per-destination route memo. Deterministic single-candidate
    /// functions (XY, tables) answer repeat destinations from the memo
    /// without re-deriving the route set; odd-even bypasses the memo
    /// entirely — its choice is adaptive (congestion- and
    /// source-dependent), so only the full derivation is correct.
    pub fn rc_stage(&mut self, cycle: u64, mesh: &Mesh, routing: &Routing, routing_epoch: u32) {
        let vcs = self.inputs[0].vcs.len();
        let mut mask = self.lanes.routing & !self.lanes.fresh_at(cycle);
        #[cfg(any(test, debug_assertions))]
        debug_assert_eq!(
            mask,
            self.reference_rc_mask(cycle),
            "RC lane mask diverged from per-VC struct state"
        );
        let memoize = !matches!(routing, Routing::OddEven);
        if memoize && self.rc_cache_epoch != routing_epoch {
            self.rc_cache.fill(0);
            self.rc_cache_epoch = routing_epoch;
        }
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let bit = 1u64 << i;
            let (p, v) = (i / vcs, i % vcs);
            let header = self.inputs[p].vcs[v]
                .fifo
                .front()
                .expect("Routing VC holds its head")
                .header;
            let port = if memoize && header.dest != self.node {
                match self.rc_cache[header.dest.index()] {
                    0 => {
                        let candidates = routing.route_set(mesh, self.node, &header);
                        if candidates.is_empty() {
                            // Unroutable under the current tables
                            // (possible mid-degradation, between a link
                            // death and the reroute): hold the head and
                            // retry next cycle; the watchdog reports it
                            // if no route ever comes.
                            self.rc_cache[header.dest.index()] = RC_UNROUTABLE;
                            continue;
                        }
                        debug_assert_eq!(
                            candidates.as_slice().len(),
                            1,
                            "deterministic routing yields one candidate off-destination"
                        );
                        let port = self.pick_candidate(candidates.as_slice());
                        if let Port::Net(dir) = port {
                            self.rc_cache[header.dest.index()] = dir.index() as u8 + 1;
                        }
                        port
                    }
                    RC_UNROUTABLE => continue,
                    d => Port::Net(Direction::ALL[(d - 1) as usize]),
                }
            } else {
                let candidates = routing.route_set(mesh, self.node, &header);
                if candidates.is_empty() {
                    continue;
                }
                // Candidate scoring reads only the output units; the
                // commit touches only this input VC — safe to do
                // in-place with the copied header.
                self.pick_candidate(candidates.as_slice())
            };
            let ivc = &mut self.inputs[p].vcs[v];
            ivc.route = Some(port);
            ivc.state = VcState::VcAlloc;
            ivc.since = cycle;
            self.lanes.routing &= !bit;
            self.lanes.vcalloc |= bit;
            match port {
                Port::Net(dir) => self.lanes.route_dir[dir.index()] |= bit,
                Port::Local(_) => self.lanes.route_local |= bit,
            }
            self.lanes.stamp(bit, cycle);
        }
    }

    /// Reference oracle for the RC request mask, re-derived from the
    /// per-VC structs exactly as the pre-lanes datapath did. Compiled
    /// into every debug/test build and asserted against the lane-built
    /// mask each cycle.
    #[cfg(any(test, debug_assertions))]
    fn reference_rc_mask(&self, cycle: u64) -> u64 {
        let vcs = self.inputs[0].vcs.len();
        let mut mask = 0u64;
        for (p, unit) in self.inputs.iter().enumerate() {
            for (v, ivc) in unit.vcs.iter().enumerate() {
                if ivc.state == VcState::Routing && ivc.since < cycle {
                    mask |= 1u64 << (p * vcs + v);
                }
            }
        }
        mask
    }

    /// Congestion-aware output selection among legal route candidates.
    fn pick_candidate(&self, candidates: &[Port]) -> Port {
        if candidates.len() == 1 {
            return candidates[0];
        }
        *candidates
            .iter()
            .max_by_key(|c| match c {
                Port::Local(_) => usize::MAX,
                Port::Net(dir) => self.outputs[dir.index()]
                    .as_ref()
                    .map(|o| {
                        let credits: usize = o.credits.iter().map(|c| *c as usize).sum();
                        let retx_free = o.total_capacity() - o.occupancy();
                        credits * 4 + retx_free
                    })
                    .unwrap_or(0),
            })
            .expect("candidates nonempty")
    }

    /// VA: grant output VCs to VCs that finished route computation.
    /// One grant per network output port per cycle; local ejection skips VA.
    /// The routing function supplies the dateline VC class each flit must
    /// allocate on a torus (everywhere else the class is unrestricted).
    pub fn va_stage(&mut self, cycle: u64, cfg: &SimConfig, routing: &Routing) {
        let vcs = cfg.vcs as usize;
        let ports = cfg.ports();
        assert!(
            ports * vcs <= 64,
            "requester bitmasks hold 64 (port, VC) pairs"
        );
        // Requesters that finished RC before this cycle. Snapshotted up
        // front: the local-eject commits below move bits out of the
        // vcalloc lane, but they sit in `route_local`, which is disjoint
        // from every `route_dir` lane, so the network masks built from
        // this snapshot cannot include them.
        let elig = self.lanes.vcalloc & !self.lanes.fresh_at(cycle);
        #[cfg(any(test, debug_assertions))]
        debug_assert_eq!(
            elig,
            self.reference_va_eligible(cycle),
            "VA lane mask diverged from per-VC struct state"
        );
        // Local-ejection VCs proceed straight to Active.
        let mut local = elig & self.lanes.route_local;
        while local != 0 {
            let i = local.trailing_zeros() as usize;
            local &= local - 1;
            let bit = 1u64 << i;
            let ivc = &mut self.inputs[i / vcs].vcs[i % vcs];
            ivc.state = VcState::Active;
            ivc.out_vc = None;
            ivc.since = cycle;
            self.lanes.vcalloc &= !bit;
            self.lanes.active |= bit;
            self.lanes.stamp(bit, cycle);
        }
        // Requester masks, one per network direction: bit `p*vcs + v` is
        // set when that input VC finished RC toward the direction and an
        // output VC is free for it. Stable for the rest of the stage: a
        // VA grant only claims a VC on the output it granted, each ivc
        // routes to exactly one direction, and each direction is visited
        // once.
        //
        // Without QoS domains every requester shares TDM domain 0 (all
        // slots open) and without a dateline scheme every class is
        // unrestricted, so `candidate_out_vc` collapses to "any output
        // VC unowned" — one predicate per direction instead of one per
        // requester.
        let uniform = matches!(cfg.qos, QosMode::None) && !matches!(routing, Routing::Topo(_));
        let mut req = [0u64; 4];
        for (d, slot) in self.outputs.iter().enumerate() {
            let Some(out) = slot.as_ref() else {
                continue;
            };
            let cand = elig & self.lanes.route_dir[d];
            if cand == 0 {
                continue;
            }
            if uniform {
                if out.vc_owner.iter().any(Option::is_none) {
                    req[d] = cand;
                }
                continue;
            }
            let mut m = cand;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let ivc = &self.inputs[i / vcs].vcs[i % vcs];
                let h = ivc.fifo.front().expect("head").header;
                // Strict TDM: the VC allocator is also time-multiplexed
                // across domains.
                let class = routing.vc_class(self.node, h.dest);
                if cfg.tdm_slot_open(h.vc.0, cycle)
                    && candidate_out_vc(out, &h, cfg, class).is_some()
                {
                    req[d] |= 1u64 << i;
                }
            }
        }
        #[cfg(any(test, debug_assertions))]
        debug_assert_eq!(
            req,
            self.reference_va_req(cycle, cfg, routing, elig),
            "VA request masks diverged from the reference datapath"
        );
        for (d, &mask) in req.iter().enumerate() {
            if self.outputs[d].is_none() {
                continue;
            }
            if let Some(winner) = self.va_arb[d].grant_masked(mask) {
                let (p, v) = (winner / vcs, winner % vcs);
                let header = self.inputs[p].vcs[v].fifo.front().expect("head").header;
                let class = routing.vc_class(self.node, header.dest);
                let out = self.outputs[d].as_mut().expect("output exists");
                let w = candidate_out_vc(out, &header, cfg, class).expect("checked above");
                out.vc_owner[w.index()] = Some(header_packet(&self.inputs[p].vcs[v]));
                let ivc = &mut self.inputs[p].vcs[v];
                ivc.out_vc = Some(w);
                ivc.state = VcState::Active;
                ivc.since = cycle;
                let bit = 1u64 << winner;
                self.lanes.vcalloc &= !bit;
                self.lanes.active |= bit;
                self.lanes.stamp(bit, cycle);
            }
        }
    }

    /// Reference oracle: VA-eligible requesters re-derived from the
    /// per-VC structs (`VcAlloc`, stamped before this cycle).
    #[cfg(any(test, debug_assertions))]
    fn reference_va_eligible(&self, cycle: u64) -> u64 {
        let vcs = self.inputs[0].vcs.len();
        let mut mask = 0u64;
        for (p, unit) in self.inputs.iter().enumerate() {
            for (v, ivc) in unit.vcs.iter().enumerate() {
                if ivc.state == VcState::VcAlloc && ivc.since < cycle {
                    mask |= 1u64 << (p * vcs + v);
                }
            }
        }
        mask
    }

    /// Reference oracle: per-direction VA request masks built exactly as
    /// the pre-lanes datapath did (per-requester TDM and output-VC
    /// probes), over the same eligibility snapshot the stage used.
    #[cfg(any(test, debug_assertions))]
    fn reference_va_req(
        &self,
        cycle: u64,
        cfg: &SimConfig,
        routing: &Routing,
        elig: u64,
    ) -> [u64; 4] {
        let vcs = cfg.vcs as usize;
        let mut req = [0u64; 4];
        for (p, unit) in self.inputs.iter().enumerate() {
            for (v, ivc) in unit.vcs.iter().enumerate() {
                if elig & (1u64 << (p * vcs + v)) == 0 {
                    continue;
                }
                let Some(Port::Net(dir)) = ivc.route else {
                    continue;
                };
                let Some(out) = self.outputs[dir.index()].as_ref() else {
                    continue;
                };
                let h = ivc.fifo.front().expect("head").header;
                let class = routing.vc_class(self.node, h.dest);
                if cfg.tdm_slot_open(h.vc.0, cycle)
                    && candidate_out_vc(out, &h, cfg, class).is_some()
                {
                    req[dir.index()] |= 1 << (p * vcs + v);
                }
            }
        }
        req
    }

    /// SA: pick at most one flit per output port and per input port,
    /// consume a credit and a retransmission slot, and queue the crossbar
    /// traversal for next cycle's ST. Returns credits to send upstream.
    /// (Test-friendly wrapper over [`Router::sa_stage_into`].)
    pub fn sa_stage(&mut self, cycle: u64, cfg: &SimConfig) -> Vec<CreditReturn> {
        let mut credits = Vec::new();
        self.sa_stage_into(cycle, cfg, &mut credits);
        credits
    }

    /// Allocation-free SA: credits to send upstream are appended to
    /// `credits` (not cleared first). Output ports are visited starting at
    /// `cycle % ports` — the same rotating-fairness order the old
    /// unconditionally-advancing round-robin produced, but stateless, so
    /// quiescent routers can skip the stage entirely without desyncing.
    pub fn sa_stage_into(&mut self, cycle: u64, cfg: &SimConfig, credits: &mut Vec<CreditReturn>) {
        let vcs = cfg.vcs as usize;
        let ports = cfg.ports();
        assert!(
            ports * vcs <= 64,
            "requester bitmasks hold 64 (port, VC) pairs"
        );
        // Requesters with an Active state (stamped before this cycle)
        // and a buffered head flit — the lane-level part of the old
        // per-VC predicate walk.
        let elig = self.lanes.active & !self.lanes.fresh_at(cycle) & self.lanes.head;
        // Requester masks, one per output port: bit `p*vcs + v` is set
        // when that input VC's head flit could cross to the port this
        // cycle. Every predicate input is stable for the rest of the
        // stage — an SA grant only mutates the books of the output it
        // granted, and each output is visited exactly once — except the
        // one-grant-per-input-port rule, enforced by clearing the
        // winner's input-port bits from every mask.
        let mut req = [0u64; 64];
        if elig != 0 {
            // Without QoS domains every TDM slot is open; the per-flit
            // probe only matters under `QosMode::Tdm`.
            let tdm_all = matches!(cfg.qos, QosMode::None);
            for (d, slot) in self.outputs.iter().enumerate() {
                let mut m = elig & self.lanes.route_dir[d];
                if m == 0 {
                    continue;
                }
                let Some(out) = slot.as_ref() else {
                    continue;
                };
                // The retransmission-occupancy headroom check is shared
                // by every requester of this output.
                if (out.occupancy() + self.pending_to_output[d] as usize) >= out.total_capacity() {
                    continue;
                }
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let ivc = &self.inputs[i / vcs].vcs[i % vcs];
                    // The whole crossbar is time-multiplexed: every
                    // crossing happens on the packet's domain slots.
                    if !tdm_all
                        && !cfg.tdm_slot_open(ivc.fifo.front().expect("head").header.vc.0, cycle)
                    {
                        continue;
                    }
                    let w = ivc.out_vc.expect("network route holds an out VC");
                    if out.has_slot(w) && out.credits[w.index()] > 0 {
                        req[d] |= 1u64 << i;
                    }
                }
            }
            // Local ejection: always crossbar-eligible (subject to TDM).
            let mut m = elig & self.lanes.route_local;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let ivc = &self.inputs[i / vcs].vcs[i % vcs];
                if !tdm_all
                    && !cfg.tdm_slot_open(ivc.fifo.front().expect("head").header.vc.0, cycle)
                {
                    continue;
                }
                let Some(route @ Port::Local(_)) = ivc.route else {
                    unreachable!("route_local lane implies a local route")
                };
                req[route.index()] |= 1u64 << i;
            }
        }
        #[cfg(any(test, debug_assertions))]
        debug_assert_eq!(
            req,
            self.reference_sa_req(cycle, cfg),
            "SA request masks diverged from the reference datapath"
        );
        // Visit output ports in rotating order for fairness.
        let first = (cycle as usize) % ports;
        for step in 0..ports {
            let q = (first + step) % ports;
            let out_port = Port::from_index(q);
            if let Some(winner) = self.sa_arb[q].grant_masked(req[q]) {
                let (p, v) = (winner / vcs, winner % vcs);
                let bit = 1u64 << winner;
                // One grant per input port: retire its other requesters.
                let pmask = ((1u64 << vcs) - 1) << (p * vcs);
                for m in req.iter_mut() {
                    *m &= !pmask;
                }
                let out_vc = self.inputs[p].vcs[v].out_vc;
                let flit = self.inputs[p].vcs[v]
                    .fifo
                    .pop_front()
                    .expect("eligible implies head");
                if self.inputs[p].vcs[v].fifo.is_empty() {
                    self.lanes.head &= !bit;
                }
                if let Port::Net(dir) = out_port {
                    let d = dir.index();
                    let w = out_vc.expect("net route");
                    let out = self.outputs[d].as_mut().expect("exists");
                    out.credits[w.index()] -= 1;
                    self.pending_to_output[d] += 1;
                }
                // Return a credit to whoever feeds this input port.
                if let Port::Net(in_dir) = Port::from_index(p) {
                    credits.push(CreditReturn {
                        in_dir,
                        vc: VcId(v as u8),
                    });
                }
                if flit.kind.closes_packet() {
                    self.release_vc(p, v, cycle);
                }
                self.st_pending.push(StMove {
                    flit,
                    out_port,
                    out_vc,
                    granted_at: cycle,
                });
            }
        }
    }

    /// Release input VC `(p, v)` after its tail departs, keeping the SoA
    /// lanes in lockstep with the struct-level state machine (which may
    /// immediately re-arm on a queued head).
    fn release_vc(&mut self, p: usize, v: usize, cycle: u64) {
        let vcs = self.inputs[0].vcs.len();
        let bit = 1u64 << (p * vcs + v);
        let ivc = &mut self.inputs[p].vcs[v];
        ivc.release(cycle);
        let rearmed = ivc.state == VcState::Routing;
        self.lanes.routing &= !bit;
        self.lanes.vcalloc &= !bit;
        self.lanes.active &= !bit;
        self.lanes.clear_route(bit);
        if rearmed {
            self.lanes.routing |= bit;
        }
        self.lanes.stamp(bit, cycle);
    }

    /// Reference oracle: per-output SA request masks built exactly as
    /// the pre-lanes datapath did (full per-VC predicate walk).
    #[cfg(any(test, debug_assertions))]
    fn reference_sa_req(&self, cycle: u64, cfg: &SimConfig) -> [u64; 64] {
        let vcs = cfg.vcs as usize;
        let ports = cfg.ports();
        let mut req = [0u64; 64];
        for p in 0..ports {
            for v in 0..vcs {
                let ivc = &self.inputs[p].vcs[v];
                if ivc.state != VcState::Active || ivc.since >= cycle {
                    continue;
                }
                let Some(flit) = ivc.fifo.front() else {
                    continue;
                };
                let Some(route) = ivc.route else {
                    continue;
                };
                if !cfg.tdm_slot_open(flit.header.vc.0, cycle) {
                    continue;
                }
                let eligible = match route {
                    Port::Local(_) => true,
                    Port::Net(dir) => {
                        let d = dir.index();
                        match self.outputs[d].as_ref() {
                            None => false,
                            Some(out) => {
                                let w = ivc.out_vc.expect("network route holds an out VC");
                                out.has_slot(w)
                                    && (out.occupancy() + self.pending_to_output[d] as usize)
                                        < out.total_capacity()
                                    && out.credits[w.index()] > 0
                            }
                        }
                    }
                };
                if eligible {
                    req[route.index()] |= 1 << (p * vcs + v);
                }
            }
        }
        req
    }

    /// ST: commit last cycle's SA winners to the output stage; local
    /// ejections are returned for delivery.
    /// (Test-friendly wrapper over [`Router::st_stage_into`].)
    pub fn st_stage(&mut self, cycle: u64) -> Vec<Ejection> {
        let mut ejections = Vec::new();
        self.st_stage_into(cycle, &mut ejections);
        ejections
    }

    /// Allocation-free ST: local ejections are appended to `ejections`
    /// (not cleared first).
    pub fn st_stage_into(&mut self, cycle: u64, ejections: &mut Vec<Ejection>) {
        let mut i = 0;
        while i < self.st_pending.len() {
            if self.st_pending[i].granted_at < cycle {
                let mv = self.st_pending.remove(i);
                match mv.out_port {
                    Port::Local(n) => ejections.push(Ejection {
                        flit: mv.flit,
                        local_port: n,
                    }),
                    Port::Net(dir) => {
                        let d = dir.index();
                        self.pending_to_output[d] -= 1;
                        let vc = mv.out_vc.expect("net move");
                        self.outputs[d]
                            .as_mut()
                            .expect("output exists")
                            .push(mv.flit, vc, cycle);
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    /// Whether any per-cycle pipeline stage (hold resolution, ST, SA,
    /// VA/RC) could act on this router: flits buffered in an input VC,
    /// flits paying an obfuscation stall, scrambles awaiting a partner,
    /// or crossbar moves in flight. Retransmission entries do *not* count:
    /// the launch/ACK machinery is driven per-link, not per-router.
    ///
    /// The simulator's active-set uses this to skip quiescent routers.
    /// Skipping is exact, not approximate: every stage's arbiters only
    /// advance on a grant, and a grant requires one of the conditions
    /// above, so a skipped router's state is bit-identical to having run
    /// the stages against no work.
    pub fn has_phase_work(&self) -> bool {
        self.lanes.head != 0
            || !self.st_pending.is_empty()
            || self
                .inputs
                .iter()
                .any(|u| !u.delayed.is_empty() || !u.pending_scrambles.is_empty())
    }

    /// Total network-input buffer occupancy (Fig. 11 input utilisation).
    pub fn network_input_occupancy(&self) -> usize {
        (0..4).map(|d| self.inputs[d].occupancy()).sum()
    }

    /// Deepest any single input unit (network or local) has ever been,
    /// in flits — the buffer-occupancy high-water mark for the metrics
    /// registry.
    pub fn input_high_water(&self) -> u64 {
        self.inputs
            .iter()
            .map(|u| u.occupancy_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Total retransmission-buffer occupancy (output utilisation).
    pub fn output_occupancy(&self) -> usize {
        self.outputs
            .iter()
            .flatten()
            .map(OutputUnit::occupancy)
            .sum()
    }

    /// Whether any output port is completely stalled: work is waiting for
    /// it (retransmission entries held, or input VCs routed toward it with
    /// buffered flits) but no delivery (ACK) has landed for `threshold`
    /// cycles — the signature of both retransmission livelock and credit
    /// back-pressure.
    pub fn has_blocked_port(&self, cycle: u64, threshold: u64) -> bool {
        for d in 0..4 {
            let Some(out) = self.outputs[d].as_ref() else {
                continue;
            };
            if cycle.saturating_sub(out.last_progress) < threshold {
                continue;
            }
            let dir = Direction::ALL[d];
            // The waiting work must itself have been waiting for the whole
            // progress drought, else a fresh flit after an idle period
            // would be a false positive.
            let stale_retx = out
                .entries
                .iter()
                .any(|e| cycle.saturating_sub(e.entered_at) >= threshold);
            let stale_input = self.inputs.iter().any(|u| {
                u.vcs.iter().any(|v| {
                    v.route == Some(Port::Net(dir))
                        && !v.fifo.is_empty()
                        && cycle.saturating_sub(v.since) >= threshold
                })
            });
            if stale_retx || stale_input {
                return true;
            }
        }
        false
    }

    /// Remove every flit belonging to a victim packet from this router's
    /// buffers (link quarantine / graceful degradation). Input FIFOs,
    /// descramble holds, crossbar moves, and retransmission entries are
    /// all swept; wormhole state machines forwarding a victim are reset
    /// exactly like a tail departure (re-arming on any queued survivor),
    /// and victim-owned output VCs are released. Returns one record per
    /// removed copy so the simulator can settle the credit books.
    pub fn purge_packets(&mut self, victims: &HashSet<PacketId>, cycle: u64) -> Vec<PurgedCopy> {
        let mut purged = Vec::new();
        for p in 0..self.inputs.len() {
            // Network inputs hold link-level credits; local (injection)
            // inputs do not.
            let in_dir = if p < 4 { Some(Direction::ALL[p]) } else { None };
            let site = |vc: VcId| in_dir.map(|d| CreditSite::Upstream(d, vc));
            let unit = &mut self.inputs[p];
            unit.delayed.retain(|d| {
                if victims.contains(&d.flit.packet) {
                    purged.push(PurgedCopy {
                        flit: d.flit.id,
                        site: site(d.vc),
                        from_retx: false,
                    });
                    false
                } else {
                    true
                }
            });
            unit.pending_scrambles.retain(|s| {
                if victims.contains(&s.flit.packet) {
                    purged.push(PurgedCopy {
                        flit: s.flit.id,
                        site: site(s.vc),
                        from_retx: false,
                    });
                    false
                } else {
                    true
                }
            });
            for v in 0..unit.vcs.len() {
                let vc = VcId(v as u8);
                let ivc = &mut unit.vcs[v];
                ivc.fifo.retain(|f| {
                    if victims.contains(&f.packet) {
                        purged.push(PurgedCopy {
                            flit: f.id,
                            site: site(vc),
                            from_retx: false,
                        });
                        false
                    } else {
                        true
                    }
                });
                if ivc.packet.is_some_and(|pk| victims.contains(&pk)) {
                    ivc.release(cycle);
                }
                if ivc.wire_packet.is_some_and(|pk| victims.contains(&pk)) {
                    // The rest of the victim's wire stream will never
                    // arrive; unblock the VC for the next packet's head.
                    ivc.wire_packet = None;
                    ivc.expected_seq = 0;
                }
            }
        }
        // Crossbar moves granted at SA: the credit was consumed at this
        // router's target output.
        let mut i = 0;
        while i < self.st_pending.len() {
            let mv = self.st_pending[i];
            if victims.contains(&mv.flit.packet) {
                let site = match (mv.out_port, mv.out_vc) {
                    (Port::Net(dir), Some(w)) => {
                        self.pending_to_output[dir.index()] -= 1;
                        Some(CreditSite::SelfOutput(dir, w))
                    }
                    _ => None,
                };
                purged.push(PurgedCopy {
                    flit: mv.flit.id,
                    site,
                    from_retx: false,
                });
                self.st_pending.remove(i);
            } else {
                i += 1;
            }
        }
        // Retransmission entries toward any direction, plus output-VC
        // ownership held by victims.
        for d in 0..4 {
            let dir = Direction::ALL[d];
            let Some(out) = self.outputs[d].as_mut() else {
                continue;
            };
            out.entries.retain(|e| {
                if victims.contains(&e.flit.packet) {
                    purged.push(PurgedCopy {
                        flit: e.flit.id,
                        site: Some(CreditSite::SelfOutput(dir, e.vc)),
                        from_retx: true,
                    });
                    false
                } else {
                    true
                }
            });
            for owner in out.vc_owner.iter_mut() {
                if owner.is_some_and(|pk| victims.contains(&pk)) {
                    *owner = None;
                }
            }
        }
        // The retains and releases above bypassed the stage methods;
        // re-derive the SoA lanes from the surviving struct state.
        self.rebuild_lanes(cycle);
        purged
    }

    /// Flits resident in this router (conservation checks).
    pub fn resident_flits(&self) -> usize {
        let inputs: usize = self
            .inputs
            .iter()
            .map(|u| u.occupancy() + u.delayed.len() + u.pending_scrambles.len())
            .sum();
        let outputs: usize = self.outputs.iter().flatten().map(|o| o.occupancy()).sum();
        inputs + outputs + self.st_pending.len()
    }

    /// Defence-in-depth for the fast-forward gate: once every activity
    /// bitmap reads clear, no input unit may still hold a timed release,
    /// no output unit may hold retransmission state or a stale VC
    /// ownership, and no crossbar traversal may be pending. Violation
    /// means a bitmap bug let state hide from the skip proof.
    pub fn is_skip_transparent(&self) -> bool {
        self.inputs
            .iter()
            .all(|u| u.next_timed_event_at().is_none())
            && self
                .outputs
                .iter()
                .flatten()
                .all(OutputUnit::is_skip_transparent)
            && self.st_pending.is_empty()
    }
}

fn header_packet(ivc: &crate::input::InputVc) -> noc_types::PacketId {
    ivc.packet.expect("VC in VA holds a packet")
}

/// First free output VC usable by a packet with header `h` (TDM keeps
/// packets inside their domain's VC partition; the dateline scheme keeps
/// torus packets inside their class's VC half). A free function over the
/// output unit (rather than a `&self` method) so the VA grant predicate
/// can call it while the arbiter itself is mutably borrowed.
fn candidate_out_vc(
    out: &OutputUnit,
    h: &noc_types::Header,
    cfg: &SimConfig,
    class: crate::routing::VcClass,
) -> Option<VcId> {
    let my_domain = cfg.domain_of_vc(h.vc.0);
    (0..cfg.vcs).map(VcId).find(|w| {
        out.vc_owner[w.index()].is_none()
            && cfg.domain_of_vc(w.0) == my_domain
            && class.admits(w.0, cfg.vcs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{FlitId, FlitKind, Header, PacketId};

    fn cfg() -> SimConfig {
        SimConfig::paper()
    }

    fn router() -> Router {
        let c = cfg();
        Router::new(NodeId(5), &c.mesh.clone(), &c)
    }

    fn head(dest: u16) -> Flit {
        Flit::head(
            FlitId(1),
            PacketId(1),
            FlitKind::Single,
            Header {
                src: NodeId(5),
                dest: NodeId(dest),
                vc: VcId(0),
                mem_addr: 0,
                thread: 0,
                len: 1,
            },
        )
    }

    #[test]
    fn center_router_has_four_outputs() {
        let r = router(); // node 5 = (1,1): all four neighbours
        assert!(r.outputs.iter().all(Option::is_some));
    }

    #[test]
    fn corner_router_missing_outputs() {
        let c = cfg();
        let r = Router::new(NodeId(0), &c.mesh.clone(), &c);
        // (0,0): east and north exist; west and south do not.
        assert!(r.outputs[Direction::East.index()].is_some());
        assert!(r.outputs[Direction::North.index()].is_some());
        assert!(r.outputs[Direction::West.index()].is_none());
        assert!(r.outputs[Direction::South.index()].is_none());
    }

    #[test]
    fn five_stage_progression_single_flit() {
        let c = cfg();
        let mesh = c.mesh.clone();
        let routing = Routing::Xy;
        let mut r = router();
        // Cycle 0: BW.
        r.buffer_write(Port::Local(0), VcId(0), head(6), 0);
        assert_eq!(r.inputs[4].vcs[0].state, VcState::Routing);
        // Same cycle RC must not fire (since == cycle).
        r.rc_stage(0, &mesh, &routing, 0);
        assert_eq!(r.inputs[4].vcs[0].state, VcState::Routing);
        // Cycle 1: RC.
        r.rc_stage(1, &mesh, &routing, 0);
        assert_eq!(r.inputs[4].vcs[0].state, VcState::VcAlloc);
        assert_eq!(r.inputs[4].vcs[0].route, Some(Port::Net(Direction::East)));
        // Cycle 2: VA.
        r.va_stage(2, &c, &Routing::Xy);
        assert_eq!(r.inputs[4].vcs[0].state, VcState::Active);
        let w = r.inputs[4].vcs[0].out_vc.expect("granted");
        assert_eq!(
            r.outputs[Direction::East.index()]
                .as_ref()
                .unwrap()
                .vc_owner[w.index()],
            Some(PacketId(1))
        );
        // Cycle 3: SA.
        let credits = r.sa_stage(3, &c);
        assert!(credits.is_empty(), "local input returns no credits");
        assert_eq!(r.st_pending.len(), 1);
        assert!(r.inputs[4].vcs[0].fifo.is_empty());
        assert_eq!(r.inputs[4].vcs[0].state, VcState::Idle, "tail released VC");
        // Cycle 4: ST.
        let ej = r.st_stage(4);
        assert!(ej.is_empty());
        let out = r.outputs[Direction::East.index()].as_ref().unwrap();
        assert_eq!(out.occupancy(), 1);
        // Credit consumed at SA.
        assert_eq!(out.credits[w.index()], c.vc_depth - 1);
    }

    #[test]
    fn local_delivery_ejects() {
        let c = cfg();
        let mesh = c.mesh.clone();
        let mut r = router();
        r.buffer_write(Port::Net(Direction::West), VcId(1), head(5), 0);
        r.rc_stage(1, &mesh, &Routing::Xy, 0);
        assert_eq!(r.inputs[1].vcs[1].route, Some(Port::Local(0)));
        r.va_stage(2, &c, &Routing::Xy);
        assert_eq!(r.inputs[1].vcs[1].state, VcState::Active);
        let credits = r.sa_stage(3, &c);
        assert_eq!(credits.len(), 1, "network input returns a credit");
        assert_eq!(credits[0].in_dir, Direction::West);
        let ej = r.st_stage(4);
        assert_eq!(ej.len(), 1);
        assert_eq!(ej[0].local_port, 0);
    }

    #[test]
    fn sa_respects_retx_capacity() {
        let c = cfg();
        let mesh = c.mesh.clone();
        let mut r = router();
        // Fill the east output retransmission buffer completely.
        for i in 0..c.retx_depth {
            let f = Flit::head(
                FlitId(100 + i as u64),
                PacketId(100 + i as u64),
                FlitKind::Single,
                Header {
                    src: NodeId(5),
                    dest: NodeId(6),
                    vc: VcId(0),
                    mem_addr: 0,
                    thread: 0,
                    len: 1,
                },
            );
            r.outputs[Direction::East.index()]
                .as_mut()
                .unwrap()
                .push(f, VcId(0), 0);
        }
        r.buffer_write(Port::Local(0), VcId(0), head(6), 0);
        r.rc_stage(1, &mesh, &Routing::Xy, 0);
        r.va_stage(2, &c, &Routing::Xy);
        r.sa_stage(3, &c);
        assert!(
            r.st_pending.is_empty(),
            "SA must not overcommit a full retransmission buffer"
        );
    }

    #[test]
    fn two_inputs_one_output_single_grant_per_cycle() {
        let c = cfg();
        let mesh = c.mesh.clone();
        let mut r = router();
        let mk = |id: u64, vc: u8| {
            Flit::head(
                FlitId(id),
                PacketId(id),
                FlitKind::Single,
                Header {
                    src: NodeId(5),
                    dest: NodeId(6),
                    vc: VcId(vc),
                    mem_addr: 0,
                    thread: 0,
                    len: 1,
                },
            )
        };
        r.buffer_write(Port::Local(0), VcId(0), mk(1, 0), 0);
        r.buffer_write(Port::Local(1), VcId(1), mk(2, 1), 0);
        r.rc_stage(1, &mesh, &Routing::Xy, 0);
        r.va_stage(2, &c, &Routing::Xy);
        r.va_stage(3, &c, &Routing::Xy); // second requester granted next cycle
        r.sa_stage(4, &c);
        assert_eq!(r.st_pending.len(), 1, "one grant per output per cycle");
        r.st_stage(5);
        r.sa_stage(5, &c);
        assert_eq!(r.st_pending.len(), 1);
    }
}
