//! Router input units: per-VC buffers, the VC state machine, the threat
//! detector guarding the incoming link, and the descramble holding area for
//! scrambled L-Ob flits.

use noc_mitigation::ThreatDetector;
use noc_types::{Flit, FlitId, PacketId, Port, VcId};
use std::collections::VecDeque;

/// Wormhole state of one input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet assigned.
    Idle,
    /// Head flit buffered; route computation pending.
    Routing,
    /// Route known; waiting for an output VC.
    VcAlloc,
    /// Output VC held; flits flow through SA.
    Active,
}

/// One virtual channel's buffer and state.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// Buffered flits, head first.
    pub fifo: VecDeque<Flit>,
    /// Wormhole pipeline state.
    pub state: VcState,
    /// Computed output port (valid from `VcAlloc` onward).
    pub route: Option<Port>,
    /// Granted output VC (valid in `Active`; `None` for local ejection).
    pub out_vc: Option<VcId>,
    /// Packet the wormhole state machine is currently forwarding.
    pub packet: Option<PacketId>,
    /// Packet currently being *accepted off the wire* (may run ahead of
    /// `packet`: a tail can arrive while the head still sits in VA).
    pub wire_packet: Option<PacketId>,
    /// Next expected flit sequence for `wire_packet` (go-back-N receive
    /// ordering: out-of-sequence arrivals are NACKed).
    pub expected_seq: u8,
    /// Cycle the state last changed (pipeline-stage pacing).
    pub since: u64,
}

impl InputVc {
    fn new() -> Self {
        Self {
            fifo: VecDeque::new(),
            state: VcState::Idle,
            route: None,
            out_vc: None,
            packet: None,
            wire_packet: None,
            expected_seq: 0,
            since: cycle_zero(),
        }
    }

    /// Free the VC after its tail flit departs. If the next packet's head
    /// is already queued behind it, re-arm the state machine immediately.
    pub fn release(&mut self, cycle: u64) {
        self.state = VcState::Idle;
        self.route = None;
        self.out_vc = None;
        self.packet = None;
        self.since = cycle;
        if let Some(front) = self.fifo.front() {
            debug_assert!(front.kind.carries_header(), "stream must resume at a head");
            self.state = VcState::Routing;
            self.packet = Some(front.packet);
        }
    }

    /// Buffered flit count.
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }
}

fn cycle_zero() -> u64 {
    0
}

/// A scrambled flit waiting for its XOR partner.
#[derive(Debug, Clone, Copy)]
pub struct PendingScramble {
    /// The held flit.
    pub flit: Flit,
    /// The scrambled flit (logical content).
    pub vc: VcId,
    /// Its input VC.
    pub partner: FlitId,
    /// The partner flit whose word is the XOR key.
    pub arrived: u64,
    /// Undo penalty still to pay once the partner's word is known.
    pub penalty: u32,
    /// Wire-acceptance order stamp (keeps the VC stream in order).
    pub order: u64,
}

/// A flit whose obfuscation undo stall is in progress: it enters the FIFO
/// at `ready` (paying the 1–3 cycle L-Ob penalty).
#[derive(Debug, Clone, Copy)]
pub struct DelayedEntry {
    /// Cycle the buffer write becomes due.
    pub ready: u64,
    /// Input VC the flit belongs to.
    pub vc: VcId,
    /// The held flit.
    pub flit: Flit,
    /// Wire-acceptance order stamp (keeps the VC stream in order).
    pub order: u64,
}

/// One input port (network or local).
#[derive(Debug)]
pub struct InputUnit {
    /// Per-VC buffers and wormhole state.
    pub vcs: Vec<InputVc>,
    /// Threat source detector (meaningful on network ports).
    pub detector: ThreatDetector,
    /// Flits paying an obfuscation-undo stall before buffer write.
    pub delayed: Vec<DelayedEntry>,
    /// Scrambled flits waiting for their partner's word.
    pub pending_scrambles: Vec<PendingScramble>,
    /// Recently seen wire words by flit id (XOR keys for descrambling):
    /// a fixed-capacity insertion-ordered ring. A hash map here would
    /// re-table under constant fresh-key churn; at ≤ 64 entries a linear
    /// scan is cheaper than hashing and never touches the allocator.
    pub(crate) seen_words: Vec<(FlitId, u64)>,
    /// Index of the oldest ring entry (the next eviction slot).
    pub(crate) seen_head: usize,
    /// Monotonic wire-acceptance counter for order stamps.
    pub(crate) next_order: u64,
    /// Last fault classification reported for the guarded link (event
    /// deduplication).
    pub reported_class: noc_mitigation::FaultClass,
    /// Deepest total buffer occupancy this unit ever reached (flits),
    /// maintained by `Router::buffer_write` for the metrics registry.
    pub occupancy_high_water: u64,
}

/// How many partner words to remember for descrambling.
const SEEN_WORDS_CAP: usize = 64;

impl InputUnit {
    /// Construct an input unit with `vcs` virtual channels.
    pub fn new(vcs: u8, detector: ThreatDetector) -> Self {
        Self {
            vcs: (0..vcs).map(|_| InputVc::new()).collect(),
            detector,
            delayed: Vec::new(),
            pending_scrambles: Vec::new(),
            seen_words: Vec::with_capacity(SEEN_WORDS_CAP),
            seen_head: 0,
            next_order: 0,
            reported_class: noc_mitigation::FaultClass::None,
            occupancy_high_water: 0,
        }
    }

    /// Next wire-acceptance order stamp.
    pub fn take_order(&mut self) -> u64 {
        let o = self.next_order;
        self.next_order += 1;
        o
    }

    /// Total buffered flits across VCs (input-port utilisation statistic).
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(InputVc::occupancy).sum()
    }

    /// Free slots in `vc`'s FIFO given the configured depth, counting
    /// in-flight commitments (delayed + pending scrambles bound for it).
    pub fn free_slots(&self, vc: VcId, depth: usize) -> usize {
        let committed = self.vcs[vc.index()].occupancy()
            + self.delayed.iter().filter(|d| d.vc == vc).count()
            + self.pending_scrambles.iter().filter(|p| p.vc == vc).count();
        depth.saturating_sub(committed)
    }

    /// Earliest future cycle at which this unit acts on a *timer* rather
    /// than an arrival: the soonest delayed-entry (L-Ob undo stall)
    /// release. Pending scrambles wait on a partner flit, not on time, so
    /// they do not contribute. Feeds the fast-forward engine's
    /// defence-in-depth audit — a unit holding a timed release can never
    /// be part of a provably idle network, since its held flit is also
    /// counted resident.
    pub fn next_timed_event_at(&self) -> Option<u64> {
        self.delayed.iter().map(|d| d.ready).min()
    }

    /// Record a delivered flit's word for later descrambling use.
    pub fn remember_word(&mut self, id: FlitId, word: u64) {
        if let Some(e) = self.seen_words.iter_mut().find(|e| e.0 == id) {
            e.1 = word;
        } else if self.seen_words.len() < SEEN_WORDS_CAP {
            self.seen_words.push((id, word));
        } else {
            self.seen_words[self.seen_head] = (id, word);
            self.seen_head = (self.seen_head + 1) % SEEN_WORDS_CAP;
        }
    }

    /// Whether a word for `id` is remembered.
    pub fn lookup_word(&self, id: FlitId) -> Option<u64> {
        self.seen_words.iter().find(|e| e.0 == id).map(|e| e.1)
    }

    /// Move descrambles whose partner has arrived into the delayed queue.
    pub fn resolve_scrambles(&mut self, cycle: u64) {
        let mut i = 0;
        while i < self.pending_scrambles.len() {
            let p = self.pending_scrambles[i];
            if self.lookup_word(p.partner).is_some() {
                self.pending_scrambles.swap_remove(i);
                self.delayed.push(DelayedEntry {
                    ready: cycle + p.penalty as u64,
                    vc: p.vc,
                    flit: p.flit,
                    order: p.order,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Pop delayed entries that are ready for buffer write. An entry only
    /// releases when no *older* same-VC flit is still held (delayed or
    /// waiting on a scramble partner), so each VC's stream is written in
    /// wire-acceptance order even when undo penalties differ.
    pub fn take_ready_delayed(&mut self, cycle: u64) -> Vec<(VcId, Flit)> {
        let mut out = Vec::new();
        self.take_ready_delayed_into(cycle, &mut out);
        out
    }

    /// Allocation-free [`InputUnit::take_ready_delayed`]: released flits
    /// are appended to `out` (not cleared first).
    pub fn take_ready_delayed_into(&mut self, cycle: u64, out: &mut Vec<(VcId, Flit)>) {
        loop {
            let mut candidate: Option<usize> = None;
            for (i, d) in self.delayed.iter().enumerate() {
                if d.ready > cycle {
                    continue;
                }
                let blocked = self
                    .delayed
                    .iter()
                    .any(|e| e.vc == d.vc && e.order < d.order)
                    || self
                        .pending_scrambles
                        .iter()
                        .any(|p| p.vc == d.vc && p.order < d.order);
                if blocked {
                    continue;
                }
                let better = match candidate {
                    Some(c) => d.order < self.delayed[c].order,
                    None => true,
                };
                if better {
                    candidate = Some(i);
                }
            }
            match candidate {
                Some(i) => {
                    let d = self.delayed.remove(i);
                    out.push((d.vc, d.flit));
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_mitigation::DetectorConfig;
    use noc_types::{FlitKind, Header, NodeId};

    fn flit(seq: u8) -> Flit {
        let h = Header {
            src: NodeId(0),
            dest: NodeId(1),
            vc: VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 4,
        };
        if seq == 0 {
            Flit::head(FlitId(seq as u64), PacketId(1), FlitKind::Head, h)
        } else {
            Flit::payload(FlitId(seq as u64), PacketId(1), FlitKind::Body, seq, h, 7)
        }
    }

    fn unit() -> InputUnit {
        InputUnit::new(4, ThreatDetector::new(DetectorConfig::default()))
    }

    #[test]
    fn occupancy_counts_all_vcs() {
        let mut u = unit();
        u.vcs[0].fifo.push_back(flit(0));
        u.vcs[2].fifo.push_back(flit(1));
        assert_eq!(u.occupancy(), 2);
    }

    #[test]
    fn free_slots_respects_commitments() {
        let mut u = unit();
        u.vcs[0].fifo.push_back(flit(0));
        u.delayed.push(DelayedEntry {
            ready: 5,
            vc: VcId(0),
            flit: flit(1),
            order: 0,
        });
        assert_eq!(u.free_slots(VcId(0), 4), 2);
        assert_eq!(u.free_slots(VcId(1), 4), 4);
    }

    #[test]
    fn seen_words_are_bounded() {
        let mut u = unit();
        for i in 0..(SEEN_WORDS_CAP as u64 + 10) {
            u.remember_word(FlitId(i), i);
        }
        assert!(u.lookup_word(FlitId(0)).is_none(), "oldest evicted");
        assert_eq!(
            u.lookup_word(FlitId(SEEN_WORDS_CAP as u64 + 9)),
            Some(SEEN_WORDS_CAP as u64 + 9)
        );
    }

    #[test]
    fn scramble_resolves_when_partner_arrives() {
        let mut u = unit();
        u.pending_scrambles.push(PendingScramble {
            flit: flit(1),
            vc: VcId(0),
            partner: FlitId(99),
            arrived: 10,
            penalty: 2,
            order: 0,
        });
        u.resolve_scrambles(11);
        assert_eq!(u.pending_scrambles.len(), 1, "partner unknown: still held");
        u.remember_word(FlitId(99), 0xABCD);
        u.resolve_scrambles(12);
        assert!(u.pending_scrambles.is_empty());
        assert_eq!(u.delayed.len(), 1);
        assert_eq!(u.delayed[0].ready, 14, "pays the 2-cycle penalty");
        // Not ready before the stall elapses.
        assert!(u.take_ready_delayed(13).is_empty());
        let ready = u.take_ready_delayed(14);
        assert_eq!(ready.len(), 1);
    }

    #[test]
    fn vc_release_resets_wormhole_state_only() {
        let mut vc = InputVc::new();
        vc.state = VcState::Active;
        vc.packet = Some(PacketId(3));
        vc.wire_packet = Some(PacketId(4));
        vc.expected_seq = 2;
        vc.release(50);
        assert_eq!(vc.state, VcState::Idle);
        assert_eq!(vc.packet, None);
        assert_eq!(vc.since, 50);
        // Wire-side acceptance state belongs to the link protocol and is
        // untouched: the next packet may already be arriving.
        assert_eq!(vc.wire_packet, Some(PacketId(4)));
        assert_eq!(vc.expected_seq, 2);
    }

    #[test]
    fn vc_release_rearms_on_queued_head() {
        let mut vc = InputVc::new();
        vc.state = VcState::Active;
        vc.packet = Some(PacketId(1));
        // A second packet's head is already queued behind the active one.
        let h = Header {
            src: NodeId(0),
            dest: NodeId(1),
            vc: VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 1,
        };
        vc.fifo
            .push_back(Flit::head(FlitId(9), PacketId(2), FlitKind::Single, h));
        vc.release(50);
        assert_eq!(vc.state, VcState::Routing, "re-armed for the next head");
        assert_eq!(vc.packet, Some(PacketId(2)));
    }
}
