//! Messages exchanged between routers: flits on links, ACK/NACK returns,
//! and the event stream the simulator exposes to orchestration code.

use noc_ecc::Codeword;
use noc_mitigation::{FaultClass, LobPlan};
use noc_types::{Flit, FlitId, LinkId, NodeId, PacketId, VcId};

/// Obfuscation side-band metadata travelling with a flit. The paper assumes
/// the mitigation hardware itself is trustworthy; these control wires are
/// outside the trojan's reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObfWire {
    /// The transform applied to the wire word.
    pub plan: LobPlan,
    /// Ladder attempt number (0 = first obfuscated try).
    pub attempt: u32,
    /// For `Scramble`: the flit whose word is the XOR key.
    pub partner: Option<FlitId>,
}

/// A flit in flight on a link: the logical flit (simulator bookkeeping),
/// the physical codeword (what faults corrupt), and side-band metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlit {
    /// The logical flit (simulator bookkeeping).
    pub flit: Flit,
    /// Codeword as launched (pre-fault); the fault layer transforms it on
    /// delivery.
    pub codeword: Codeword,
    /// The (possibly obfuscated) data word on the wire — the trojan's view.
    pub wire_word: u64,
    /// Downstream input VC this flit is destined for.
    pub vc: VcId,
    /// Obfuscation side-band, when the flit was transformed at launch.
    pub obf: Option<ObfWire>,
}

/// ACK/NACK returned on the reverse control wires one cycle after delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckKind {
    /// Delivered cleanly; the upstream retransmission slot is released.
    Ack {
        /// The plan that crossed cleanly, for the upstream L-Ob's log.
        obf_success: Option<LobPlan>,
    },
    /// Uncorrectable fault: replay.
    Nack {
        /// `Some(n)` when the downstream detector wants ladder attempt `n`.
        lob_attempt: Option<u32>,
    },
}

/// One ACK/NACK message in flight on the reverse channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckMsg {
    /// The flit being acknowledged.
    pub flit: FlitId,
    /// ACK or NACK, with mitigation side-band.
    pub kind: AckKind,
}

/// One step in a traced packet's journey (see `SimConfig::trace_packet`).
/// Forensic observability: replaying a victim packet's trace shows exactly
/// where the trojan hit it and which obfuscation got it through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A flit of the traced packet entered a core's injection queue.
    Injected {
        /// Simulation cycle of the event.
        cycle: u64,
        /// The flit in question.
        flit: FlitId,
        /// Injecting core index.
        core: u16,
    },
    /// A flit launched onto a link (with its obfuscation state).
    Launched {
        /// Simulation cycle of the event.
        cycle: u64,
        /// The flit in question.
        flit: FlitId,
        /// Link the flit was driven onto.
        link: LinkId,
        /// Obfuscation plan applied at launch, if any.
        obfuscated: Option<LobPlan>,
        /// Ladder attempt number of the obfuscation (0 when plain).
        attempt: u32,
    },
    /// A flit arrived at the far end of a link.
    Delivered {
        /// Simulation cycle of the event.
        cycle: u64,
        /// The flit in question.
        flit: FlitId,
        /// Link the flit arrived from.
        link: LinkId,
        /// ECC/detector verdict on the crossing.
        outcome: TraceOutcome,
    },
    /// A flit ejected at its destination core.
    Ejected {
        /// Simulation cycle of the event.
        cycle: u64,
        /// The flit in question.
        flit: FlitId,
        /// Router whose local port ejected the flit.
        router: NodeId,
    },
}

/// ECC/detector outcome of one traced link crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Decoded without error.
    Clean,
    /// A single-bit upset was corrected in place.
    CorrectedSingleBit,
    /// NACKed: uncorrectable fault (or receive-order violation).
    Nacked {
        /// Whether the detector asked the upstream to obfuscate the retry.
        lob_requested: bool,
    },
}

/// Events surfaced to the orchestration layer (rerouting decisions, figure
/// harnesses, tests).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A packet's tail flit reached its destination core.
    PacketDelivered {
        /// The delivered packet.
        packet: PacketId,
        /// Source router.
        src: NodeId,
        /// Destination router.
        dest: NodeId,
        /// Injection cycle.
        injected_at: u64,
        /// Delivery cycle (tail ejection).
        delivered_at: u64,
    },
    /// The threat detector scheduled a BIST scan of a link.
    BistRan {
        /// The scanned link.
        link: LinkId,
        /// Whether the scan found the wires healthy.
        passed: bool,
        /// Cycle the scan was triggered.
        cycle: u64,
    },
    /// The detector's classification of a link changed.
    LinkClassified {
        /// The classified link.
        link: LinkId,
        /// New fault classification.
        class: FaultClass,
        /// Cycle of the change.
        cycle: u64,
    },
    /// An obfuscation method crossed a compromised link cleanly.
    ObfuscationSucceeded {
        /// The protected link.
        link: LinkId,
        /// The plan that crossed cleanly.
        plan: LobPlan,
        /// Cycle of the clean crossing.
        cycle: u64,
    },
    /// A retransmission entry exhausted its retry budget and was escalated
    /// to forced obfuscation (mitigation available, not yet obfuscated).
    RetryBudgetEscalated {
        /// Link whose entry blew its budget.
        link: LinkId,
        /// The flit being escalated.
        flit: FlitId,
        /// Launch attempts at escalation time.
        attempts: u32,
        /// Cycle of the escalation.
        cycle: u64,
    },
    /// A link was quarantined: declared dead, its victim packets purged
    /// network-wide, and routing rebuilt around it.
    LinkQuarantined {
        /// The quarantined link.
        link: LinkId,
        /// Packets purged with it.
        dropped_packets: u64,
        /// Flits purged with it.
        dropped_flits: u64,
        /// Cycle of the quarantine.
        cycle: u64,
    },
    /// The deadlock/livelock watchdog tripped during a guarded run.
    WatchdogTripped {
        /// The structured stall diagnosis.
        report: crate::watchdog::StallReport,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_kinds_distinguish_replay_policy() {
        let plain = AckKind::Nack { lob_attempt: None };
        let escalated = AckKind::Nack {
            lob_attempt: Some(1),
        };
        assert_ne!(plain, escalated);
    }
}
