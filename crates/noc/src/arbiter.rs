//! Round-robin arbitration (the paper's allocator discipline).

/// A round-robin arbiter over `n` requesters. The grant pointer advances
/// past the winner so every requester is served within `n` grants — the
/// starvation-freedom property the tests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin {
    pub(crate) next: usize,
    pub(crate) n: usize,
}

impl RoundRobin {
    /// An arbiter over `n` requesters, pointer at 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { next: 0, n }
    }

    /// Grant among the requesters for which `requesting(i)` is true,
    /// starting the search at the stored pointer. Returns the winner and
    /// advances the pointer past it.
    pub fn grant(&mut self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requesting(i) {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Grant among the requesters encoded as set bits of `mask` (bit `i`
    /// ⇔ requester `i` is requesting) — behaviourally identical to
    /// [`RoundRobin::grant`] with that predicate, but O(1) bit
    /// arithmetic instead of a predicate scan. Requires `n ≤ 64`.
    pub fn grant_masked(&mut self, mask: u64) -> Option<usize> {
        debug_assert!(self.n <= 64);
        debug_assert!(self.n == 64 || mask >> self.n == 0, "mask bits beyond n");
        if mask == 0 {
            return None;
        }
        let hi = mask >> self.next;
        let i = if hi != 0 {
            self.next + hi.trailing_zeros() as usize
        } else {
            (mask & ((1u64 << self.next) - 1)).trailing_zeros() as usize
        };
        self.next = (i + 1) % self.n;
        Some(i)
    }

    #[inline]
    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    /// Whether the arbiter has zero requesters (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_cycle_through_all_requesters() {
        let mut a = RoundRobin::new(4);
        let grants: Vec<_> = (0..8).map(|_| a.grant(|_| true).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut a = RoundRobin::new(4);
        assert_eq!(a.grant(|i| i == 2), Some(2));
        assert_eq!(a.grant(|i| i == 2), Some(2));
    }

    #[test]
    fn no_requesters_no_grant() {
        let mut a = RoundRobin::new(3);
        assert_eq!(a.grant(|_| false), None);
        // Pointer unchanged: next request at 0 wins.
        assert_eq!(a.grant(|_| true), Some(0));
    }

    #[test]
    fn masked_grant_matches_predicate_grant() {
        // Exhaustive over small masks: both arbiters, stepped in
        // lockstep, must pick identical winners and keep identical
        // pointers.
        for n in 1..=8usize {
            let mut a = RoundRobin::new(n);
            let mut b = RoundRobin::new(n);
            for round in 0u64..64 {
                let mask = (round.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 8) & ((1 << n) - 1);
                assert_eq!(
                    a.grant_masked(mask),
                    b.grant(|i| (mask >> i) & 1 == 1),
                    "n={n} mask={mask:b}"
                );
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn masked_grant_full_width() {
        let mut a = RoundRobin::new(64);
        assert_eq!(a.grant_masked(1 << 63), Some(63));
        assert_eq!(a.grant_masked(u64::MAX), Some(0));
        assert_eq!(a.grant_masked(0), None);
    }

    #[test]
    fn empty_mask_preserves_the_pointer_mid_sequence() {
        // The wavefront drives grant_masked every cycle, including
        // cycles where no lane requests; an empty wavefront step must
        // not perturb fairness (the pointer stays put), and a request
        // mask entirely below the pointer must wrap to its lowest bit.
        let mut a = RoundRobin::new(6);
        assert_eq!(a.grant_masked(0b10_0000), Some(5));
        let parked = a.clone();
        for _ in 0..3 {
            assert_eq!(a.grant_masked(0), None);
            assert_eq!(a, parked, "an empty mask must not advance the pointer");
        }
        // Pointer wrapped to 0 after granting the top requester, so a
        // low-bits-only mask is the hi != 0 path; park the pointer mid
        // range to force the wrap (hi == 0) path instead.
        a.next = 4;
        assert_eq!(a.grant_masked(0b0110), Some(1));
        assert_eq!(a.next, 2);
    }

    #[test]
    fn starvation_freedom() {
        // With everyone always requesting, each of the n requesters is
        // granted exactly once per n consecutive grants.
        let mut a = RoundRobin::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..25 {
            counts[a.grant(|_| true).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5), "{counts:?}");
    }
}
