//! On-line invariant checking (the NoCAlert idea the paper cites as [20]:
//! "other existing fault tolerant run-time invariant checkers … should
//! also prevent such an attack" — at minimum, they must never be confused
//! by one). The checker audits the micro-architectural state for protocol
//! violations; it is pure observation and never mutates the network.
//!
//! Production use: call [`crate::sim::Simulator::check_invariants`]
//! periodically in long soak runs, or after every cycle in tests.

use crate::config::SimConfig;
use crate::input::VcState;
use crate::router::Router;

/// One detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Router where the violation was observed.
    pub router: u16,
    /// Human-readable description of the violated invariant.
    pub what: String,
}

/// Audit one router against the flow-control and wormhole invariants.
pub fn check_router(router: &Router, cfg: &SimConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut violate = |what: String| {
        out.push(Violation {
            router: router.node.0,
            what,
        });
    };

    for (p, unit) in router.inputs.iter().enumerate() {
        for (v, ivc) in unit.vcs.iter().enumerate() {
            // I1: FIFO occupancy never exceeds the configured depth.
            if ivc.fifo.len() > cfg.vc_depth as usize {
                violate(format!(
                    "input {p} vc {v}: {} flits exceed depth {}",
                    ivc.fifo.len(),
                    cfg.vc_depth
                ));
            }
            // I2: a VC past Idle owns a packet and (except Idle) holds or
            // awaits its flits coherently.
            match ivc.state {
                VcState::Idle => {
                    if ivc.out_vc.is_some() {
                        violate(format!("input {p} vc {v}: idle VC holds an output VC"));
                    }
                }
                VcState::Routing | VcState::VcAlloc | VcState::Active => {
                    if ivc.packet.is_none() {
                        violate(format!("input {p} vc {v}: busy VC without a packet"));
                    }
                    if ivc.state != VcState::Routing && ivc.route.is_none() {
                        violate(format!("input {p} vc {v}: post-RC VC without a route"));
                    }
                }
            }
            // I3: flits buffered in one VC belong to at most... wormhole
            // permits queued packets back-to-back, but every flit run must
            // be contiguous per packet: no interleaving of two packets.
            let mut seen_packets = Vec::new();
            for f in &ivc.fifo {
                match seen_packets.last() {
                    Some(&last) if last == f.packet => {}
                    _ => {
                        if seen_packets.contains(&f.packet) {
                            violate(format!("input {p} vc {v}: interleaved packets in FIFO"));
                        }
                        seen_packets.push(f.packet);
                    }
                }
            }
        }
    }

    for (d, out_unit) in router.outputs.iter().enumerate() {
        let Some(o) = out_unit.as_ref() else { continue };
        // I4: credits never exceed the downstream buffer depth.
        for (v, c) in o.credits.iter().enumerate() {
            if *c > cfg.vc_depth {
                violate(format!("output {d} vc {v}: {c} credits exceed depth"));
            }
        }
        // I5: retransmission occupancy within capacity.
        if o.occupancy() > o.total_capacity() {
            violate(format!(
                "output {d}: retx occupancy {} exceeds capacity {}",
                o.occupancy(),
                o.total_capacity()
            ));
        }
        // I6: every owned output VC belongs to some in-flight packet — and
        // no two output VCs are owned by the same packet at this output.
        let mut owners: Vec<_> = o.vc_owner.iter().flatten().collect();
        let before = owners.len();
        owners.sort();
        owners.dedup();
        if owners.len() != before {
            violate(format!("output {d}: one packet owns two output VCs"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Mesh, NodeId, PacketId, VcId};

    fn fresh() -> (Router, SimConfig) {
        let cfg = SimConfig::paper();
        (Router::new(NodeId(5), &cfg.mesh.clone(), &cfg), cfg)
    }

    #[test]
    fn fresh_router_is_clean() {
        let (r, cfg) = fresh();
        assert!(check_router(&r, &cfg).is_empty());
    }

    #[test]
    fn credit_overflow_is_flagged() {
        let (mut r, cfg) = fresh();
        r.outputs[0].as_mut().unwrap().credits[1] = cfg.vc_depth + 1;
        let v = check_router(&r, &cfg);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("credits exceed"));
    }

    #[test]
    fn idle_vc_with_output_vc_is_flagged() {
        let (mut r, cfg) = fresh();
        r.inputs[0].vcs[2].out_vc = Some(VcId(1));
        let v = check_router(&r, &cfg);
        assert!(v.iter().any(|v| v.what.contains("idle VC holds")));
    }

    #[test]
    fn duplicate_output_vc_ownership_is_flagged() {
        let (mut r, cfg) = fresh();
        let o = r.outputs[0].as_mut().unwrap();
        o.vc_owner[0] = Some(PacketId(9));
        o.vc_owner[1] = Some(PacketId(9));
        let v = check_router(&r, &cfg);
        assert!(v.iter().any(|v| v.what.contains("owns two output VCs")));
    }

    #[test]
    fn works_on_every_mesh_position() {
        let cfg = SimConfig::paper();
        let mesh = Mesh::paper();
        for n in 0..16u8 {
            let r = Router::new(NodeId(n as u16), &mesh, &cfg);
            assert!(check_router(&r, &cfg).is_empty());
        }
    }
}
