//! Simulation statistics: the time series behind Figs. 11/12 and the
//! aggregate counters behind Figs. 1, 2, and 10.

/// One per-interval sample of network pressure (Figs. 11/12 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Simulation cycle of the sample.
    pub cycle: u64,
    /// Flits buffered across all network input ports.
    pub input_util: usize,
    /// Flits held across all output retransmission buffers.
    pub output_util: usize,
    /// Flits waiting in core injection queues.
    pub injection_util: usize,
    /// Routers whose 4 cores all have full injection queues.
    pub routers_all_cores_full: usize,
    /// Routers with more than half their cores' queues full.
    pub routers_half_cores_full: usize,
    /// Routers with at least one completely stalled output port.
    pub routers_blocked_port: usize,
    /// Flits delivered since the previous snapshot (attack onset shows
    /// as this rate collapsing while occupancy climbs).
    pub delivered_flits: u64,
    /// NACK-driven retransmissions since the previous snapshot.
    pub retransmissions: u64,
    /// Uncorrectable ECC events since the previous snapshot.
    pub uncorrectable_faults: u64,
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Statistics time series, one entry per snapshot interval.
    pub snapshots: Vec<Snapshot>,
    /// Packets offered by the traffic source.
    pub injected_packets: u64,
    /// Packets whose tail reached its destination core.
    pub delivered_packets: u64,
    /// Flits offered.
    pub injected_flits: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Sum of packet latencies (injection → tail delivery).
    pub latency_sum: u64,
    /// Number of latency samples.
    pub latency_samples: u64,
    /// Largest observed packet latency.
    pub latency_max: u64,
    /// Latency histogram in power-of-two buckets: `histogram[i]` counts
    /// packets with latency in `[2^i, 2^(i+1))` (bucket 0 holds 0–1).
    pub latency_histogram: [u64; 32],
    /// Total retransmissions driven by NACKs, over all links.
    pub retransmissions: u64,
    /// Single-bit ECC corrections performed at link ingress.
    pub corrected_faults: u64,
    /// Detected-but-uncorrectable ECC events (each triggers a NACK).
    pub uncorrectable_faults: u64,
    /// BIST scans performed.
    pub bist_scans: u64,
    /// Flits explicitly discarded by link quarantine (graceful
    /// degradation accounts for every victim instead of leaking it).
    pub dropped_flits: u64,
    /// Packets explicitly discarded by link quarantine.
    pub dropped_packets: u64,
    /// Links quarantined after exhausting their escalation ladder.
    pub quarantined_links: u64,
    /// Retry-budget exhaustions that escalated to forced obfuscation.
    pub budget_escalations: u64,
}

impl SimStats {
    /// Mean packet latency in cycles (0 when nothing delivered).
    pub fn avg_latency(&self) -> f64 {
        if self.latency_samples == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.latency_samples as f64
        }
    }

    /// Delivered fraction of injected packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected_packets == 0 {
            1.0
        } else {
            self.delivered_packets as f64 / self.injected_packets as f64
        }
    }

    /// Throughput in delivered flits per cycle over `cycles`.
    pub fn throughput(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.delivered_flits as f64 / cycles as f64
        }
    }

    /// Record one packet latency into the aggregate fields.
    pub fn record_latency(&mut self, latency: u64) {
        self.latency_sum += latency;
        self.latency_samples += 1;
        self.latency_max = self.latency_max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(31);
        self.latency_histogram[bucket] += 1;
    }

    /// Approximate latency percentile (0.0–1.0) from the power-of-two
    /// histogram, interpolating *within* the winning bucket: the `k`-th
    /// of `n` samples in bucket `[lo, lo + w)` is estimated at the
    /// midpoint of its `1/n` slice, `lo + (2k − 1)·w / 2n`. The estimate
    /// always lies inside the bucket that actually holds the ranked
    /// sample (returning the bucket's upper bound, as this used to,
    /// overstated tail latency by up to 2×) and is cross-checked against
    /// [`crate::telemetry::QuantileSketch`] by property test. `q = 0.0`
    /// asks for the minimum and returns the bucket's lower bound.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.latency_samples == 0 {
            return 0;
        }
        // Bucket 0 holds [0, 2); bucket i ≥ 1 holds [2^i, 2^(i+1)).
        let bounds = |i: usize| -> (u64, u64) {
            if i == 0 {
                (0, 2)
            } else {
                (1u64 << i, 1u64 << i)
            }
        };
        if q == 0.0 {
            let first = self
                .latency_histogram
                .iter()
                .position(|&c| c > 0)
                .expect("samples exist");
            return bounds(first).0;
        }
        let rank = (q * self.latency_samples as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &count) in self.latency_histogram.iter().enumerate() {
            if seen + count >= rank {
                let (lo, w) = bounds(i);
                let k = rank - seen; // 1-based rank within this bucket
                let est = lo + ((2 * k - 1) * w) / (2 * count);
                // Never report past the observed maximum (the top bucket
                // is usually mostly empty above it).
                return est.min(self.latency_max);
            }
            seen += count;
        }
        self.latency_max
    }

    /// Flit conservation at quiescence: every injected flit was either
    /// delivered or explicitly dropped by a quarantine. Only meaningful
    /// when the network is drained (no resident or queued flits) — while
    /// flits are in flight the books are legitimately open.
    pub fn flits_conserved(&self) -> bool {
        self.delivered_flits + self.dropped_flits == self.injected_flits
    }

    /// Packet conservation at quiescence: delivered + dropped == injected.
    pub fn packets_conserved(&self) -> bool {
        self.delivered_packets + self.dropped_packets == self.injected_packets
    }

    /// Flits the simulation has fully accounted for so far (delivered or
    /// explicitly dropped). With `resident + queued` from the simulator,
    /// `accounted + resident + queued == injected` holds at any cycle
    /// boundary where no ACK is in flight, and exactly at quiescence.
    pub fn accounted_flits(&self) -> u64 {
        self.delivered_flits + self.dropped_flits
    }

    /// Clear the measurement counters while keeping the configuration-free
    /// time series — the standard warm-up discipline: run the warm-up,
    /// reset, then measure the steady state.
    pub fn reset_measurement(&mut self) {
        let snapshots = std::mem::take(&mut self.snapshots);
        *self = SimStats {
            snapshots,
            ..SimStats::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_interpolates_within_the_bucket() {
        // Regression: eight samples all in bucket [32, 64) used to
        // collapse every quantile to the bucket bound 64. The k-th of 8
        // is now estimated at 32 + (2k − 1)·32/16 = 32 + (2k − 1)·2.
        let mut s = SimStats::default();
        for _ in 0..8 {
            s.record_latency(63);
        }
        assert_eq!(s.latency_percentile(0.125), 34); // k = 1
        assert_eq!(s.latency_percentile(0.5), 46); // k = 4
        assert_eq!(s.latency_percentile(1.0), 62); // k = 8
    }

    #[test]
    fn percentile_never_exceeds_the_observed_maximum() {
        let mut s = SimStats::default();
        s.record_latency(40); // bucket [32, 64), midpoint 48 > max 40
        assert_eq!(s.latency_percentile(0.99), 40);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The pow-2 histogram and `telemetry::QuantileSketch` rank the
        /// same sample (same ceil-rank convention), so their estimates
        /// differ only by bucketing: within a factor of ~2 of each other
        /// (histogram buckets are octave-wide, sketch error is ≤ 1/32).
        #[test]
        fn percentile_tracks_the_telemetry_sketch(
            seed in any::<u64>(),
            n in 1usize..300,
            qi in 0usize..4,
        ) {
            let q = [0.5, 0.9, 0.99, 1.0][qi];
            let mut s = SimStats::default();
            let mut sk = crate::telemetry::QuantileSketch::new();
            let mut x = seed | 1;
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = x % 100_000;
                s.record_latency(v);
                sk.record(v);
            }
            let hist = s.latency_percentile(q);
            let sketch = sk.quantile(q);
            prop_assert!(
                hist <= (11 * sketch) / 5 + 2 && sketch <= (11 * hist) / 5 + 2,
                "histogram {hist} vs sketch {sketch} at q={q}"
            );
        }
    }

    #[test]
    fn latency_and_ratio_handle_empty_runs() {
        let s = SimStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
        assert_eq!(s.throughput(0), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            injected_packets: 10,
            delivered_packets: 5,
            delivered_flits: 20,
            latency_sum: 100,
            latency_samples: 5,
            latency_max: 40,
            ..SimStats::default()
        };
        assert_eq!(s.avg_latency(), 20.0);
        assert_eq!(s.delivery_ratio(), 0.5);
        assert_eq!(s.throughput(10), 2.0);
    }

    #[test]
    fn latency_histogram_and_percentiles() {
        let mut s = SimStats::default();
        for lat in [3u64, 5, 9, 17, 33, 65, 129, 257, 513, 1025] {
            s.record_latency(lat);
        }
        assert_eq!(s.latency_samples, 10);
        assert_eq!(s.latency_max, 1025);
        // Each sample lands in its own power-of-two bucket (3→[2,4),
        // 5→[4,8), …); the 5th of 10 samples is 33, estimated at the
        // midpoint of its bucket [32, 64) = 48, and the 9th is 513,
        // estimated at the midpoint of [512, 1024) = 768.
        assert_eq!(s.latency_percentile(0.5), 48);
        assert_eq!(s.latency_percentile(0.9), 768);
        // q = 0.0 reports the lower bound of the first non-empty bucket:
        // 3 lands in [2, 4), so the minimum estimate is 2, not 4.
        assert_eq!(s.latency_percentile(0.0), 2);
        let total: u64 = s.latency_histogram.iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn percentile_zero_reports_bucket_lower_bound() {
        // Regression: q = 0.0 used to return the bucket's *upper* bound,
        // overstating the observed minimum by up to 2×.
        let mut s = SimStats::default();
        s.record_latency(40); // bucket [32, 64)
        assert_eq!(s.latency_percentile(0.0), 32);
        // Bucket 0 holds latencies 0–1; its lower bound is 0.
        let mut t = SimStats::default();
        t.record_latency(1);
        assert_eq!(t.latency_percentile(0.0), 0);
    }

    #[test]
    fn reset_measurement_keeps_series_clears_counters() {
        let mut s = SimStats {
            injected_packets: 7,
            retransmissions: 3,
            snapshots: vec![Snapshot {
                cycle: 5,
                input_util: 1,
                output_util: 0,
                injection_util: 0,
                routers_all_cores_full: 0,
                routers_half_cores_full: 0,
                routers_blocked_port: 0,
                delivered_flits: 0,
                retransmissions: 0,
                uncorrectable_faults: 0,
            }],
            ..SimStats::default()
        };
        s.record_latency(12);
        s.reset_measurement();
        assert_eq!(s.injected_packets, 0);
        assert_eq!(s.retransmissions, 0);
        assert_eq!(s.latency_samples, 0);
        assert_eq!(s.snapshots.len(), 1, "time series kept");
    }

    #[test]
    fn percentile_of_empty_stats_is_zero() {
        assert_eq!(SimStats::default().latency_percentile(0.99), 0);
    }

    #[test]
    fn conservation_accounts_for_explicit_drops() {
        let mut s = SimStats {
            injected_flits: 10,
            delivered_flits: 7,
            injected_packets: 3,
            delivered_packets: 2,
            ..SimStats::default()
        };
        assert!(!s.flits_conserved());
        assert!(!s.packets_conserved());
        s.dropped_flits = 3;
        s.dropped_packets = 1;
        assert!(s.flits_conserved());
        assert!(s.packets_conserved());
        assert_eq!(s.accounted_flits(), 10);
    }
}
