//! Cycle-accurate simulator for a concentrated 2-D mesh NoC with
//! switch-to-switch SECDED links, retransmission buffers, fault injection
//! (transient / permanent / TASP hardware trojan), and the paper's threat
//! detector + L-Ob mitigation wired into every router.
//!
//! # Microarchitecture (paper configuration)
//!
//! * 4×4 mesh, concentration 4 (64 cores), two unidirectional links per
//!   neighbour pair (48 links);
//! * 4 virtual channels per port, 4 × 64-bit buffer slots per VC;
//! * 5-stage pipeline: **BW/RC → VA → SA → ST → LT** with credit-based
//!   flow control, XY dimension-order routing, round-robin arbitration;
//! * retransmission buffers after the crossbar (the paper's worst case) or
//!   per-VC, selected by [`config::RetxScheme`];
//! * a SECDED encode on every link egress and decode + threat-detector
//!   check on every ingress; NACKs replay from the retransmission buffer.
//!
//! # Phase ordering
//!
//! Each simulated cycle executes the stages in *reverse* pipeline order so
//! that data written by an earlier stage is not consumed until the next
//! cycle, giving each hop the full 5-cycle latency:
//!
//! 1. link delivery (LT completion: ECC decode, detector verdict, ACK/NACK);
//! 2. ACK/NACK processing at the upstream output;
//! 3. link launch (head of retransmission buffer enters the wire);
//! 4. ST — switch-allocation winners from the previous cycle cross the
//!    crossbar into the output stage;
//! 5. SA — round-robin switch allocation;
//! 6. VA — round-robin virtual-channel allocation;
//! 7. RC — route computation for freshly buffered head flits;
//! 8. injection — cores push flits into local input VCs (BW).

pub(crate) mod activeset;
pub mod arbiter;
pub mod config;
pub mod error;
pub mod fault;
pub mod input;
pub mod invariants;
pub mod link;
pub mod message;
pub mod metrics;
pub mod output;
pub(crate) mod par;
pub mod router;
pub mod routing;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod watchdog;

pub use config::{QosMode, RetxScheme, Sabotage, SimConfig, TraceConfig};
pub use error::SimError;
pub use fault::LinkFaults;
pub use message::SimEvent;
pub use metrics::{LinkMetrics, MetricsRegistry, RouterMetrics};
pub use sim::{Simulator, TrafficSource};
pub use snapshot::{
    config_hash, decode_stall_report, encode_stall_report, Checkpointer, SimSnapshot,
    SnapshotError, SNAPSHOT_VERSION,
};
pub use stats::{SimStats, Snapshot};
pub use telemetry::{
    default_rules, parse_prometheus, prom_value, prometheus_text, AlertClass, AlertEngine,
    AlertRecord, AlertRule, EngineHeartbeat, Heartbeat, PromSample, QuantileSketch, Telemetry,
    TelemetryConfig, TelemetryOut, WindowObs,
};
pub use trace::{ChannelSink, JsonlSink, Record, TraceKind, TraceRecorder, TraceSink};
pub use watchdog::{StallKind, StallReport, WatchdogConfig};
