//! Crash-safe checkpoint/restore: versioned, checksummed serialization of
//! the complete simulator state with bit-identical resume.
//!
//! # Format
//!
//! A snapshot file is `magic ‖ crc64 ‖ body` where the body is
//! `version ‖ config_hash ‖ cycle ‖ payload ‖ user_data`. The CRC-64
//! (ECMA-182, reflected — the CRC-64/XZ parameterisation) covers the
//! entire body and is verified *before* the version field is even looked
//! at, so any bit flip or truncation anywhere in the file surfaces as
//! [`SnapshotError::Corrupt`] rather than a bogus version diagnosis. A
//! CRC-clean body whose version differs from [`SNAPSHOT_VERSION`] is
//! rejected with [`SnapshotError::VersionMismatch`]; the payload encoding
//! is only ever interpreted under its own version.
//!
//! # Exactness
//!
//! The payload serialises every field of [`Simulator`] that influences
//! future cycles: router pipeline state (input VCs, detectors, descramble
//! holding areas, arbiter pointers, crossbar moves), output retransmission
//! buffers with credit and L-Ob state, link word-caches and in-flight
//! wires, per-link fault layers including trojan runtime and RNG streams,
//! quarantine and watchdog state, statistics, events, metrics, and the
//! trace ring. A restored simulator therefore continues bit-identically —
//! same golden fingerprints, same trace stream, same stats — at every
//! thread count (the parallel engine is stateless between cycles and is
//! re-planned after restore).
//!
//! Deliberately *not* serialised: the attached [`crate::trace::TraceSink`]
//! (an open file handle cannot be checkpointed — restore preserves the
//! simulator's current sink, or leaves none), and transient per-cycle
//! scratch buffers, which are empty at every cycle boundary.
//!
//! # Atomicity and rotation
//!
//! [`SimSnapshot::write_atomic`] writes to a temporary sibling, fsyncs,
//! and renames into place, so a crash mid-write never leaves a truncated
//! file under the final name. [`Checkpointer`] keeps a rotation of the K
//! most recent checkpoints and, on load, falls back across the rotation
//! past any file that fails validation.

use crate::config::{SimConfig, TraceConfig};
use crate::error::SimError;
use crate::input::{DelayedEntry, InputUnit, PendingScramble, VcState};
use crate::invariants::Violation;
use crate::message::{AckKind, AckMsg, LinkFlit, ObfWire, SimEvent, TraceEvent, TraceOutcome};
use crate::output::{OutputUnit, RetxEntry, SlotState};
use crate::router::{Router, StMove};
use crate::routing::{RouteTables, Routing};
use crate::sim::Simulator;
use crate::stats::{SimStats, Snapshot as StatsSnapshot};
use crate::trace::{Record, TraceRecorder};
use crate::watchdog::{StallKind, StallReport};
use noc_ecc::Codeword;
use noc_mitigation::{DetectorState, FaultClass, FaultRecordState, LobPlan};
use noc_trojan::{FieldMatch, TargetSpec, TaspConfig, TaspHt, TaspState, TaspStats};
use noc_types::{Direction, Flit, FlitId, FlitKind, Header, LinkId, NodeId, PacketId, Port, VcId};
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Version of the snapshot payload encoding this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File magic: identifies a snapshot before any other byte is trusted.
const MAGIC: [u8; 8] = *b"NOCSNAP\0";

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a snapshot could not be loaded or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes fail structural validation: bad magic, CRC mismatch,
    /// truncation, trailing garbage, or an impossible field value.
    Corrupt(String),
    /// The CRC-clean file was written by a different payload version.
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The snapshot was taken under a different simulator configuration
    /// (config hashes differ — restoring would silently corrupt state).
    ConfigMismatch {
        /// Config hash recorded in the snapshot.
        found: u64,
        /// Config hash of the simulator being restored.
        expected: u64,
    },
    /// An I/O error while reading or writing the snapshot file.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, this build reads {expected}")
            }
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot config hash {found:#018x} != simulator config hash {expected:#018x}"
            ),
            SnapshotError::Io(what) => write!(f, "snapshot io: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------
// Byte cursors (shared with traffic-source cursor implementations)
// ---------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u128`.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a bool as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Take a `u8` off the front of `input`, advancing it.
pub fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = input.split_first()?;
    *input = rest;
    Some(b)
}

/// Take a little-endian `u16`.
pub fn take_u16(input: &mut &[u8]) -> Option<u16> {
    let (head, rest) = input.split_at_checked(2)?;
    *input = rest;
    Some(u16::from_le_bytes(head.try_into().ok()?))
}

/// Take a little-endian `u32`.
pub fn take_u32(input: &mut &[u8]) -> Option<u32> {
    let (head, rest) = input.split_at_checked(4)?;
    *input = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

/// Take a little-endian `u64`.
pub fn take_u64(input: &mut &[u8]) -> Option<u64> {
    let (head, rest) = input.split_at_checked(8)?;
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

/// Take a little-endian `u128`.
pub fn take_u128(input: &mut &[u8]) -> Option<u128> {
    let (head, rest) = input.split_at_checked(16)?;
    *input = rest;
    Some(u128::from_le_bytes(head.try_into().ok()?))
}

/// Take a bool (rejects bytes other than 0/1).
pub fn take_bool(input: &mut &[u8]) -> Option<bool> {
    match take_u8(input)? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// Take an `f64` from its bit pattern.
pub fn take_f64(input: &mut &[u8]) -> Option<f64> {
    take_u64(input).map(f64::from_bits)
}

/// Take a length-prefixed byte string.
pub fn take_bytes(input: &mut &[u8]) -> Option<Vec<u8>> {
    let len = take_u64(input)? as usize;
    let (head, rest) = input.split_at_checked(len)?;
    *input = rest;
    Some(head.to_vec())
}

/// Take a length-prefixed UTF-8 string.
pub fn take_str(input: &mut &[u8]) -> Option<String> {
    String::from_utf8(take_bytes(input)?).ok()
}

/// Cursor over a payload that converts underruns and malformed values
/// into [`SnapshotError::Corrupt`].
struct Reader<'a> {
    buf: &'a [u8],
}

macro_rules! reader_take {
    ($name:ident, $ty:ty, $take:ident) => {
        fn $name(&mut self) -> Result<$ty, SnapshotError> {
            $take(&mut self.buf).ok_or_else(|| {
                SnapshotError::Corrupt(concat!("short read: ", stringify!($name)).into())
            })
        }
    };
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    reader_take!(u8, u8, take_u8);
    reader_take!(u16, u16, take_u16);
    reader_take!(u32, u32, take_u32);
    reader_take!(u64, u64, take_u64);
    reader_take!(u128, u128, take_u128);
    reader_take!(bool, bool, take_bool);
    reader_take!(f64, f64, take_f64);
    reader_take!(bytes, Vec<u8>, take_bytes);
    reader_take!(str, String, take_str);

    fn len(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.u64()? as usize)
    }

    /// Present/absent flag for `Option` fields.
    fn flag(&mut self) -> Result<bool, SnapshotError> {
        self.bool()
    }

    /// Reject trailing bytes once decoding claims to be done.
    fn finish(&self) -> Result<(), SnapshotError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing payload bytes",
                self.buf.len()
            )))
        }
    }
}

fn corrupt(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(what.into())
}

// ---------------------------------------------------------------------
// Hashes
// ---------------------------------------------------------------------

/// FNV-1a 64-bit hash (the repo's golden-fingerprint hash).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of a simulator configuration, for snapshot compatibility checks.
///
/// The thread count is masked out first: it selects an execution strategy,
/// not a semantic configuration — a snapshot taken at 8 threads restores
/// bit-identically at 1, and vice versa.
pub fn config_hash(cfg: &SimConfig) -> u64 {
    let mut c = cfg.clone();
    c.threads = None;
    fnv64(format!("{c:?}").as_bytes())
}

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

/// Slice-by-8 lookup tables: `tables[0]` is the classic byte-at-a-time
/// table; `tables[k]` advances a byte through `k` further zero bytes so
/// eight input bytes fold into the CRC with eight independent lookups.
const fn crc64_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC64_TABLES: [[u64; 256]; 8] = crc64_tables();

/// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout all-ones),
/// slice-by-8: checksumming must stay a rounding error next to the
/// simulation itself (the bench gate bounds checkpointing at < 1% of
/// sim time), and the byte-at-a-time loop was the dominant cost of
/// `SimSnapshot::to_bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = crc ^ u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        crc = CRC64_TABLES[7][(v & 0xff) as usize]
            ^ CRC64_TABLES[6][((v >> 8) & 0xff) as usize]
            ^ CRC64_TABLES[5][((v >> 16) & 0xff) as usize]
            ^ CRC64_TABLES[4][((v >> 24) & 0xff) as usize]
            ^ CRC64_TABLES[3][((v >> 32) & 0xff) as usize]
            ^ CRC64_TABLES[2][((v >> 40) & 0xff) as usize]
            ^ CRC64_TABLES[1][((v >> 48) & 0xff) as usize]
            ^ CRC64_TABLES[0][(v >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC64_TABLES[0][((crc ^ b as u64) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------
// SimSnapshot
// ---------------------------------------------------------------------

/// A complete simulator state capture.
///
/// Produced by [`Simulator::snapshot`], consumed by
/// [`Simulator::restore`]. The `user_data` section is an opaque blob for
/// the campaign/fuzz drivers (traffic-source cursors, progress records);
/// the simulator itself never interprets it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSnapshot {
    pub(crate) payload: Vec<u8>,
    pub(crate) config_hash: u64,
    pub(crate) cycle: u64,
    pub(crate) user_data: Vec<u8>,
}

impl SimSnapshot {
    /// Simulation cycle the snapshot was taken at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Hash of the configuration the snapshot was taken under.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// The driver-owned opaque section.
    pub fn user_data(&self) -> &[u8] {
        &self.user_data
    }

    /// The encoded simulator state. Two snapshots of bit-identical
    /// simulators have equal payloads, which is what the determinism
    /// tests compare.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Replace the driver-owned opaque section (traffic cursors, progress
    /// bookkeeping — anything the *driver* needs to resume alongside the
    /// simulator).
    pub fn set_user_data(&mut self, data: Vec<u8>) {
        self.user_data = data;
    }

    /// Serialise to the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.payload.len() + self.user_data.len() + 64);
        put_u32(&mut body, SNAPSHOT_VERSION);
        put_u64(&mut body, self.config_hash);
        put_u64(&mut body, self.cycle);
        put_bytes(&mut body, &self.payload);
        put_bytes(&mut body, &self.user_data);
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&MAGIC);
        put_u64(&mut out, crc64(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Parse the on-disk format. The CRC is verified before anything else
    /// is interpreted: any flip or truncation anywhere in the file is
    /// [`SnapshotError::Corrupt`], and only a CRC-clean body can be
    /// diagnosed as a version mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt("file shorter than header"));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut header = &bytes[MAGIC.len()..MAGIC.len() + 8];
        let stored = take_u64(&mut header).expect("8 bytes sliced");
        let body = &bytes[MAGIC.len() + 8..];
        let computed = crc64(body);
        if stored != computed {
            return Err(corrupt(format!(
                "crc mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut r = Reader::new(body);
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let config_hash = r.u64()?;
        let cycle = r.u64()?;
        let payload = r.bytes()?;
        let user_data = r.bytes()?;
        r.finish()?;
        Ok(Self {
            payload,
            config_hash,
            cycle,
            user_data,
        })
    }

    /// Write atomically: temp sibling → `sync_all` → rename, plus a
    /// best-effort fsync of the parent directory, so a crash at any point
    /// leaves either the previous file or the complete new one.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let io = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp).map_err(io)?;
            f.write_all(&self.to_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read and validate a snapshot file.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------
// Checkpointer
// ---------------------------------------------------------------------

/// Rotating on-disk checkpoint store: keeps the `keep` most recent
/// `ckpt-<cycle>.snap` files in a directory and loads the newest one that
/// validates, falling back across the rotation past corrupt files.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
    keep: usize,
}

impl Checkpointer {
    /// A checkpointer writing into `dir`, keeping the `keep` (≥ 1) most
    /// recent checkpoints.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        Self {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write `snap` as `ckpt-<cycle>.snap` (atomically) and prune the
    /// oldest checkpoints beyond the rotation size. Returns the path
    /// written.
    pub fn save(&self, snap: &SimSnapshot) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", self.dir.display())))?;
        let path = self.dir.join(format!("ckpt-{:012}.snap", snap.cycle()));
        snap.write_atomic(&path)?;
        let mut files = self.checkpoint_files()?;
        files.sort();
        while files.len() > self.keep {
            let victim = files.remove(0);
            let _ = std::fs::remove_file(victim);
        }
        Ok(path)
    }

    /// Load the most recent checkpoint that validates. Skips (but leaves
    /// in place) any file that fails CRC/version/parse checks — the
    /// fallback rotation. Returns `Ok(None)` when the directory is
    /// missing or holds no valid checkpoint.
    pub fn load_latest(&self) -> Result<Option<(PathBuf, SimSnapshot)>, SnapshotError> {
        let mut files = match self.checkpoint_files() {
            Ok(files) => files,
            Err(_) if !self.dir.exists() => return Ok(None),
            Err(e) => return Err(e),
        };
        files.sort();
        for path in files.into_iter().rev() {
            if let Ok(snap) = SimSnapshot::read(&path) {
                return Ok(Some((path, snap)));
            }
        }
        Ok(None)
    }

    fn checkpoint_files(&self) -> Result<Vec<PathBuf>, SnapshotError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", self.dir.display())))?;
        let mut files = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt-") && name.ends_with(".snap") {
                files.push(path);
            }
        }
        // Zero-padded cycle numbers make lexicographic order the cycle
        // order: the last entry is always the newest checkpoint.
        files.sort();
        Ok(files)
    }
}

// ---------------------------------------------------------------------
// StallReport codec (post-mortem user_data for campaign drivers)
// ---------------------------------------------------------------------

/// Append a [`StallReport`] to `out` in the snapshot byte format (the
/// campaign driver stores stall diagnoses in snapshot `user_data`).
pub fn encode_stall_report(out: &mut Vec<u8>, report: &StallReport) {
    put_u64(out, report.cycle);
    match report.kind {
        StallKind::GlobalDeadlock { idle_cycles } => {
            put_u8(out, 0);
            put_u64(out, idle_cycles);
        }
        StallKind::CreditStall {
            router,
            dir,
            oldest_age,
        } => {
            put_u8(out, 1);
            put_u16(out, router.0);
            put_u8(out, dir.index() as u8);
            put_u64(out, oldest_age);
        }
        StallKind::RetxLivelock {
            router,
            dir,
            flit,
            attempts,
        } => {
            put_u8(out, 2);
            put_u16(out, router.0);
            put_u8(out, dir.index() as u8);
            put_u64(out, flit.0);
            put_u32(out, attempts);
        }
    }
    put_u64(out, report.resident_flits as u64);
    put_u64(out, report.queued_flits as u64);
    put_u64(out, report.delivered_flits);
}

/// Take a [`StallReport`] off the front of `input` (inverse of
/// [`encode_stall_report`]). `None` on any malformed byte.
pub fn decode_stall_report(input: &mut &[u8]) -> Option<StallReport> {
    let cycle = take_u64(input)?;
    let kind = match take_u8(input)? {
        0 => StallKind::GlobalDeadlock {
            idle_cycles: take_u64(input)?,
        },
        1 => StallKind::CreditStall {
            router: NodeId(take_u16(input)?),
            dir: direction_from_u8(take_u8(input)?)?,
            oldest_age: take_u64(input)?,
        },
        2 => StallKind::RetxLivelock {
            router: NodeId(take_u16(input)?),
            dir: direction_from_u8(take_u8(input)?)?,
            flit: FlitId(take_u64(input)?),
            attempts: take_u32(input)?,
        },
        _ => return None,
    };
    Some(StallReport {
        cycle,
        kind,
        resident_flits: take_u64(input)? as usize,
        queued_flits: take_u64(input)? as usize,
        delivered_flits: take_u64(input)?,
        // Wall-clock telemetry is not simulation state: a restored run
        // re-arms (or not) its own telemetry plane.
        heartbeat: None,
    })
}

fn direction_from_u8(i: u8) -> Option<Direction> {
    Direction::ALL.get(i as usize).copied()
}

// ---------------------------------------------------------------------
// Payload codec: leaf encoders
// ---------------------------------------------------------------------

fn put_header_fields(out: &mut Vec<u8>, h: &Header) {
    // Field-by-field, not `Header::pack()`: the packed wire form aliases
    // coordinates mod 16 and would not round-trip large meshes.
    put_u16(out, h.src.0);
    put_u16(out, h.dest.0);
    put_u8(out, h.vc.0);
    put_u32(out, h.mem_addr);
    put_u8(out, h.thread);
    put_u8(out, h.len);
}

fn flit_kind_tag(kind: FlitKind) -> u8 {
    match kind {
        FlitKind::Head => 0,
        FlitKind::Body => 1,
        FlitKind::Tail => 2,
        FlitKind::Single => 3,
    }
}

fn put_flit(out: &mut Vec<u8>, f: &Flit) {
    put_u64(out, f.id.0);
    put_u64(out, f.packet.0);
    put_u8(out, flit_kind_tag(f.kind));
    put_u8(out, f.seq);
    put_header_fields(out, &f.header);
    put_u64(out, f.word);
}

fn put_plan(out: &mut Vec<u8>, plan: &LobPlan) {
    put_str(out, &plan.label());
}

fn put_opt_plan(out: &mut Vec<u8>, plan: Option<LobPlan>) {
    match plan {
        None => put_bool(out, false),
        Some(p) => {
            put_bool(out, true);
            put_plan(out, &p);
        }
    }
}

fn put_obf_wire(out: &mut Vec<u8>, o: &ObfWire) {
    put_plan(out, &o.plan);
    put_u32(out, o.attempt);
    match o.partner {
        None => put_bool(out, false),
        Some(p) => {
            put_bool(out, true);
            put_u64(out, p.0);
        }
    }
}

fn put_opt_obf(out: &mut Vec<u8>, o: Option<&ObfWire>) {
    match o {
        None => put_bool(out, false),
        Some(w) => {
            put_bool(out, true);
            put_obf_wire(out, w);
        }
    }
}

fn fault_class_tag(class: FaultClass) -> u8 {
    match class {
        FaultClass::None => 0,
        FaultClass::Transient => 1,
        FaultClass::Permanent => 2,
        FaultClass::HardwareTrojan => 3,
    }
}

fn put_stall_kind_fields(out: &mut Vec<u8>, report: &StallReport) {
    encode_stall_report(out, report);
}

fn put_sim_event(out: &mut Vec<u8>, e: &SimEvent) {
    match e {
        SimEvent::PacketDelivered {
            packet,
            src,
            dest,
            injected_at,
            delivered_at,
        } => {
            put_u8(out, 0);
            put_u64(out, packet.0);
            put_u16(out, src.0);
            put_u16(out, dest.0);
            put_u64(out, *injected_at);
            put_u64(out, *delivered_at);
        }
        SimEvent::BistRan {
            link,
            passed,
            cycle,
        } => {
            put_u8(out, 1);
            put_u16(out, link.0);
            put_bool(out, *passed);
            put_u64(out, *cycle);
        }
        SimEvent::LinkClassified { link, class, cycle } => {
            put_u8(out, 2);
            put_u16(out, link.0);
            put_u8(out, fault_class_tag(*class));
            put_u64(out, *cycle);
        }
        SimEvent::ObfuscationSucceeded { link, plan, cycle } => {
            put_u8(out, 3);
            put_u16(out, link.0);
            put_plan(out, plan);
            put_u64(out, *cycle);
        }
        SimEvent::RetryBudgetEscalated {
            link,
            flit,
            attempts,
            cycle,
        } => {
            put_u8(out, 4);
            put_u16(out, link.0);
            put_u64(out, flit.0);
            put_u32(out, *attempts);
            put_u64(out, *cycle);
        }
        SimEvent::LinkQuarantined {
            link,
            dropped_packets,
            dropped_flits,
            cycle,
        } => {
            put_u8(out, 5);
            put_u16(out, link.0);
            put_u64(out, *dropped_packets);
            put_u64(out, *dropped_flits);
            put_u64(out, *cycle);
        }
        SimEvent::WatchdogTripped { report } => {
            put_u8(out, 6);
            put_stall_kind_fields(out, report);
        }
    }
}

fn put_trace_event(out: &mut Vec<u8>, e: &TraceEvent) {
    match e {
        TraceEvent::Injected { cycle, flit, core } => {
            put_u8(out, 0);
            put_u64(out, *cycle);
            put_u64(out, flit.0);
            put_u16(out, *core);
        }
        TraceEvent::Launched {
            cycle,
            flit,
            link,
            obfuscated,
            attempt,
        } => {
            put_u8(out, 1);
            put_u64(out, *cycle);
            put_u64(out, flit.0);
            put_u16(out, link.0);
            put_opt_plan(out, *obfuscated);
            put_u32(out, *attempt);
        }
        TraceEvent::Delivered {
            cycle,
            flit,
            link,
            outcome,
        } => {
            put_u8(out, 2);
            put_u64(out, *cycle);
            put_u64(out, flit.0);
            put_u16(out, link.0);
            match outcome {
                TraceOutcome::Clean => put_u8(out, 0),
                TraceOutcome::CorrectedSingleBit => put_u8(out, 1),
                TraceOutcome::Nacked { lob_requested } => {
                    put_u8(out, 2);
                    put_bool(out, *lob_requested);
                }
            }
        }
        TraceEvent::Ejected {
            cycle,
            flit,
            router,
        } => {
            put_u8(out, 3);
            put_u64(out, *cycle);
            put_u64(out, flit.0);
            put_u16(out, router.0);
        }
    }
}

fn put_sim_error(out: &mut Vec<u8>, e: Option<&SimError>) {
    match e {
        None => put_u8(out, 0),
        Some(SimError::Stalled(report)) => {
            put_u8(out, 1);
            encode_stall_report(out, report);
        }
        Some(SimError::MeshDisconnected { cycle, dead }) => {
            put_u8(out, 2);
            put_u64(out, *cycle);
            put_u64(out, dead.len() as u64);
            for l in dead {
                put_u16(out, l.0);
            }
        }
        Some(SimError::InvariantViolations { cycle, violations }) => {
            put_u8(out, 3);
            put_u64(out, *cycle);
            put_u64(out, violations.len() as u64);
            for v in violations {
                put_u16(out, v.router);
                put_str(out, &v.what);
            }
        }
    }
}

fn put_stats(out: &mut Vec<u8>, s: &SimStats) {
    put_u64(out, s.snapshots.len() as u64);
    for snap in &s.snapshots {
        put_u64(out, snap.cycle);
        put_u64(out, snap.input_util as u64);
        put_u64(out, snap.output_util as u64);
        put_u64(out, snap.injection_util as u64);
        put_u64(out, snap.routers_all_cores_full as u64);
        put_u64(out, snap.routers_half_cores_full as u64);
        put_u64(out, snap.routers_blocked_port as u64);
        put_u64(out, snap.delivered_flits);
        put_u64(out, snap.retransmissions);
        put_u64(out, snap.uncorrectable_faults);
    }
    put_u64(out, s.injected_packets);
    put_u64(out, s.delivered_packets);
    put_u64(out, s.injected_flits);
    put_u64(out, s.delivered_flits);
    put_u64(out, s.latency_sum);
    put_u64(out, s.latency_samples);
    put_u64(out, s.latency_max);
    for b in &s.latency_histogram {
        put_u64(out, *b);
    }
    put_u64(out, s.retransmissions);
    put_u64(out, s.corrected_faults);
    put_u64(out, s.uncorrectable_faults);
    put_u64(out, s.bist_scans);
    put_u64(out, s.dropped_flits);
    put_u64(out, s.dropped_packets);
    put_u64(out, s.quarantined_links);
    put_u64(out, s.budget_escalations);
}

fn put_routing(out: &mut Vec<u8>, routing: &Routing) {
    match routing {
        Routing::Xy => put_u8(out, 0),
        Routing::Table(tables) => {
            put_u8(out, 1);
            put_u64(out, tables.next.len() as u64);
            for row in &tables.next {
                put_u64(out, row.len() as u64);
                for entry in row {
                    match entry {
                        None => put_bool(out, false),
                        Some(d) => {
                            put_bool(out, true);
                            put_u8(out, d.index() as u8);
                        }
                    }
                }
            }
        }
        Routing::OddEven => put_u8(out, 2),
        Routing::Topo(t) => {
            put_u8(out, 3);
            put_u64(out, t.next.len() as u64);
            for (row, classes) in t.next.iter().zip(&t.class) {
                put_u64(out, row.len() as u64);
                for (entry, class) in row.iter().zip(classes) {
                    match entry {
                        None => put_bool(out, false),
                        Some(d) => {
                            put_bool(out, true);
                            put_u8(out, d.index() as u8);
                        }
                    }
                    put_u8(out, *class);
                }
            }
        }
    }
}

fn put_detector_state(out: &mut Vec<u8>, st: &DetectorState) {
    put_u64(out, st.records.len() as u64);
    for ((packet, seq), rec) in &st.records {
        put_u64(out, packet.0);
        put_u8(out, *seq);
        put_u32(out, rec.faults);
        put_bytes(out, &rec.syndromes);
        put_u32(out, rec.obf_attempts);
        put_bool(out, rec.clean_after_obf);
    }
    put_u64(out, st.total_faults);
    put_u64(out, st.total_retransmissions);
    put_u64(out, st.bist_requests);
    put_u64(out, st.lob_escalations);
    match st.bist_passed {
        None => put_bool(out, false),
        Some(p) => {
            put_bool(out, true);
            put_bool(out, p);
        }
    }
}

fn put_input_unit(out: &mut Vec<u8>, unit: &InputUnit) {
    put_u64(out, unit.vcs.len() as u64);
    for vc in &unit.vcs {
        put_u64(out, vc.fifo.len() as u64);
        for f in &vc.fifo {
            put_flit(out, f);
        }
        put_u8(
            out,
            match vc.state {
                VcState::Idle => 0,
                VcState::Routing => 1,
                VcState::VcAlloc => 2,
                VcState::Active => 3,
            },
        );
        match vc.route {
            None => put_bool(out, false),
            Some(p) => {
                put_bool(out, true);
                put_u8(out, p.index() as u8);
            }
        }
        match vc.out_vc {
            None => put_bool(out, false),
            Some(v) => {
                put_bool(out, true);
                put_u8(out, v.0);
            }
        }
        match vc.packet {
            None => put_bool(out, false),
            Some(p) => {
                put_bool(out, true);
                put_u64(out, p.0);
            }
        }
        match vc.wire_packet {
            None => put_bool(out, false),
            Some(p) => {
                put_bool(out, true);
                put_u64(out, p.0);
            }
        }
        put_u8(out, vc.expected_seq);
        put_u64(out, vc.since);
    }
    put_detector_state(out, &unit.detector.export_state());
    put_u64(out, unit.delayed.len() as u64);
    for d in &unit.delayed {
        put_u64(out, d.ready);
        put_u8(out, d.vc.0);
        put_flit(out, &d.flit);
        put_u64(out, d.order);
    }
    put_u64(out, unit.pending_scrambles.len() as u64);
    for s in &unit.pending_scrambles {
        put_flit(out, &s.flit);
        put_u8(out, s.vc.0);
        put_u64(out, s.partner.0);
        put_u64(out, s.arrived);
        put_u32(out, s.penalty);
        put_u64(out, s.order);
    }
    put_u64(out, unit.seen_words.len() as u64);
    for (id, word) in &unit.seen_words {
        put_u64(out, id.0);
        put_u64(out, *word);
    }
    put_u64(out, unit.seen_head as u64);
    put_u64(out, unit.next_order);
    put_u8(out, fault_class_tag(unit.reported_class));
    put_u64(out, unit.occupancy_high_water);
}

fn put_output_unit(out: &mut Vec<u8>, unit: &OutputUnit) {
    put_u64(out, unit.entries.len() as u64);
    for e in &unit.entries {
        put_flit(out, &e.flit);
        put_u8(out, e.vc.0);
        put_u8(
            out,
            match e.state {
                SlotState::NeedSend => 0,
                SlotState::AwaitAck => 1,
            },
        );
        put_u32(out, e.attempts);
        put_u32(out, e.nacks);
        put_opt_obf(out, e.obf.as_ref());
        put_u64(out, e.sent_at);
        put_u64(out, e.entered_at);
    }
    put_u64(out, unit.vc_owner.len() as u64);
    for owner in &unit.vc_owner {
        match owner {
            None => put_bool(out, false),
            Some(p) => {
                put_bool(out, true);
                put_u64(out, p.0);
            }
        }
    }
    put_u64(out, unit.credits.len() as u64);
    for c in &unit.credits {
        put_u8(out, *c);
    }
    put_opt_plan(out, unit.lob.logged_plan());
    put_u64(out, unit.lob.attempts());
    put_u64(out, unit.lob.successes());
    // Both arbiter fields: `select_send` lazily rebuilds the arbiter
    // (resetting the pointer) whenever its width differs from
    // `total_capacity()`, so the width must survive the round trip too.
    put_u64(out, unit.send_rr.next as u64);
    put_u64(out, unit.send_rr.n as u64);
    put_u64(out, unit.last_progress);
    put_u64(out, unit.protected_dests.len() as u64);
    for d in &unit.protected_dests {
        put_u16(out, *d);
    }
    put_u64(out, unit.flits_sent);
    put_u64(out, unit.retransmissions);
    put_u64(out, unit.sab_credit_seen);
}

fn put_router(out: &mut Vec<u8>, r: &Router) {
    put_u64(out, r.inputs.len() as u64);
    for unit in &r.inputs {
        put_input_unit(out, unit);
    }
    for unit in &r.outputs {
        match unit {
            None => put_bool(out, false),
            Some(u) => {
                put_bool(out, true);
                put_output_unit(out, u);
            }
        }
    }
    for arb in &r.va_arb {
        put_u64(out, arb.next as u64);
    }
    put_u64(out, r.sa_arb.len() as u64);
    for arb in &r.sa_arb {
        put_u64(out, arb.next as u64);
    }
    put_u64(out, r.st_pending.len() as u64);
    for m in &r.st_pending {
        put_flit(out, &m.flit);
        put_u8(out, m.out_port.index() as u8);
        match m.out_vc {
            None => put_bool(out, false),
            Some(v) => {
                put_bool(out, true);
                put_u8(out, v.0);
            }
        }
        put_u64(out, m.granted_at);
    }
    for p in &r.pending_to_output {
        put_u8(out, *p);
    }
}

fn put_field_match_u8(out: &mut Vec<u8>, m: &Option<FieldMatch<u8>>) {
    match m {
        None => put_u8(out, 0),
        Some(FieldMatch::Exact(v)) => {
            put_u8(out, 1);
            put_u8(out, *v);
        }
        Some(FieldMatch::Range(r)) => {
            put_u8(out, 2);
            put_u8(out, *r.start());
            put_u8(out, *r.end());
        }
    }
}

fn put_field_match_u32(out: &mut Vec<u8>, m: &Option<FieldMatch<u32>>) {
    match m {
        None => put_u8(out, 0),
        Some(FieldMatch::Exact(v)) => {
            put_u8(out, 1);
            put_u32(out, *v);
        }
        Some(FieldMatch::Range(r)) => {
            put_u8(out, 2);
            put_u32(out, *r.start());
            put_u32(out, *r.end());
        }
    }
}

/// Encode link `i` of the SoA pool. Field order is identical to the old
/// per-struct layout, so the wire format is unchanged.
fn put_link(out: &mut Vec<u8>, lanes: &crate::link::LinkLanes, i: usize) {
    match &lanes.flits[i] {
        None => put_bool(out, false),
        Some(lf) => {
            put_bool(out, true);
            put_u64(out, lanes.arrive_at[i]);
            put_flit(out, &lf.flit);
            put_u128(out, lf.codeword.0);
            put_u64(out, lf.wire_word);
            put_u8(out, lf.vc.0);
            put_opt_obf(out, lf.obf.as_ref());
        }
    }
    put_u64(out, lanes.acks[i].len() as u64);
    for (at, msg) in &lanes.acks[i] {
        put_u64(out, *at);
        put_u64(out, msg.flit.0);
        match msg.kind {
            AckKind::Ack { obf_success } => {
                put_u8(out, 0);
                put_opt_plan(out, obf_success);
            }
            AckKind::Nack { lob_attempt } => {
                put_u8(out, 1);
                match lob_attempt {
                    None => put_bool(out, false),
                    Some(a) => {
                        put_bool(out, true);
                        put_u32(out, a);
                    }
                }
            }
        }
    }
    put_u64(out, lanes.credits[i].len() as u64);
    for (at, vc) in &lanes.credits[i] {
        put_u64(out, *at);
        put_u8(out, vc.0);
    }
    // Fault layer.
    let faults = &lanes.faults[i];
    put_f64(out, faults.transient_bit_prob);
    put_u128(out, faults.stuck.stuck_one);
    put_u128(out, faults.stuck.stuck_zero);
    match &faults.trojan {
        None => put_bool(out, false),
        Some(ht) => {
            put_bool(out, true);
            let cfg = ht.config();
            put_field_match_u8(out, &cfg.target.src);
            put_field_match_u8(out, &cfg.target.dest);
            put_field_match_u8(out, &cfg.target.vc);
            put_field_match_u32(out, &cfg.target.mem);
            put_u8(out, cfg.y_bits);
            put_u8(out, cfg.wire_bits);
            put_u32(out, cfg.cooldown);
            put_bool(out, ht.kill_switch());
            put_u8(
                out,
                match ht.state() {
                    TaspState::Idle => 0,
                    TaspState::Active => 1,
                    TaspState::Attacking => 2,
                },
            );
            match ht.last_injection() {
                None => put_bool(out, false),
                Some(c) => {
                    put_bool(out, true);
                    put_u64(out, c);
                }
            }
            let stats = ht.stats();
            put_u64(out, stats.inspections);
            put_u64(out, stats.sightings);
            put_u64(out, stats.injections);
            put_u16(out, ht.payload_state());
            put_u64(out, ht.payload_injections());
        }
    }
    for s in faults.rng.state() {
        put_u64(out, s);
    }
    put_u64(out, faults.transient_flips);
    put_u64(out, faults.trojan_injections);
    put_u64(out, lanes.flits_carried[i]);
}

fn put_tracer(out: &mut Vec<u8>, tracer: Option<&TraceRecorder>) {
    match tracer {
        None => put_bool(out, false),
        Some(t) => {
            put_bool(out, true);
            put_u64(out, t.capacity as u64);
            put_u64(out, t.emitted);
            put_u64(out, t.dropped);
            put_u64(out, t.buf.len() as u64);
            for rec in &t.buf {
                put_str(out, &rec.to_jsonl());
            }
        }
    }
}

fn encode_sim(sim: &Simulator) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 * 1024);
    put_u64(&mut p, sim.cycle);
    put_u64(&mut p, sim.next_flit_id);
    let mut birth: Vec<(u64, u64)> = sim.birth.iter().map(|(k, v)| (k.0, *v)).collect();
    birth.sort_unstable();
    put_u64(&mut p, birth.len() as u64);
    for (packet, at) in birth {
        put_u64(&mut p, packet);
        put_u64(&mut p, at);
    }
    put_stats(&mut p, &sim.stats);
    put_u64(&mut p, sim.events.len() as u64);
    for e in &sim.events {
        put_sim_event(&mut p, e);
    }
    put_u64(&mut p, sim.trace.len() as u64);
    for e in &sim.trace {
        put_trace_event(&mut p, e);
    }
    put_u64(&mut p, sim.last_progress_cycle);
    put_u64(&mut p, sim.pending_quarantine.len() as u64);
    for l in &sim.pending_quarantine {
        put_u16(&mut p, l.0);
    }
    put_sim_error(&mut p, sim.poisoned.as_ref());
    put_u64(&mut p, sim.watchdog_armed_at);
    put_u64(&mut p, sim.snap_base.0);
    put_u64(&mut p, sim.snap_base.1);
    put_u64(&mut p, sim.snap_base.2);
    put_u64(&mut p, sim.router_active.len() as u64);
    for b in &sim.router_active {
        put_bool(&mut p, *b);
    }
    put_u64(&mut p, sim.link_dead.len() as u64);
    for b in &sim.link_dead {
        put_bool(&mut p, *b);
    }
    put_u64(&mut p, sim.sabotage_eject_seen);
    put_u64(&mut p, sim.inj_rr.len() as u64);
    for r in &sim.inj_rr {
        put_u8(&mut p, *r);
    }
    put_u64(&mut p, sim.inj_queues.len() as u64);
    for q in &sim.inj_queues {
        put_u64(&mut p, q.len() as u64);
        for f in q {
            put_flit(&mut p, f);
        }
    }
    put_u64(&mut p, sim.dead_links.len() as u64);
    for l in &sim.dead_links {
        put_u16(&mut p, l.0);
    }
    put_routing(&mut p, &sim.routing);
    // Metrics registry.
    put_u64(&mut p, sim.metrics.links.len() as u64);
    for l in &sim.metrics.links {
        put_u64(&mut p, l.flits.get());
        put_u64(&mut p, l.retransmissions.get());
        put_u64(&mut p, l.ecc_corrected.get());
        put_u64(&mut p, l.ecc_uncorrectable.get());
        put_u64(&mut p, l.nacks.get());
        put_u64(&mut p, l.bist_scans.get());
        put_u64(&mut p, l.lob_selections.get());
        for b in l.delivery_attempts.buckets() {
            put_u64(&mut p, *b);
        }
        put_u64(&mut p, l.delivery_attempts.count());
        put_u64(&mut p, l.delivery_attempts.max());
    }
    put_u64(&mut p, sim.metrics.routers.len() as u64);
    for r in &sim.metrics.routers {
        put_u64(&mut p, r.ejected_flits.get());
        put_u64(&mut p, r.injection_stalls.get());
        put_u64(&mut p, r.input_occupancy.current);
        put_u64(&mut p, r.input_occupancy.high_water);
        put_u64(&mut p, r.retx_occupancy.current);
        put_u64(&mut p, r.retx_occupancy.high_water);
        put_u64(&mut p, r.buffer_high_water);
    }
    put_tracer(&mut p, sim.tracer.as_ref());
    put_u64(&mut p, sim.routers.len() as u64);
    for r in &sim.routers {
        put_router(&mut p, r);
    }
    put_u64(&mut p, sim.links.len() as u64);
    for i in 0..sim.links.len() {
        put_link(&mut p, &sim.links, i);
    }
    p
}

// ---------------------------------------------------------------------
// Payload codec: leaf decoders
// ---------------------------------------------------------------------

fn get_header(r: &mut Reader) -> Result<Header, SnapshotError> {
    Ok(Header {
        src: NodeId(r.u16()?),
        dest: NodeId(r.u16()?),
        vc: VcId(r.u8()?),
        mem_addr: r.u32()?,
        thread: r.u8()?,
        len: r.u8()?,
    })
}

fn get_flit(r: &mut Reader) -> Result<Flit, SnapshotError> {
    let id = FlitId(r.u64()?);
    let packet = PacketId(r.u64()?);
    let kind = match r.u8()? {
        0 => FlitKind::Head,
        1 => FlitKind::Body,
        2 => FlitKind::Tail,
        3 => FlitKind::Single,
        t => return Err(corrupt(format!("flit kind tag {t}"))),
    };
    let seq = r.u8()?;
    let header = get_header(r)?;
    let word = r.u64()?;
    Ok(Flit {
        id,
        packet,
        kind,
        seq,
        header,
        word,
    })
}

fn get_plan(r: &mut Reader) -> Result<LobPlan, SnapshotError> {
    let label = r.str()?;
    LobPlan::from_label(&label).ok_or_else(|| corrupt(format!("lob plan label {label:?}")))
}

fn get_opt_plan(r: &mut Reader) -> Result<Option<LobPlan>, SnapshotError> {
    Ok(if r.flag()? { Some(get_plan(r)?) } else { None })
}

fn get_obf_wire(r: &mut Reader) -> Result<ObfWire, SnapshotError> {
    let plan = get_plan(r)?;
    let attempt = r.u32()?;
    let partner = if r.flag()? {
        Some(FlitId(r.u64()?))
    } else {
        None
    };
    Ok(ObfWire {
        plan,
        attempt,
        partner,
    })
}

fn get_opt_obf(r: &mut Reader) -> Result<Option<ObfWire>, SnapshotError> {
    Ok(if r.flag()? {
        Some(get_obf_wire(r)?)
    } else {
        None
    })
}

fn get_fault_class(r: &mut Reader) -> Result<FaultClass, SnapshotError> {
    Ok(match r.u8()? {
        0 => FaultClass::None,
        1 => FaultClass::Transient,
        2 => FaultClass::Permanent,
        3 => FaultClass::HardwareTrojan,
        t => return Err(corrupt(format!("fault class tag {t}"))),
    })
}

fn get_port(r: &mut Reader, ports: usize) -> Result<Port, SnapshotError> {
    let i = r.u8()? as usize;
    if i >= ports {
        return Err(corrupt(format!("port index {i} >= {ports}")));
    }
    Ok(Port::from_index(i))
}

fn get_stall_report(r: &mut Reader) -> Result<StallReport, SnapshotError> {
    decode_stall_report(&mut r.buf).ok_or_else(|| corrupt("stall report"))
}

fn get_sim_event(r: &mut Reader) -> Result<SimEvent, SnapshotError> {
    Ok(match r.u8()? {
        0 => SimEvent::PacketDelivered {
            packet: PacketId(r.u64()?),
            src: NodeId(r.u16()?),
            dest: NodeId(r.u16()?),
            injected_at: r.u64()?,
            delivered_at: r.u64()?,
        },
        1 => SimEvent::BistRan {
            link: LinkId(r.u16()?),
            passed: r.bool()?,
            cycle: r.u64()?,
        },
        2 => SimEvent::LinkClassified {
            link: LinkId(r.u16()?),
            class: get_fault_class(r)?,
            cycle: r.u64()?,
        },
        3 => SimEvent::ObfuscationSucceeded {
            link: LinkId(r.u16()?),
            plan: get_plan(r)?,
            cycle: r.u64()?,
        },
        4 => SimEvent::RetryBudgetEscalated {
            link: LinkId(r.u16()?),
            flit: FlitId(r.u64()?),
            attempts: r.u32()?,
            cycle: r.u64()?,
        },
        5 => SimEvent::LinkQuarantined {
            link: LinkId(r.u16()?),
            dropped_packets: r.u64()?,
            dropped_flits: r.u64()?,
            cycle: r.u64()?,
        },
        6 => SimEvent::WatchdogTripped {
            report: get_stall_report(r)?,
        },
        t => return Err(corrupt(format!("sim event tag {t}"))),
    })
}

fn get_trace_event(r: &mut Reader) -> Result<TraceEvent, SnapshotError> {
    Ok(match r.u8()? {
        0 => TraceEvent::Injected {
            cycle: r.u64()?,
            flit: FlitId(r.u64()?),
            core: r.u16()?,
        },
        1 => TraceEvent::Launched {
            cycle: r.u64()?,
            flit: FlitId(r.u64()?),
            link: LinkId(r.u16()?),
            obfuscated: get_opt_plan(r)?,
            attempt: r.u32()?,
        },
        2 => TraceEvent::Delivered {
            cycle: r.u64()?,
            flit: FlitId(r.u64()?),
            link: LinkId(r.u16()?),
            outcome: match r.u8()? {
                0 => TraceOutcome::Clean,
                1 => TraceOutcome::CorrectedSingleBit,
                2 => TraceOutcome::Nacked {
                    lob_requested: r.bool()?,
                },
                t => return Err(corrupt(format!("trace outcome tag {t}"))),
            },
        },
        3 => TraceEvent::Ejected {
            cycle: r.u64()?,
            flit: FlitId(r.u64()?),
            router: NodeId(r.u16()?),
        },
        t => return Err(corrupt(format!("trace event tag {t}"))),
    })
}

fn get_sim_error(r: &mut Reader) -> Result<Option<SimError>, SnapshotError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(SimError::Stalled(Box::new(get_stall_report(r)?))),
        2 => {
            let cycle = r.u64()?;
            let n = r.len()?;
            let mut dead = Vec::with_capacity(n);
            for _ in 0..n {
                dead.push(LinkId(r.u16()?));
            }
            Some(SimError::MeshDisconnected { cycle, dead })
        }
        3 => {
            let cycle = r.u64()?;
            let n = r.len()?;
            let mut violations = Vec::with_capacity(n);
            for _ in 0..n {
                violations.push(Violation {
                    router: r.u16()?,
                    what: r.str()?,
                });
            }
            Some(SimError::InvariantViolations { cycle, violations })
        }
        t => return Err(corrupt(format!("sim error tag {t}"))),
    })
}

fn get_stats(r: &mut Reader) -> Result<SimStats, SnapshotError> {
    let n = r.len()?;
    let mut snapshots = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        snapshots.push(StatsSnapshot {
            cycle: r.u64()?,
            input_util: r.u64()? as usize,
            output_util: r.u64()? as usize,
            injection_util: r.u64()? as usize,
            routers_all_cores_full: r.u64()? as usize,
            routers_half_cores_full: r.u64()? as usize,
            routers_blocked_port: r.u64()? as usize,
            delivered_flits: r.u64()?,
            retransmissions: r.u64()?,
            uncorrectable_faults: r.u64()?,
        });
    }
    let mut s = SimStats {
        snapshots,
        injected_packets: r.u64()?,
        delivered_packets: r.u64()?,
        injected_flits: r.u64()?,
        delivered_flits: r.u64()?,
        latency_sum: r.u64()?,
        latency_samples: r.u64()?,
        latency_max: r.u64()?,
        ..SimStats::default()
    };
    for b in s.latency_histogram.iter_mut() {
        *b = r.u64()?;
    }
    s.retransmissions = r.u64()?;
    s.corrected_faults = r.u64()?;
    s.uncorrectable_faults = r.u64()?;
    s.bist_scans = r.u64()?;
    s.dropped_flits = r.u64()?;
    s.dropped_packets = r.u64()?;
    s.quarantined_links = r.u64()?;
    s.budget_escalations = r.u64()?;
    Ok(s)
}

fn get_routing(r: &mut Reader, n_routers: usize) -> Result<Routing, SnapshotError> {
    Ok(match r.u8()? {
        0 => Routing::Xy,
        1 => {
            let rows = r.len()?;
            if rows != n_routers {
                return Err(corrupt(format!("route table rows {rows} != {n_routers}")));
            }
            let mut next = Vec::with_capacity(rows);
            for _ in 0..rows {
                let cols = r.len()?;
                if cols != n_routers {
                    return Err(corrupt(format!("route table cols {cols} != {n_routers}")));
                }
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(if r.flag()? {
                        Some(
                            direction_from_u8(r.u8()?)
                                .ok_or_else(|| corrupt("route table direction"))?,
                        )
                    } else {
                        None
                    });
                }
                next.push(row);
            }
            Routing::Table(RouteTables { next })
        }
        2 => Routing::OddEven,
        3 => {
            let rows = r.len()?;
            if rows != n_routers {
                return Err(corrupt(format!("topo table rows {rows} != {n_routers}")));
            }
            let mut next = Vec::with_capacity(rows);
            let mut class = Vec::with_capacity(rows);
            for _ in 0..rows {
                let cols = r.len()?;
                if cols != n_routers {
                    return Err(corrupt(format!("topo table cols {cols} != {n_routers}")));
                }
                let mut row = Vec::with_capacity(cols);
                let mut crow = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(if r.flag()? {
                        Some(
                            direction_from_u8(r.u8()?)
                                .ok_or_else(|| corrupt("topo table direction"))?,
                        )
                    } else {
                        None
                    });
                    let c = r.u8()?;
                    if c > 2 {
                        return Err(corrupt(format!("topo table vc class {c}")));
                    }
                    crow.push(c);
                }
                next.push(row);
                class.push(crow);
            }
            Routing::Topo(crate::routing::TopoRoutes::from_parts(next, class))
        }
        t => return Err(corrupt(format!("routing tag {t}"))),
    })
}

fn get_detector_state(r: &mut Reader) -> Result<DetectorState, SnapshotError> {
    let n = r.len()?;
    let mut records = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let key = (PacketId(r.u64()?), r.u8()?);
        records.push((
            key,
            FaultRecordState {
                faults: r.u32()?,
                syndromes: r.bytes()?,
                obf_attempts: r.u32()?,
                clean_after_obf: r.bool()?,
            },
        ));
    }
    Ok(DetectorState {
        records,
        total_faults: r.u64()?,
        total_retransmissions: r.u64()?,
        bist_requests: r.u64()?,
        lob_escalations: r.u64()?,
        bist_passed: if r.flag()? { Some(r.bool()?) } else { None },
    })
}

fn restore_input_unit(
    r: &mut Reader,
    unit: &mut InputUnit,
    ports: usize,
) -> Result<(), SnapshotError> {
    let vcs = r.len()?;
    if vcs != unit.vcs.len() {
        return Err(corrupt(format!("input vcs {vcs} != {}", unit.vcs.len())));
    }
    for vc in unit.vcs.iter_mut() {
        let depth = r.len()?;
        vc.fifo.clear();
        for _ in 0..depth {
            vc.fifo.push_back(get_flit(r)?);
        }
        vc.state = match r.u8()? {
            0 => VcState::Idle,
            1 => VcState::Routing,
            2 => VcState::VcAlloc,
            3 => VcState::Active,
            t => return Err(corrupt(format!("vc state tag {t}"))),
        };
        vc.route = if r.flag()? {
            Some(get_port(r, ports)?)
        } else {
            None
        };
        vc.out_vc = if r.flag()? { Some(VcId(r.u8()?)) } else { None };
        vc.packet = if r.flag()? {
            Some(PacketId(r.u64()?))
        } else {
            None
        };
        vc.wire_packet = if r.flag()? {
            Some(PacketId(r.u64()?))
        } else {
            None
        };
        vc.expected_seq = r.u8()?;
        vc.since = r.u64()?;
    }
    unit.detector.import_state(get_detector_state(r)?);
    let n = r.len()?;
    unit.delayed.clear();
    for _ in 0..n {
        unit.delayed.push(DelayedEntry {
            ready: r.u64()?,
            vc: VcId(r.u8()?),
            flit: get_flit(r)?,
            order: r.u64()?,
        });
    }
    let n = r.len()?;
    unit.pending_scrambles.clear();
    for _ in 0..n {
        unit.pending_scrambles.push(PendingScramble {
            flit: get_flit(r)?,
            vc: VcId(r.u8()?),
            partner: FlitId(r.u64()?),
            arrived: r.u64()?,
            penalty: r.u32()?,
            order: r.u64()?,
        });
    }
    let n = r.len()?;
    unit.seen_words.clear();
    for _ in 0..n {
        unit.seen_words.push((FlitId(r.u64()?), r.u64()?));
    }
    unit.seen_head = r.len()?;
    if unit.seen_head > unit.seen_words.len() {
        return Err(corrupt("seen_head beyond ring"));
    }
    unit.next_order = r.u64()?;
    unit.reported_class = get_fault_class(r)?;
    unit.occupancy_high_water = r.u64()?;
    Ok(())
}

fn restore_output_unit(r: &mut Reader, unit: &mut OutputUnit) -> Result<(), SnapshotError> {
    let n = r.len()?;
    unit.entries.clear();
    for _ in 0..n {
        unit.entries.push(RetxEntry {
            flit: get_flit(r)?,
            vc: VcId(r.u8()?),
            state: match r.u8()? {
                0 => SlotState::NeedSend,
                1 => SlotState::AwaitAck,
                t => return Err(corrupt(format!("slot state tag {t}"))),
            },
            attempts: r.u32()?,
            nacks: r.u32()?,
            obf: get_opt_obf(r)?,
            sent_at: r.u64()?,
            entered_at: r.u64()?,
        });
    }
    let n = r.len()?;
    if n != unit.vc_owner.len() {
        return Err(corrupt(format!(
            "vc_owner len {n} != {}",
            unit.vc_owner.len()
        )));
    }
    for owner in unit.vc_owner.iter_mut() {
        *owner = if r.flag()? {
            Some(PacketId(r.u64()?))
        } else {
            None
        };
    }
    let n = r.len()?;
    if n != unit.credits.len() {
        return Err(corrupt(format!(
            "credits len {n} != {}",
            unit.credits.len()
        )));
    }
    for c in unit.credits.iter_mut() {
        *c = r.u8()?;
    }
    let logged = get_opt_plan(r)?;
    let attempts = r.u64()?;
    let successes = r.u64()?;
    unit.lob.restore(logged, attempts, successes);
    let next = r.len()?;
    let n = r.len()?;
    if n == 0 || next >= n {
        return Err(corrupt(format!("send_rr pointer {next}/{n}")));
    }
    unit.send_rr = crate::arbiter::RoundRobin { next, n };
    unit.last_progress = r.u64()?;
    let n = r.len()?;
    unit.protected_dests.clear();
    for _ in 0..n {
        unit.protected_dests.push(r.u16()?);
    }
    unit.flits_sent = r.u64()?;
    unit.retransmissions = r.u64()?;
    unit.sab_credit_seen = r.u64()?;
    Ok(())
}

fn restore_router(r: &mut Reader, router: &mut Router, ports: usize) -> Result<(), SnapshotError> {
    let n = r.len()?;
    if n != router.inputs.len() {
        return Err(corrupt(format!("inputs {n} != {}", router.inputs.len())));
    }
    for unit in router.inputs.iter_mut() {
        restore_input_unit(r, unit, ports)?;
    }
    for unit in router.outputs.iter_mut() {
        let present = r.flag()?;
        match (present, unit.as_mut()) {
            (true, Some(u)) => restore_output_unit(r, u)?,
            (false, None) => {}
            (got, _) => {
                return Err(corrupt(format!(
                    "output presence {got} disagrees with mesh topology"
                )))
            }
        }
    }
    for arb in router.va_arb.iter_mut() {
        let next = r.len()?;
        if next >= arb.n {
            return Err(corrupt(format!("va_arb pointer {next}/{}", arb.n)));
        }
        arb.next = next;
    }
    let n = r.len()?;
    if n != router.sa_arb.len() {
        return Err(corrupt(format!("sa_arb {n} != {}", router.sa_arb.len())));
    }
    for arb in router.sa_arb.iter_mut() {
        let next = r.len()?;
        if next >= arb.n {
            return Err(corrupt(format!("sa_arb pointer {next}/{}", arb.n)));
        }
        arb.next = next;
    }
    let n = r.len()?;
    router.st_pending.clear();
    for _ in 0..n {
        router.st_pending.push(StMove {
            flit: get_flit(r)?,
            out_port: get_port(r, ports)?,
            out_vc: if r.flag()? { Some(VcId(r.u8()?)) } else { None },
            granted_at: r.u64()?,
        });
    }
    for p in router.pending_to_output.iter_mut() {
        *p = r.u8()?;
    }
    Ok(())
}

fn get_field_match_u8(r: &mut Reader) -> Result<Option<FieldMatch<u8>>, SnapshotError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(FieldMatch::Exact(r.u8()?)),
        2 => {
            let start = r.u8()?;
            let end = r.u8()?;
            Some(FieldMatch::Range(start..=end))
        }
        t => return Err(corrupt(format!("field match tag {t}"))),
    })
}

fn get_field_match_u32(r: &mut Reader) -> Result<Option<FieldMatch<u32>>, SnapshotError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(FieldMatch::Exact(r.u32()?)),
        2 => {
            let start = r.u32()?;
            let end = r.u32()?;
            Some(FieldMatch::Range(start..=end))
        }
        t => return Err(corrupt(format!("field match tag {t}"))),
    })
}

/// Restore link `i` of the SoA pool (the mirror of [`put_link`]).
fn restore_link(
    r: &mut Reader,
    lanes: &mut crate::link::LinkLanes,
    i: usize,
) -> Result<(), SnapshotError> {
    if r.flag()? {
        let at = r.u64()?;
        let flit = get_flit(r)?;
        let codeword = Codeword(r.u128()?);
        let wire_word = r.u64()?;
        let vc = VcId(r.u8()?);
        let obf = get_opt_obf(r)?;
        lanes.arrive_at[i] = at;
        lanes.flits[i] = Some(LinkFlit {
            flit,
            codeword,
            wire_word,
            vc,
            obf,
        });
    } else {
        lanes.arrive_at[i] = u64::MAX;
        lanes.flits[i] = None;
    }
    let n = r.len()?;
    lanes.acks[i] = VecDeque::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let at = r.u64()?;
        let flit = FlitId(r.u64()?);
        let kind = match r.u8()? {
            0 => AckKind::Ack {
                obf_success: get_opt_plan(r)?,
            },
            1 => AckKind::Nack {
                lob_attempt: if r.flag()? { Some(r.u32()?) } else { None },
            },
            t => return Err(corrupt(format!("ack kind tag {t}"))),
        };
        lanes.acks[i].push_back((at, AckMsg { flit, kind }));
    }
    let n = r.len()?;
    lanes.credits[i] = VecDeque::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let at = r.u64()?;
        lanes.credits[i].push_back((at, VcId(r.u8()?)));
    }
    let faults = &mut lanes.faults[i];
    faults.transient_bit_prob = r.f64()?;
    let stuck_one = r.u128()?;
    let stuck_zero = r.u128()?;
    faults.stuck = crate::fault::StuckWires {
        stuck_one,
        stuck_zero,
    };
    faults.trojan = if r.flag()? {
        let target = TargetSpec {
            src: get_field_match_u8(r)?,
            dest: get_field_match_u8(r)?,
            vc: get_field_match_u8(r)?,
            mem: get_field_match_u32(r)?,
        };
        let mut cfg = TaspConfig::new(target);
        cfg.y_bits = r.u8()?;
        cfg.wire_bits = r.u8()?;
        cfg.cooldown = r.u32()?;
        let killsw = r.bool()?;
        let state = match r.u8()? {
            0 => TaspState::Idle,
            1 => TaspState::Active,
            2 => TaspState::Attacking,
            t => return Err(corrupt(format!("tasp state tag {t}"))),
        };
        let last_injection = if r.flag()? { Some(r.u64()?) } else { None };
        let stats = TaspStats {
            inspections: r.u64()?,
            sightings: r.u64()?,
            injections: r.u64()?,
        };
        let payload_state = r.u16()?;
        let payload_injections = r.u64()?;
        let mut ht = TaspHt::new(cfg);
        ht.restore_runtime(
            killsw,
            state,
            last_injection,
            stats,
            payload_state,
            payload_injections,
        );
        Some(ht)
    } else {
        None
    };
    let mut rng_state = [0u64; 4];
    for s in rng_state.iter_mut() {
        *s = r.u64()?;
    }
    faults.rng = StdRng::from_state(rng_state);
    faults.transient_flips = r.u64()?;
    faults.trojan_injections = r.u64()?;
    lanes.flits_carried[i] = r.u64()?;
    Ok(())
}

struct TracerState {
    capacity: usize,
    emitted: u64,
    dropped: u64,
    records: Vec<Record>,
}

fn get_tracer(r: &mut Reader) -> Result<Option<TracerState>, SnapshotError> {
    if !r.flag()? {
        return Ok(None);
    }
    let capacity = r.len()?;
    let emitted = r.u64()?;
    let dropped = r.u64()?;
    let n = r.len()?;
    let mut records = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let line = r.str()?;
        records.push(Record::from_jsonl(&line).ok_or_else(|| corrupt("trace record jsonl"))?);
    }
    Ok(Some(TracerState {
        capacity,
        emitted,
        dropped,
        records,
    }))
}

fn decode_sim(sim: &mut Simulator, payload: &[u8]) -> Result<(), SnapshotError> {
    let ports = sim.cfg.ports();
    let mut r = Reader::new(payload);
    sim.cycle = r.u64()?;
    sim.next_flit_id = r.u64()?;
    let n = r.len()?;
    sim.birth.clear();
    for _ in 0..n {
        let packet = PacketId(r.u64()?);
        let at = r.u64()?;
        sim.birth.insert(packet, at);
    }
    sim.stats = get_stats(&mut r)?;
    let n = r.len()?;
    sim.events.clear();
    for _ in 0..n {
        let e = get_sim_event(&mut r)?;
        sim.events.push(e);
    }
    let n = r.len()?;
    sim.trace.clear();
    for _ in 0..n {
        let e = get_trace_event(&mut r)?;
        sim.trace.push(e);
    }
    sim.last_progress_cycle = r.u64()?;
    let n = r.len()?;
    sim.pending_quarantine.clear();
    for _ in 0..n {
        sim.pending_quarantine.push(LinkId(r.u16()?));
    }
    sim.poisoned = get_sim_error(&mut r)?;
    sim.watchdog_armed_at = r.u64()?;
    sim.snap_base = (r.u64()?, r.u64()?, r.u64()?);
    let n = r.len()?;
    if n != sim.router_active.len() {
        return Err(corrupt(format!(
            "router_active {n} != {}",
            sim.router_active.len()
        )));
    }
    for b in sim.router_active.iter_mut() {
        *b = r.bool()?;
    }
    let n = r.len()?;
    if n != sim.link_dead.len() {
        return Err(corrupt(format!("link_dead {n} != {}", sim.link_dead.len())));
    }
    for b in sim.link_dead.iter_mut() {
        *b = r.bool()?;
    }
    sim.sabotage_eject_seen = r.u64()?;
    let n = r.len()?;
    if n != sim.inj_rr.len() {
        return Err(corrupt(format!("inj_rr {n} != {}", sim.inj_rr.len())));
    }
    for p in sim.inj_rr.iter_mut() {
        *p = r.u8()?;
    }
    let n = r.len()?;
    if n != sim.inj_queues.len() {
        return Err(corrupt(format!(
            "inj_queues {n} != {}",
            sim.inj_queues.len()
        )));
    }
    for q in sim.inj_queues.iter_mut() {
        let depth = r.len()?;
        q.clear();
        for _ in 0..depth {
            q.push_back(get_flit(&mut r)?);
        }
    }
    let n = r.len()?;
    sim.dead_links.clear();
    for _ in 0..n {
        let l = LinkId(r.u16()?);
        if l.index() >= sim.link_dead.len() {
            return Err(corrupt(format!("dead link {} out of range", l.0)));
        }
        sim.dead_links.push(l);
    }
    // `link_dead` is the O(1) mirror of `dead_links`; both are serialised,
    // so their agreement doubles as an end-to-end decode check.
    let marked = sim.link_dead.iter().filter(|d| **d).count();
    if marked != sim.dead_links.len() || sim.dead_links.iter().any(|l| !sim.link_dead[l.index()]) {
        return Err(corrupt("dead_links / link_dead mirror disagree"));
    }
    sim.routing = get_routing(&mut r, sim.mesh.routers())?;
    let n = r.len()?;
    if n != sim.metrics.links.len() {
        return Err(corrupt(format!(
            "link metrics {n} != {}",
            sim.metrics.links.len()
        )));
    }
    for l in sim.metrics.links.iter_mut() {
        l.flits = crate::metrics::Counter(r.u64()?);
        l.retransmissions = crate::metrics::Counter(r.u64()?);
        l.ecc_corrected = crate::metrics::Counter(r.u64()?);
        l.ecc_uncorrectable = crate::metrics::Counter(r.u64()?);
        l.nacks = crate::metrics::Counter(r.u64()?);
        l.bist_scans = crate::metrics::Counter(r.u64()?);
        l.lob_selections = crate::metrics::Counter(r.u64()?);
        let mut h = crate::metrics::PowHistogram::default();
        for b in h.buckets.iter_mut() {
            *b = r.u64()?;
        }
        h.count = r.u64()?;
        h.max = r.u64()?;
        l.delivery_attempts = h;
    }
    let n = r.len()?;
    if n != sim.metrics.routers.len() {
        return Err(corrupt(format!(
            "router metrics {n} != {}",
            sim.metrics.routers.len()
        )));
    }
    for m in sim.metrics.routers.iter_mut() {
        m.ejected_flits = crate::metrics::Counter(r.u64()?);
        m.injection_stalls = crate::metrics::Counter(r.u64()?);
        m.input_occupancy.current = r.u64()?;
        m.input_occupancy.high_water = r.u64()?;
        m.retx_occupancy.current = r.u64()?;
        m.retx_occupancy.high_water = r.u64()?;
        m.buffer_high_water = r.u64()?;
    }
    let tracer = get_tracer(&mut r)?;
    match (sim.tracer.as_mut(), tracer) {
        (Some(t), Some(state)) => {
            // Keep the attached sink: it is the live simulator's property,
            // not the snapshot's.
            t.capacity = state.capacity.max(1);
            t.emitted = state.emitted;
            t.dropped = state.dropped;
            t.buf = VecDeque::from(state.records);
        }
        (Some(_), None) => {
            if let Some(t) = sim.tracer.as_mut() {
                t.close_sink();
            }
            sim.tracer = None;
        }
        (None, Some(state)) => {
            let mut t = TraceRecorder::new(TraceConfig {
                capacity: state.capacity.max(1),
            });
            t.emitted = state.emitted;
            t.dropped = state.dropped;
            t.buf = VecDeque::from(state.records);
            sim.tracer = Some(t);
        }
        (None, None) => {}
    }
    let n = r.len()?;
    if n != sim.routers.len() {
        return Err(corrupt(format!("routers {n} != {}", sim.routers.len())));
    }
    for router in sim.routers.iter_mut() {
        restore_router(&mut r, router, ports)?;
    }
    let n = r.len()?;
    if n != sim.links.len() {
        return Err(corrupt(format!("links {n} != {}", sim.links.len())));
    }
    for i in 0..sim.links.len() {
        restore_link(&mut r, &mut sim.links, i)?;
    }
    r.finish()
}

// ---------------------------------------------------------------------
// Simulator entry points
// ---------------------------------------------------------------------

impl Simulator {
    /// Capture the complete simulator state as a [`SimSnapshot`].
    ///
    /// The capture is exact: restoring it (into this simulator or a fresh
    /// one built from an equal configuration) and stepping forward
    /// produces bit-identical cycles, statistics, events, and trace
    /// records — at every thread count. Legal at any cycle boundary.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            payload: encode_sim(self),
            config_hash: config_hash(&self.cfg),
            cycle: self.cycle,
            user_data: Vec::new(),
        }
    }

    /// Restore a [`SimSnapshot`] into this simulator, replacing all
    /// runtime state. The simulator must have been built from a
    /// configuration whose [`config_hash`] matches the snapshot's.
    ///
    /// The attached trace sink (if any) is preserved; the sharding plan is
    /// kept and re-planned, so the current thread count carries over.
    ///
    /// # Errors
    ///
    /// On [`SnapshotError::ConfigMismatch`] the simulator is untouched.
    /// On any other error the simulator's state is unspecified (the
    /// decode mutates in place): discard it and rebuild — which is what
    /// [`Checkpointer::load_latest`]-driven resume loops do anyway.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), SnapshotError> {
        let expected = config_hash(&self.cfg);
        if snap.config_hash != expected {
            return Err(SnapshotError::ConfigMismatch {
                found: snap.config_hash,
                expected,
            });
        }
        decode_sim(self, &snap.payload)?;
        if self.cycle != snap.cycle {
            return Err(corrupt("header/payload cycle disagree"));
        }
        self.poll_buf.clear();
        self.flit_scratch.clear();
        // The codec wrote the authoritative per-VC structs directly; the
        // derived SoA lanes must be re-derived, and the restored routing
        // function may differ from whatever the RC memos were filled
        // under — a fresh epoch invalidates them lazily.
        let cycle = self.cycle;
        for r in self.routers.iter_mut() {
            r.rebuild_lanes(cycle);
        }
        self.routing_epoch = self.routing_epoch.wrapping_add(1);
        let threads = self.plans.len().max(1);
        self.set_threads(threads);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::{NoTraffic, TrafficSource};
    use noc_types::Packet;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Inject a fixed list of packets at their `created_at` cycles.
    struct ListSource {
        packets: Vec<Packet>,
    }

    impl TrafficSource for ListSource {
        fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
            let mut i = 0;
            while i < self.packets.len() {
                if self.packets[i].created_at == cycle {
                    out.push(self.packets.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        fn done(&self) -> bool {
            self.packets.is_empty()
        }
    }

    fn pkt(id: u64, cycle: u64, src: u16, dest: u16, len: u8) -> Packet {
        Packet::new(
            PacketId((id << 32) | cycle),
            NodeId(src),
            NodeId(dest),
            VcId((id % 2) as u8),
            (id * 64) as u32,
            (id % 4) as u8,
            len,
            cycle,
        )
    }

    fn burst(n: u64, from_cycle: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                pkt(
                    i + 1,
                    from_cycle + i,
                    (i % 16) as u16,
                    ((i * 7 + 3) % 16) as u16,
                    1 + (i % 4) as u8,
                )
            })
            .collect()
    }

    /// A unique scratch directory (no timestamps: deterministic tests).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("noc-snap-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc64_xz_check_vector() {
        // The CRC-64/XZ reference check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let mut sim = Simulator::new(SimConfig::paper());
        sim.run(
            200,
            &mut ListSource {
                packets: burst(24, 0),
            },
        );
        let mut snap = sim.snapshot();
        snap.set_user_data(b"cursor bytes".to_vec());
        let bytes = snap.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.cycle(), snap.cycle());
        assert_eq!(back.config_hash(), snap.config_hash());
        assert_eq!(back.user_data(), b"cursor bytes");
        assert_eq!(back.payload, snap.payload);
    }

    #[test]
    fn restored_sim_resumes_bit_identically() {
        let cfg = SimConfig::paper();
        let mut reference = Simulator::new(cfg.clone());
        reference.run(
            250,
            &mut ListSource {
                packets: burst(32, 0),
            },
        );
        let snap = reference.snapshot();

        // The restored copy must re-produce the reference exactly, at
        // every thread count, with and without continued injection.
        for threads in [1usize, 2, 4, 8] {
            let mut resumed = Simulator::new(cfg.clone());
            resumed.set_threads(threads);
            resumed.restore(&snap).unwrap();
            assert_eq!(resumed.snapshot().payload, snap.payload, "t={threads}");

            let mut golden = Simulator::new(cfg.clone());
            golden.restore(&snap).unwrap();
            let mut a = ListSource {
                packets: burst(8, 260),
            };
            let mut b = ListSource {
                packets: burst(8, 260),
            };
            golden.run(300, &mut a);
            resumed.run(300, &mut b);
            assert_eq!(
                resumed.snapshot().payload,
                golden.snapshot().payload,
                "diverged at t={threads}"
            );
        }
    }

    #[test]
    fn uninterrupted_equals_checkpoint_resume() {
        let cfg = SimConfig::paper();
        let mut straight = Simulator::new(cfg.clone());
        straight.run(
            500,
            &mut ListSource {
                packets: burst(40, 0),
            },
        );

        let mut first = Simulator::new(cfg.clone());
        let mut src = ListSource {
            packets: burst(40, 0),
        };
        first.run(230, &mut src);
        let snap = snap_through_disk(&first);
        let mut second = Simulator::new(cfg);
        second.restore(&snap).unwrap();
        second.run(270, &mut src);
        assert_eq!(second.snapshot().payload, straight.snapshot().payload);
        assert_eq!(
            format!("{:?}", second.stats()),
            format!("{:?}", straight.stats())
        );
    }

    /// Round-trip a snapshot through the atomic on-disk format.
    fn snap_through_disk(sim: &Simulator) -> SimSnapshot {
        let dir = scratch_dir("disk");
        let path = dir.join("s.snap");
        sim.snapshot().write_atomic(&path).unwrap();
        let snap = SimSnapshot::read(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        snap
    }

    #[test]
    fn trojan_and_fault_state_survives_restore() {
        use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
        let cfg = SimConfig::paper();
        let mut sim = Simulator::new(cfg.clone());
        let link = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
        let faults = sim.link_faults_mut(link);
        faults.transient_bit_prob = 1e-3;
        faults.trojan = Some(TaspHt::new(TaspConfig::new(TargetSpec::dest(3))));
        sim.run(
            400,
            &mut ListSource {
                packets: burst(48, 0),
            },
        );
        let snap = sim.snapshot();

        let mut resumed = Simulator::new(cfg);
        let link2 = resumed.mesh().link_out(NodeId(0), Direction::East).unwrap();
        let f2 = resumed.link_faults_mut(link2);
        f2.transient_bit_prob = 1e-3;
        f2.trojan = Some(TaspHt::new(TaspConfig::new(TargetSpec::dest(3))));
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.snapshot().payload, snap.payload);

        sim.run(200, &mut NoTraffic);
        resumed.run(200, &mut NoTraffic);
        assert_eq!(resumed.snapshot().payload, sim.snapshot().payload);
    }

    #[test]
    fn corruption_is_detected_never_panics() {
        let mut sim = Simulator::new(SimConfig::paper());
        sim.run(
            120,
            &mut ListSource {
                packets: burst(12, 0),
            },
        );
        let bytes = sim.snapshot().to_bytes();

        // Truncation at every interesting boundary.
        for cut in [0, 1, 7, 8, 15, 16, 19, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
        // Single-bit flips across the whole file (sampled stride to keep
        // the test fast) must be caught by the CRC.
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            match SimSnapshot::from_bytes(&bad) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn version_mismatch_is_typed_after_crc_passes() {
        let sim = Simulator::new(SimConfig::paper());
        let mut bytes = sim.snapshot().to_bytes();
        // Patch the version field inside the body, then re-seal the CRC so
        // only the version check can fire.
        let body_at = MAGIC.len() + 8;
        bytes[body_at..body_at + 4].copy_from_slice(&(SNAPSHOT_VERSION + 9).to_le_bytes());
        let crc = crc64(&bytes[body_at..]);
        let crc_at = MAGIC.len();
        bytes[crc_at..crc_at + 8].copy_from_slice(&crc.to_le_bytes());
        match SimSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 9);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn config_mismatch_is_rejected_and_leaves_sim_untouched() {
        let mut donor = Simulator::new(SimConfig::paper());
        donor.run(
            50,
            &mut ListSource {
                packets: burst(4, 0),
            },
        );
        let snap = donor.snapshot();

        let mut other = Simulator::new(SimConfig::paper_unprotected());
        let before = other.snapshot().payload;
        match other.restore(&snap) {
            Err(SnapshotError::ConfigMismatch { .. }) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(other.snapshot().payload, before);
    }

    #[test]
    fn thread_count_does_not_change_config_hash() {
        let mut a = SimConfig::paper();
        let mut b = SimConfig::paper();
        a.threads = Some(1);
        b.threads = Some(8);
        assert_eq!(config_hash(&a), config_hash(&b));
        assert_ne!(
            config_hash(&SimConfig::paper()),
            config_hash(&SimConfig::paper_unprotected())
        );
    }

    #[test]
    fn checkpointer_rotates_and_falls_back_past_corrupt_files() {
        let dir = scratch_dir("rot");
        let ck = Checkpointer::new(&dir, 3);
        let mut sim = Simulator::new(SimConfig::paper());
        let mut src = ListSource {
            packets: burst(20, 0),
        };
        for _ in 0..5 {
            sim.run(40, &mut src);
            ck.save(&sim.snapshot()).unwrap();
        }
        let files = ck.checkpoint_files().unwrap();
        assert_eq!(files.len(), 3, "{files:?}");

        let (_, latest) = ck.load_latest().unwrap().unwrap();
        assert_eq!(latest.cycle(), 200);

        // Corrupt the newest checkpoint: load_latest must fall back to
        // the previous one instead of failing.
        std::fs::write(files.last().unwrap(), b"garbage").unwrap();
        let (_, fallback) = ck.load_latest().unwrap().unwrap();
        assert_eq!(fallback.cycle(), 160);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointer_empty_or_missing_dir_is_none() {
        let dir = scratch_dir("empty");
        assert!(Checkpointer::new(&dir, 2).load_latest().unwrap().is_none());
        let missing = dir.join("not-created");
        assert!(Checkpointer::new(&missing, 2)
            .load_latest()
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stall_report_codec_roundtrip() {
        let report = StallReport {
            cycle: 12345,
            kind: StallKind::RetxLivelock {
                router: NodeId(5),
                dir: Direction::East,
                flit: FlitId(99),
                attempts: 64,
            },
            resident_flits: 19,
            queued_flits: 7,
            delivered_flits: 3,
            heartbeat: None,
        };
        let mut buf = Vec::new();
        encode_stall_report(&mut buf, &report);
        let mut input = buf.as_slice();
        let back = decode_stall_report(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
    }

    #[test]
    fn post_mortem_snapshot_written_on_stall() {
        use crate::fault::LinkFaults;
        use crate::watchdog::WatchdogConfig;
        use noc_trojan::{TargetSpec, TaspConfig, TaspHt};

        let dir = scratch_dir("pm");
        let mut cfg = SimConfig::paper_unprotected();
        cfg.watchdog = Some(WatchdogConfig {
            global_stall_cycles: 200,
            credit_stall_cycles: u64::MAX,
            retx_attempt_limit: u32::MAX,
        });
        let mut sim = Simulator::new(cfg.clone());
        sim.set_post_mortem_dir(Some(dir.clone()));
        // An armed trojan with no mitigation starves the targeted flow:
        // the watchdog must trip and drop a post-mortem snapshot.
        let link = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(1)));
        let faults = std::mem::replace(sim.link_faults_mut(link), LinkFaults::healthy(0));
        *sim.link_faults_mut(link) = faults.with_trojan(ht);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 2)],
        };
        let result = sim.run_to_quiescence_guarded(5_000, &mut src);
        assert!(result.is_err(), "expected a stall, got {result:?}");
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
        assert_eq!(files.len(), 1, "one post-mortem snapshot");
        let snap = SimSnapshot::read(&files[0].path()).unwrap();
        let mut twin = Simulator::new(cfg);
        twin.restore(&snap).unwrap();
        assert_eq!(twin.cycle(), snap.cycle());
        assert_eq!(twin.snapshot().payload, snap.payload);
        std::fs::remove_dir_all(&dir).ok();
    }
}
