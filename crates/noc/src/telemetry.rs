//! Side-band runtime telemetry: engine self-profiling, streaming
//! quantile sketches, Prometheus exposition, health heartbeats, and an
//! online alert-rule engine over the simulator's own counters.
//!
//! # Determinism contract
//!
//! Telemetry observes, it never steers. The plane splits into two halves
//! with different guarantees:
//!
//! * **deterministic observers** — the latency and retransmission-attempt
//!   [`QuantileSketch`]es and the [`AlertEngine`] consume only values the
//!   simulation itself produces in committed deterministic order (packet
//!   latencies at ejection commit, ACK attempt counts, per-interval
//!   [`Snapshot`](crate::stats::Snapshot) deltas). Their contents are
//!   bit-identical across thread counts and across runs.
//! * **wall-clock observers** — the per-phase timers, shard-imbalance
//!   gauges, and engine timeline read `Instant::now()`. Their *output*
//!   varies run to run, but nothing they measure ever feeds back into
//!   simulation state, so arming them cannot change a single simulated
//!   bit (proven by the zero-perturbation tests in `htnoc-core`).
//!
//! When telemetry is disarmed (the default) the simulator holds no
//! [`Telemetry`] and every hook is a single `Option`/bool test: the
//! steady-state loop stays allocation-free and the committed goldens are
//! untouched.
//!
//! # Pieces
//!
//! * [`QuantileSketch`] — a mergeable DDSketch-style log-linear sketch
//!   over `u64` samples, pure integer arithmetic (no float logs), with a
//!   guaranteed relative rank error ≤ 1/64. Merging is element-wise
//!   addition: associative, commutative, and therefore shard-order
//!   independent.
//! * [`Telemetry`] — the simulator-side aggregate: per-phase nanosecond
//!   histograms, per-barrier shard load gauges, a bounded engine
//!   timeline exportable as Chrome `trace_event` JSON, the sketches, and
//!   the alert engine.
//! * [`AlertRule`]/[`AlertEngine`] — declarative threshold rules
//!   evaluated once per snapshot interval, emitting [`AlertRecord`]s
//!   (also mirrored onto the trace bus as `TraceKind::Alert`).
//! * [`prometheus_text`]/[`parse_prometheus`] — text-format exposition of
//!   the metrics registry + telemetry gauges, and the strict parser CI
//!   validates it with.
//! * [`Heartbeat`]/[`TelemetryOut`] — the liveness record long-running
//!   drivers append to disk (atomically) so a stuck run is diagnosable
//!   from the filesystem.

use crate::metrics::MetricsRegistry;
use crate::stats::SimStats;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

// ---------------------------------------------------------------------
// Quantile sketch
// ---------------------------------------------------------------------

/// Log-linear sub-bucket resolution: 2^5 = 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;

/// A mergeable streaming quantile sketch over `u64` samples (DDSketch
/// family, pure integer arithmetic).
///
/// Values below 32 are stored exactly; larger values map to log-linear
/// buckets — 32 per octave — whose midpoint representative is within
/// `value / 64` of every sample in the bucket. Rank arithmetic is exact
/// (every sample is counted), so `quantile(q)` returns a value whose
/// relative error vs. the true q-th sample is at most 1/64.
///
/// Merging adds bucket counts element-wise, which is associative and
/// commutative: merging per-shard sketches in any order yields the same
/// sketch, the property the deterministic commit relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    zero: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

fn sketch_index(v: u64) -> usize {
    debug_assert!(v >= 1);
    if v < SUBS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as u64;
        let sub = (v >> (e - SUB_BITS as u64)) & (SUBS - 1);
        (SUBS * (e - SUB_BITS as u64 + 1) + sub) as usize
    }
}

fn sketch_value(i: usize) -> u64 {
    if i < SUBS as usize {
        i as u64
    } else {
        let e = (i as u64 / SUBS) + SUB_BITS as u64 - 1;
        let sub = i as u64 % SUBS;
        let width = 1u64 << (e - SUB_BITS as u64);
        let lower = (1u64 << e) | (sub * width);
        lower + width / 2
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v == 0 {
            self.zero += 1;
        } else {
            let i = sketch_index(v);
            if self.buckets.len() <= i {
                self.buckets.resize(i + 1, 0);
            }
            self.buckets[i] += 1;
        }
    }

    /// Fold another sketch into this one (element-wise bucket addition).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.zero += other.zero;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drop all samples, keeping the allocated bucket storage.
    pub fn clear(&mut self) {
        self.zero = 0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
    }

    /// The q-th quantile (`0.0 ..= 1.0`) using the ceil-rank convention:
    /// the returned value approximates the sample at 1-based rank
    /// `ceil(q · count)` (clamped to `[1, count]`), with relative error
    /// at most 1/64. `q = 0` returns the exact minimum; an empty sketch
    /// returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        if q == 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if seen >= rank {
            return 0;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return sketch_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// Engine phases and per-cycle profiling
// ---------------------------------------------------------------------

/// Number of pipeline phases the engine executes per cycle.
pub const PHASE_COUNT: usize = 7;
/// Number of barrier groups per cycle in the sharded engine.
pub const GROUP_COUNT: usize = 3;

/// Stable labels for the seven engine phases, in execution order
/// (reverse pipeline order, as `noc::par` runs them). The G1 label also
/// absorbs the active-set refresh that precedes link delivery.
pub const PHASE_LABELS: [&str; PHASE_COUNT] = [
    "link_delivery",
    "resolve_holds",
    "acks_credits",
    "launch",
    "switch_traversal",
    "switch_alloc",
    "va_rc",
];

/// Stable labels for the three barrier groups.
pub const GROUP_LABELS: [&str; GROUP_COUNT] = ["g1", "g2", "g3"];

/// Which barrier group each phase index belongs to.
pub const PHASE_GROUP: [usize; PHASE_COUNT] = [0, 0, 1, 1, 2, 2, 2];

/// Power-of-two histogram over nanosecond samples (32 buckets, so spans
/// 1 ns .. 4 s — wide enough for any per-cycle phase time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NsHistogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl NsHistogram {
    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let b = (64 - ns.max(1).leading_zeros() as usize - 1).min(31);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples in nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-barrier shard-load gauge: how unevenly the shards split the work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupLoad {
    /// Largest single-shard time ever seen for this group (ns).
    pub max_shard_ns: u64,
    /// Sum over cycles of the per-cycle max shard time (ns).
    pub sum_max_ns: u64,
    /// Sum over cycles of the per-cycle mean shard time (ns).
    pub sum_mean_ns: u64,
    /// Cycles sampled.
    pub samples: u64,
    /// Worst per-cycle max/mean ratio observed, in permille (1000 =
    /// perfectly balanced).
    pub worst_imbalance_permille: u64,
}

impl GroupLoad {
    /// Average max/mean shard-time ratio in permille over all sampled
    /// cycles (1000 = perfectly balanced; 0 when never sampled).
    pub fn imbalance_permille(&self) -> u64 {
        (self.sum_max_ns * 1000)
            .checked_div(self.sum_mean_ns)
            .unwrap_or(0)
    }
}

/// One sampled span of the engine timeline (a shard executing one
/// barrier group on one cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSlice {
    /// Simulation cycle.
    pub cycle: u64,
    /// Shard index.
    pub shard: u16,
    /// Barrier group index (0..3).
    pub group: u8,
    /// Span start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

// ---------------------------------------------------------------------
// Alerts
// ---------------------------------------------------------------------

/// Which alert rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertClass {
    /// Windowed p99 end-to-end latency exceeded its ceiling.
    P99Latency,
    /// Per-window retransmissions surged over the trailing baseline.
    RetxSurge,
    /// Some output port's oldest waiting entry aged past the ceiling.
    CreditStall,
    /// Per-window ejection rate collapsed vs. the trailing baseline
    /// while flits were resident and credits were backing up.
    EjectionCollapse,
}

impl AlertClass {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            AlertClass::P99Latency => "p99_latency",
            AlertClass::RetxSurge => "retx_surge",
            AlertClass::CreditStall => "credit_stall",
            AlertClass::EjectionCollapse => "ejection_collapse",
        }
    }

    /// Parse a [`AlertClass::label`] back.
    pub fn from_label(s: &str) -> Option<AlertClass> {
        match s {
            "p99_latency" => Some(AlertClass::P99Latency),
            "retx_surge" => Some(AlertClass::RetxSurge),
            "credit_stall" => Some(AlertClass::CreditStall),
            "ejection_collapse" => Some(AlertClass::EjectionCollapse),
            _ => None,
        }
    }

    const ALL: [AlertClass; 4] = [
        AlertClass::P99Latency,
        AlertClass::RetxSurge,
        AlertClass::CreditStall,
        AlertClass::EjectionCollapse,
    ];
}

/// One fired alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertRecord {
    /// Cycle of the snapshot window that tripped the rule.
    pub cycle: u64,
    /// Which rule fired.
    pub class: AlertClass,
    /// The observed value that crossed the rule's threshold.
    pub value: u64,
    /// The effective threshold it crossed.
    pub threshold: u64,
}

/// A declarative alert rule, evaluated once per snapshot interval.
/// Every rule fires on the *rising edge* of its condition (it must go
/// false before it can fire again), so a sustained attack produces one
/// onset alert per excursion rather than one per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertRule {
    /// Fire when the per-window p99 end-to-end latency exceeds `cycles`
    /// for `windows` consecutive snapshot intervals.
    P99LatencyAbove {
        /// Latency ceiling in cycles.
        cycles: u64,
        /// Consecutive windows required before firing.
        windows: u32,
    },
    /// Fire when retransmissions summed over the most recent trailing
    /// windows exceed `factor_permille`/1000 times the sum over the
    /// trailing windows *before* those (and at least `min_retx`
    /// absolute). Comparing trailing sums rather than single windows
    /// makes onset detection robust to short snapshot intervals, where a
    /// sustained one-retx-per-cycle NACK storm never spikes any single
    /// window.
    RetxSurge {
        /// Surge factor vs. the preceding-trail baseline, in permille.
        factor_permille: u64,
        /// Absolute recent-sum floor below which no surge is declared.
        min_retx: u64,
    },
    /// Fire when any output port's oldest waiting entry is older than
    /// `cycles` (tree saturation, before the watchdog's own threshold).
    CreditStallAge {
        /// Age ceiling in cycles.
        cycles: u64,
    },
    /// Fire when per-window delivered flits drop below
    /// `factor_permille`/1000 of the trailing mean while the trailing
    /// mean is at least `min_baseline` and some port shows credit
    /// back-pressure older than `min_credit_age` (distinguishing attack
    /// collapse from benign end-of-traffic drain).
    EjectionCollapse {
        /// Collapse factor vs. the trailing baseline, in permille.
        factor_permille: u64,
        /// Minimum trailing baseline (flits/window) for the rule to arm.
        min_baseline: u64,
        /// Minimum credit-stall age (cycles) accompanying the collapse.
        min_credit_age: u64,
    },
}

impl AlertRule {
    /// The class of alert this rule emits.
    pub fn class(&self) -> AlertClass {
        match self {
            AlertRule::P99LatencyAbove { .. } => AlertClass::P99Latency,
            AlertRule::RetxSurge { .. } => AlertClass::RetxSurge,
            AlertRule::CreditStallAge { .. } => AlertClass::CreditStall,
            AlertRule::EjectionCollapse { .. } => AlertClass::EjectionCollapse,
        }
    }
}

/// The default rule set, sized for the paper's mesh and the campaign
/// scenarios (snapshot windows of tens of cycles).
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::P99LatencyAbove {
            cycles: 600,
            windows: 2,
        },
        AlertRule::RetxSurge {
            factor_permille: 2000,
            min_retx: 8,
        },
        AlertRule::CreditStallAge { cycles: 300 },
        AlertRule::EjectionCollapse {
            factor_permille: 250,
            min_baseline: 40,
            min_credit_age: 64,
        },
    ]
}

/// One snapshot interval's worth of deterministic observations, the
/// input to [`AlertEngine::evaluate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowObs {
    /// Cycle of the snapshot.
    pub cycle: u64,
    /// p99 of the end-to-end latencies completed *this window*
    /// (`None` when no packet finished this window).
    pub p99_latency: Option<u64>,
    /// Retransmissions this window.
    pub retransmissions: u64,
    /// Flits delivered this window.
    pub delivered_flits: u64,
    /// Flits resident in routers at the snapshot.
    pub resident_flits: u64,
    /// Oldest credit-wait age (cycles) over all output ports, 0 if none.
    pub max_credit_age: u64,
}

/// How many trailing windows the surge/collapse baselines average over.
const TRAIL_WINDOWS: usize = 8;
/// Trailing windows required before baseline-relative rules arm.
const TRAIL_WARMUP: usize = 3;
/// Alert-history ring capacity.
const ALERT_HISTORY: usize = 64;

/// Evaluates a rule set against per-window observations and keeps the
/// alert history. Fully deterministic: consumes only simulation-derived
/// integers.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Per-rule consecutive-hit streak (for windowed rules).
    streaks: Vec<u32>,
    /// Per-rule "condition held last window" (rising-edge detection).
    held: Vec<bool>,
    retx_trail: VecDeque<u64>,
    eject_trail: VecDeque<u64>,
    /// Most recent alerts (bounded ring, oldest evicted).
    history: VecDeque<AlertRecord>,
    fired_total: u64,
    fired_by_class: [u64; 4],
    first_alert_cycle: Option<u64>,
}

impl AlertEngine {
    /// An engine over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let n = rules.len();
        Self {
            rules,
            streaks: vec![0; n],
            held: vec![false; n],
            retx_trail: VecDeque::with_capacity(2 * TRAIL_WINDOWS),
            eject_trail: VecDeque::with_capacity(TRAIL_WINDOWS),
            history: VecDeque::with_capacity(ALERT_HISTORY),
            fired_total: 0,
            fired_by_class: [0; 4],
            first_alert_cycle: None,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Total alerts fired over the engine's lifetime.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Alerts fired per [`AlertClass`] (indexed by `AlertClass::ALL`
    /// order: p99, retx surge, credit stall, ejection collapse).
    pub fn fired_by_class(&self, class: AlertClass) -> u64 {
        let i = AlertClass::ALL.iter().position(|&c| c == class).unwrap();
        self.fired_by_class[i]
    }

    /// Cycle of the first alert ever fired, if any.
    pub fn first_alert_cycle(&self) -> Option<u64> {
        self.first_alert_cycle
    }

    /// The bounded alert history, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &AlertRecord> {
        self.history.iter()
    }

    /// The most recent alert, if any.
    pub fn last_alert(&self) -> Option<AlertRecord> {
        self.history.back().copied()
    }

    fn trail_mean(trail: &VecDeque<u64>) -> Option<u64> {
        if trail.len() < TRAIL_WARMUP {
            None
        } else {
            Some(trail.iter().sum::<u64>() / trail.len() as u64)
        }
    }

    /// (recent trailing sum including `current`, preceding trailing sum),
    /// once enough history exists for both trails.
    fn trail_sums(trail: &VecDeque<u64>, current: u64) -> Option<(u64, u64)> {
        if trail.len() < 2 * TRAIL_WINDOWS - 1 {
            return None;
        }
        // The newest TRAIL_WINDOWS−1 entries plus `current` form the
        // recent trail; the TRAIL_WINDOWS before them the baseline.
        let recent: u64 = trail.iter().rev().take(TRAIL_WINDOWS - 1).sum::<u64>() + current;
        let prior: u64 = trail
            .iter()
            .rev()
            .skip(TRAIL_WINDOWS - 1)
            .take(TRAIL_WINDOWS)
            .sum();
        Some((recent, prior))
    }

    fn push_trail(trail: &mut VecDeque<u64>, cap: usize, v: u64) {
        if trail.len() == cap {
            trail.pop_front();
        }
        trail.push_back(v);
    }

    fn fire(&mut self, rec: AlertRecord) {
        self.fired_total += 1;
        let i = AlertClass::ALL
            .iter()
            .position(|&c| c == rec.class)
            .unwrap();
        self.fired_by_class[i] += 1;
        self.first_alert_cycle.get_or_insert(rec.cycle);
        if self.history.len() == ALERT_HISTORY {
            self.history.pop_front();
        }
        self.history.push_back(rec);
    }

    /// Evaluate all rules against one window. Returns the alerts fired
    /// this window (at most one per rule).
    pub fn evaluate(&mut self, obs: &WindowObs) -> Vec<AlertRecord> {
        let mut fired = Vec::new();
        let eject_base = Self::trail_mean(&self.eject_trail);
        for r in 0..self.rules.len() {
            let rule = self.rules[r];
            // (condition-this-window, observed value, effective threshold)
            let (cond, value, threshold) = match rule {
                AlertRule::P99LatencyAbove { cycles, .. } => {
                    let p99 = obs.p99_latency.unwrap_or(0);
                    (obs.p99_latency.is_some_and(|p| p > cycles), p99, cycles)
                }
                AlertRule::RetxSurge {
                    factor_permille,
                    min_retx,
                } => match Self::trail_sums(&self.retx_trail, obs.retransmissions) {
                    Some((recent, prior)) => {
                        let threshold = (prior * factor_permille / 1000).max(min_retx);
                        (recent >= threshold, recent, threshold)
                    }
                    None => (false, obs.retransmissions, min_retx),
                },
                AlertRule::CreditStallAge { cycles } => {
                    (obs.max_credit_age > cycles, obs.max_credit_age, cycles)
                }
                AlertRule::EjectionCollapse {
                    factor_permille,
                    min_baseline,
                    min_credit_age,
                } => match eject_base {
                    Some(base) if base >= min_baseline => {
                        let threshold = base * factor_permille / 1000;
                        let cond = obs.delivered_flits < threshold
                            && obs.resident_flits > 0
                            && obs.max_credit_age > min_credit_age;
                        (cond, obs.delivered_flits, threshold)
                    }
                    _ => (false, obs.delivered_flits, 0),
                },
            };
            let want_windows = match rule {
                AlertRule::P99LatencyAbove { windows, .. } => windows.max(1),
                _ => 1,
            };
            if cond {
                self.streaks[r] += 1;
                if self.streaks[r] >= want_windows && !self.held[r] {
                    self.held[r] = true;
                    let rec = AlertRecord {
                        cycle: obs.cycle,
                        class: rule.class(),
                        value,
                        threshold,
                    };
                    self.fire(rec);
                    fired.push(rec);
                }
            } else {
                self.streaks[r] = 0;
                self.held[r] = false;
            }
        }
        Self::push_trail(&mut self.retx_trail, 2 * TRAIL_WINDOWS, obs.retransmissions);
        Self::push_trail(&mut self.eject_trail, TRAIL_WINDOWS, obs.delivered_flits);
        fired
    }
}

// ---------------------------------------------------------------------
// The simulator-side telemetry aggregate
// ---------------------------------------------------------------------

/// Telemetry configuration (runtime-armed on the simulator, deliberately
/// *not* part of `SimConfig` so arming telemetry cannot change the
/// checkpoint config hash).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Maximum engine-timeline slices retained for the Chrome export.
    pub timeline_capacity: usize,
    /// Sample the engine timeline every this many cycles (0 = never).
    pub timeline_every: u64,
    /// Run the scoped phase timers every this many cycles (0 = never).
    /// Sampling keeps the wall-clock reads off most cycles — on hosts
    /// with a slow clock source, timing every cycle costs several
    /// percent of throughput, which would bust the side-band budget.
    /// The deterministic sketch feeds (latency, retransmission
    /// attempts) and the alert rules always observe every cycle.
    pub profile_every: u64,
    /// Alert rules to evaluate each snapshot interval.
    pub rules: Vec<AlertRule>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            timeline_capacity: 1 << 14,
            timeline_every: 64,
            profile_every: 8,
            rules: default_rules(),
        }
    }
}

/// The simulator's telemetry plane (held as `Option<Box<Telemetry>>`;
/// absent by default).
#[derive(Debug, Clone)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    /// Wall-clock origin for timeline offsets.
    pub(crate) epoch: Instant,
    /// Cumulative end-to-end packet latency sketch.
    pub latency: QuantileSketch,
    /// Latencies completed since the last snapshot window.
    latency_window: QuantileSketch,
    /// Launch attempts per acknowledged flit (1 = clean delivery).
    pub retx_attempts: QuantileSketch,
    phase_hist: [NsHistogram; PHASE_COUNT],
    phase_total_ns: [u64; PHASE_COUNT],
    group: [GroupLoad; GROUP_COUNT],
    timeline: Vec<TimelineSlice>,
    alerts: AlertEngine,
    cycles_profiled: u64,
    /// Cycles the fast-forward engine skipped (provably no-op, never
    /// stepped). Simulated time still advances over them, so alert
    /// windows and per-interval deltas are exact; only wall-clock
    /// profiling samples are absent.
    cycles_skipped: u64,
    first_watchdog_cycle: Option<u64>,
}

impl Telemetry {
    /// A fresh telemetry plane.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let rules = cfg.rules.clone();
        Self {
            cfg,
            epoch: Instant::now(),
            latency: QuantileSketch::new(),
            latency_window: QuantileSketch::new(),
            retx_attempts: QuantileSketch::new(),
            phase_hist: [NsHistogram::default(); PHASE_COUNT],
            phase_total_ns: [0; PHASE_COUNT],
            group: [GroupLoad::default(); GROUP_COUNT],
            timeline: Vec::new(),
            alerts: AlertEngine::new(rules),
            cycles_profiled: 0,
            cycles_skipped: 0,
            first_watchdog_cycle: None,
        }
    }

    /// Account `n` fast-forwarded cycles (see `cycles_skipped`).
    #[inline]
    pub(crate) fn note_skipped(&mut self, n: u64) {
        self.cycles_skipped += n;
    }

    /// Cycles the fast-forward engine skipped so far.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Whether the scoped phase timers should run on `cycle`. Timeline
    /// sampling forces a profiled cycle — the spans are captured by the
    /// timed path.
    pub(crate) fn profile_due(&self, cycle: u64) -> bool {
        (self.cfg.profile_every != 0 && cycle.is_multiple_of(self.cfg.profile_every))
            || self.timeline_due(cycle)
    }

    /// Whether the engine timeline should be sampled on `cycle`.
    pub(crate) fn timeline_due(&self, cycle: u64) -> bool {
        self.cfg.timeline_every != 0
            && cycle.is_multiple_of(self.cfg.timeline_every)
            && self.timeline.len() + GROUP_COUNT * crate::par::MAX_SHARDS
                <= self.cfg.timeline_capacity
    }

    /// Record one delivered packet's end-to-end latency (called at
    /// ejection commit, in deterministic order).
    #[inline]
    pub(crate) fn record_latency(&mut self, latency: u64) {
        self.latency.record(latency);
        self.latency_window.record(latency);
    }

    /// Fold one cycle's per-shard timing scratch into the aggregate
    /// histograms, imbalance gauges, and timeline, and drain the
    /// per-shard retransmission-attempt scratch into the global sketch.
    /// Clears the scratch for the next cycle.
    pub(crate) fn absorb_cycle(
        &mut self,
        cycle: u64,
        profiled: bool,
        fxs: &mut [crate::par::ShardFx],
    ) {
        // The deterministic sketch feeds drain every cycle; the timing
        // aggregation below only runs on profiled (sampled) cycles.
        for fx in fxs.iter_mut() {
            for v in fx.tel_retx_attempts.drain(..) {
                self.retx_attempts.record(v);
            }
        }
        if !profiled {
            return;
        }
        let nshards = fxs.len();
        self.cycles_profiled += 1;
        let mut phase_cycle_ns = [0u64; PHASE_COUNT];
        let mut group_max = [0u64; GROUP_COUNT];
        let mut group_sum = [0u64; GROUP_COUNT];
        for fx in fxs.iter_mut() {
            let mut shard_group_ns = [0u64; GROUP_COUNT];
            for p in 0..PHASE_COUNT {
                let ns = fx.tel_phase_ns[p];
                phase_cycle_ns[p] += ns;
                shard_group_ns[PHASE_GROUP[p]] += ns;
                fx.tel_phase_ns[p] = 0;
            }
            for g in 0..GROUP_COUNT {
                group_max[g] = group_max[g].max(shard_group_ns[g]);
                group_sum[g] += shard_group_ns[g];
            }
        }
        for (p, &ns) in phase_cycle_ns.iter().enumerate() {
            self.phase_hist[p].record(ns);
            self.phase_total_ns[p] += ns;
        }
        for g in 0..GROUP_COUNT {
            let mean = group_sum[g] / nshards as u64;
            let load = &mut self.group[g];
            load.max_shard_ns = load.max_shard_ns.max(group_max[g]);
            load.sum_max_ns += group_max[g];
            load.sum_mean_ns += mean;
            load.samples += 1;
            let ratio = (group_max[g] * 1000).checked_div(mean).unwrap_or(0);
            load.worst_imbalance_permille = load.worst_imbalance_permille.max(ratio);
        }
        // Timeline slices (only present when the cycle was sampled).
        for (s, fx) in fxs.iter_mut().enumerate() {
            for (g, span) in fx.tel_group_spans.iter_mut().enumerate() {
                let (start_ns, dur_ns) = *span;
                *span = (0, 0);
                if dur_ns > 0 && self.timeline.len() < self.cfg.timeline_capacity {
                    self.timeline.push(TimelineSlice {
                        cycle,
                        shard: s as u16,
                        group: g as u8,
                        start_ns,
                        dur_ns,
                    });
                }
            }
        }
    }

    /// Note a watchdog trip (for the alert-vs-watchdog race scoring).
    pub(crate) fn note_watchdog(&mut self, cycle: u64) {
        self.first_watchdog_cycle.get_or_insert(cycle);
    }

    /// Cycle of the first watchdog trip observed, if any.
    pub fn first_watchdog_cycle(&self) -> Option<u64> {
        self.first_watchdog_cycle
    }

    /// Evaluate the alert rules against one snapshot window. The window
    /// latency sketch is consumed (cleared) by the call.
    pub(crate) fn evaluate_window(&mut self, mut obs: WindowObs) -> Vec<AlertRecord> {
        obs.p99_latency = if self.latency_window.is_empty() {
            None
        } else {
            Some(self.latency_window.quantile(0.99))
        };
        self.latency_window.clear();
        self.alerts.evaluate(&obs)
    }

    /// The alert engine (history, counters, first-alert cycle).
    pub fn alerts(&self) -> &AlertEngine {
        &self.alerts
    }

    /// Per-phase histograms of summed-over-shards nanoseconds per cycle,
    /// indexed like [`PHASE_LABELS`].
    pub fn phase_histograms(&self) -> &[NsHistogram; PHASE_COUNT] {
        &self.phase_hist
    }

    /// Cumulative nanoseconds spent per phase (summed over shards).
    pub fn phase_total_ns(&self) -> &[u64; PHASE_COUNT] {
        &self.phase_total_ns
    }

    /// Per-barrier shard-load gauges, indexed like [`GROUP_LABELS`].
    pub fn group_loads(&self) -> &[GroupLoad; GROUP_COUNT] {
        &self.group
    }

    /// Cycles whose timing was absorbed.
    pub fn cycles_profiled(&self) -> u64 {
        self.cycles_profiled
    }

    /// Retained engine-timeline slices.
    pub fn timeline(&self) -> &[TimelineSlice] {
        &self.timeline
    }

    /// A compact engine-health snapshot, embedded into watchdog stall
    /// reports so post-mortems are self-contained.
    pub fn engine_heartbeat(&self, cycle: u64) -> EngineHeartbeat {
        let mut imbalance = [0u64; GROUP_COUNT];
        for (g, load) in self.group.iter().enumerate() {
            imbalance[g] = load.imbalance_permille();
        }
        EngineHeartbeat {
            cycle,
            phase_ns: self.phase_total_ns,
            group_imbalance_permille: imbalance,
            alerts_fired: self.alerts.fired_total(),
            last_alert: self.alerts.last_alert(),
        }
    }

    /// Render the retained engine timeline in Chrome `trace_event`
    /// format: pid 3 ("engine"), one tid per shard, wall-clock
    /// microseconds since the telemetry epoch. Loads alongside the PR 2
    /// sim-event trace (pids 1/2) in Perfetto.
    pub fn engine_chrome_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\
             \"args\":{\"name\":\"engine\"}}",
        );
        for s in &self.timeline {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"X\",\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":3,\"tid\":{},\
                 \"args\":{{\"cycle\":{}}}}}",
                GROUP_LABELS[s.group as usize],
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.dur_ns / 1000,
                s.dur_ns % 1000,
                s.shard,
                s.cycle
            );
        }
        out.push_str("]}");
        out
    }
}

/// A compact, `Copy` engine-health snapshot (embedded in
/// [`StallReport`](crate::watchdog::StallReport); excluded from stall
/// equality and from the checkpoint codec, since wall-clock timings are
/// not part of simulation state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHeartbeat {
    /// Cycle the heartbeat was taken.
    pub cycle: u64,
    /// Cumulative nanoseconds per phase (summed over shards), indexed
    /// like [`PHASE_LABELS`].
    pub phase_ns: [u64; PHASE_COUNT],
    /// Average max/mean shard-load ratio per barrier group, permille.
    pub group_imbalance_permille: [u64; GROUP_COUNT],
    /// Alerts fired so far.
    pub alerts_fired: u64,
    /// Most recent alert, if any.
    pub last_alert: Option<AlertRecord>,
}

// ---------------------------------------------------------------------
// Prometheus exposition + strict parser
// ---------------------------------------------------------------------

fn write_labels(out: &mut String, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
    use std::fmt::Write;
    let total = labels.len() + usize::from(extra.is_some());
    if total == 0 {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
}

struct PromWriter<'a> {
    out: String,
    labels: &'a [(&'a str, &'a str)],
}

impl<'a> PromWriter<'a> {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        use std::fmt::Write;
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, extra: Option<(&str, &str)>, value: u64) {
        use std::fmt::Write;
        self.out.push_str(name);
        write_labels(&mut self.out, self.labels, extra);
        let _ = writeln!(self.out, " {value}");
    }

    fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.sample(name, None, value);
    }

    fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "gauge", help);
        self.sample(name, None, value);
    }
}

/// Render the metrics registry, aggregate statistics, and (when armed)
/// telemetry gauges in Prometheus text exposition format. `labels` are
/// attached to every sample (e.g. `[("scenario", "trojan_flood")]`).
pub fn prometheus_text(
    cycle: u64,
    stats: &SimStats,
    metrics: &MetricsRegistry,
    telemetry: Option<&Telemetry>,
    labels: &[(&str, &str)],
) -> String {
    let mut w = PromWriter {
        out: String::new(),
        labels,
    };
    w.gauge("noc_cycle", "Current simulation cycle.", cycle);
    w.counter(
        "noc_injected_flits_total",
        "Flits offered by the traffic source.",
        stats.injected_flits,
    );
    w.counter(
        "noc_delivered_flits_total",
        "Flits delivered to destination cores.",
        stats.delivered_flits,
    );
    w.counter(
        "noc_delivered_packets_total",
        "Packets fully delivered.",
        stats.delivered_packets,
    );
    w.counter(
        "noc_dropped_flits_total",
        "Flits discarded by link quarantine.",
        stats.dropped_flits,
    );
    w.counter(
        "noc_retransmissions_total",
        "NACK-driven retransmissions.",
        stats.retransmissions,
    );
    w.counter(
        "noc_corrected_faults_total",
        "Single-bit ECC corrections.",
        stats.corrected_faults,
    );
    w.counter(
        "noc_uncorrectable_faults_total",
        "Uncorrectable ECC detections.",
        stats.uncorrectable_faults,
    );
    w.counter(
        "noc_quarantined_links_total",
        "Links quarantined.",
        stats.quarantined_links,
    );
    // Per-link families (bounded cardinality: one series per link).
    w.family(
        "noc_link_flits_total",
        "counter",
        "Flits driven per link, including retransmissions.",
    );
    let mut buf = itoa_buf();
    for (i, l) in metrics.links().iter().enumerate() {
        w.sample(
            "noc_link_flits_total",
            Some(("link", fmt_u(&mut buf, i as u64))),
            l.flits.get(),
        );
    }
    w.family(
        "noc_link_retx_total",
        "counter",
        "Retransmitted launches per link.",
    );
    for (i, l) in metrics.links().iter().enumerate() {
        w.sample(
            "noc_link_retx_total",
            Some(("link", fmt_u(&mut buf, i as u64))),
            l.retransmissions.get(),
        );
    }
    w.family(
        "noc_router_ejected_total",
        "counter",
        "Flits ejected per router.",
    );
    for (i, r) in metrics.routers().iter().enumerate() {
        w.sample(
            "noc_router_ejected_total",
            Some(("router", fmt_u(&mut buf, i as u64))),
            r.ejected_flits.get(),
        );
    }
    if let Some(tel) = telemetry {
        w.family(
            "noc_latency_cycles",
            "gauge",
            "End-to-end packet latency quantiles from the streaming sketch.",
        );
        for (q, l) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
            w.sample(
                "noc_latency_cycles",
                Some(("quantile", l)),
                tel.latency.quantile(q),
            );
        }
        w.gauge(
            "noc_retx_attempts_p99",
            "p99 launch attempts per acknowledged flit.",
            tel.retx_attempts.quantile(0.99),
        );
        w.counter(
            "noc_cycles_skipped_total",
            "Cycles fast-forwarded by the quiescence engine.",
            tel.cycles_skipped,
        );
        w.family(
            "noc_phase_ns_total",
            "counter",
            "Cumulative wall-clock nanoseconds per engine phase.",
        );
        for (p, label) in PHASE_LABELS.iter().enumerate() {
            w.sample(
                "noc_phase_ns_total",
                Some(("phase", label)),
                tel.phase_total_ns()[p],
            );
        }
        w.family(
            "noc_group_imbalance_permille",
            "gauge",
            "Average max/mean shard time per barrier group (1000 = balanced).",
        );
        for (g, label) in GROUP_LABELS.iter().enumerate() {
            w.sample(
                "noc_group_imbalance_permille",
                Some(("group", label)),
                tel.group_loads()[g].imbalance_permille(),
            );
        }
        w.counter(
            "noc_alerts_fired_total",
            "Alert-rule firings.",
            tel.alerts().fired_total(),
        );
        w.family(
            "noc_alerts_by_class_total",
            "counter",
            "Alert firings per rule class.",
        );
        for class in AlertClass::ALL {
            w.sample(
                "noc_alerts_by_class_total",
                Some(("class", class.label())),
                tel.alerts().fired_by_class(class),
            );
        }
        if let Some(c) = tel.alerts().first_alert_cycle() {
            w.gauge(
                "noc_first_alert_cycle",
                "Cycle of the first alert fired.",
                c,
            );
        }
        if let Some(c) = tel.first_watchdog_cycle() {
            w.gauge(
                "noc_first_watchdog_cycle",
                "Cycle of the first watchdog trip.",
                c,
            );
        }
    }
    w.out
}

fn itoa_buf() -> String {
    String::with_capacity(20)
}

fn fmt_u(buf: &mut String, v: u64) -> &str {
    use std::fmt::Write;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

/// One parsed Prometheus sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric family name.
    pub name: String,
    /// Label pairs, in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Strictly parse Prometheus text exposition format. Enforces, beyond
/// well-formedness: valid metric/label name charsets, quoted and
/// properly escaped label values, parseable sample values, and that
/// every sample's family was declared with a `# TYPE` line *before* its
/// first sample. Returns the samples or a line-numbered error.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (verb, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {ln}: bare comment directive"))?;
            match verb {
                "HELP" => {
                    let name = rest.split(' ').next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {ln}: invalid HELP metric name {name:?}"));
                    }
                }
                "TYPE" => {
                    let (name, kind) = rest
                        .split_once(' ')
                        .ok_or_else(|| format!("line {ln}: TYPE missing kind"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {ln}: invalid TYPE metric name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {ln}: unknown metric type {kind:?}"));
                    }
                    typed.push(name.to_string());
                }
                _ => return Err(format!("line {ln}: unknown directive {verb:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: comment without space after '#'"));
        }
        // Sample line: name[{labels}] value
        let (name_and_labels, value_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: sample missing value"))?;
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {ln}: unparseable value {v:?}"))?,
        };
        let (name, labels) = match name_and_labels.split_once('{') {
            None => (name_and_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {ln}: unterminated label set"))?;
                (
                    name.to_string(),
                    parse_labels(body).map_err(|e| format!("line {ln}: {e}"))?,
                )
            }
        };
        if !valid_metric_name(&name) {
            return Err(format!("line {ln}: invalid metric name {name:?}"));
        }
        if !typed.contains(&name) {
            return Err(format!(
                "line {ln}: sample for {name:?} before its # TYPE line"
            ));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        if chars.peek().is_none() {
            break;
        }
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        if !valid_label_name(&name) {
            return Err(format!("invalid label name {name:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {name:?} value not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next().ok_or("unterminated label value")? {
                '\\' => match chars.next().ok_or("dangling escape")? {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    c => return Err(format!("bad escape \\{c}")),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        labels.push((name, value));
        match chars.next() {
            None => break,
            Some(',') => {}
            Some(c) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
    Ok(labels)
}

/// Look up the value of `name` (with no/any labels) in parsed samples.
pub fn prom_value(samples: &[PromSample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

// ---------------------------------------------------------------------
// Heartbeat + interval writer
// ---------------------------------------------------------------------

/// One liveness record a long-running driver appends per interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heartbeat {
    /// Simulation cycle (or driver-defined progress unit, e.g. fuzz
    /// scenarios completed).
    pub cycle: u64,
    /// Wall-clock milliseconds since the driver started.
    pub wall_ms: u64,
    /// Progress rate over the last interval (cycles or units per second).
    pub rate_per_sec: u64,
    /// Resident set size in KiB (0 when unavailable).
    pub rss_kb: u64,
    /// Cycles (units) since the last checkpoint, when checkpointing.
    pub checkpoint_age: Option<u64>,
    /// Alerts fired so far, when telemetry is armed.
    pub alerts_fired: u64,
}

impl Heartbeat {
    /// Serialise as one flat JSON line.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "{{\"cycle\":{},\"wall_ms\":{},\"rate_per_sec\":{},\"rss_kb\":{},\"checkpoint_age\":",
            self.cycle, self.wall_ms, self.rate_per_sec, self.rss_kb
        );
        match self.checkpoint_age {
            Some(a) => {
                let _ = write!(s, "{a}");
            }
            None => s.push_str("null"),
        }
        let _ = write!(s, ",\"alerts_fired\":{}}}", self.alerts_fired);
        s
    }

    /// Parse a [`Heartbeat::to_json`] line back (tests and tooling).
    pub fn from_json(line: &str) -> Option<Heartbeat> {
        let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut hb = Heartbeat {
            cycle: 0,
            wall_ms: 0,
            rate_per_sec: 0,
            rss_kb: 0,
            checkpoint_age: None,
            alerts_fired: 0,
        };
        for part in inner.split(',') {
            let (k, v) = part.split_once(':')?;
            let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
            match k {
                "cycle" => hb.cycle = v.parse().ok()?,
                "wall_ms" => hb.wall_ms = v.parse().ok()?,
                "rate_per_sec" => hb.rate_per_sec = v.parse().ok()?,
                "rss_kb" => hb.rss_kb = v.parse().ok()?,
                "checkpoint_age" => {
                    hb.checkpoint_age = if v == "null" {
                        None
                    } else {
                        Some(v.parse().ok()?)
                    }
                }
                "alerts_fired" => hb.alerts_fired = v.parse().ok()?,
                _ => return None,
            }
        }
        Some(hb)
    }
}

/// Current resident set size in KiB from `/proc/self/status` (`VmRSS`),
/// 0 when unavailable (non-Linux).
pub fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Write `bytes` to `path` atomically: temp sibling, fsync, rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Interval-driven telemetry output for long-running drivers: writes
/// `metrics.prom` atomically and appends to `heartbeat.jsonl` every
/// `every` progress units, inside `dir`.
pub struct TelemetryOut {
    dir: PathBuf,
    every: u64,
    started: Instant,
    last_cycle: u64,
    last_wall_ms: u64,
}

impl TelemetryOut {
    /// Create the output directory and the writer. `every` = 0 disables
    /// interval writes (only [`TelemetryOut::write_now`] fires).
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            every,
            started: Instant::now(),
            last_cycle: 0,
            last_wall_ms: 0,
        })
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether an interval boundary has been crossed since the last
    /// write.
    pub fn due(&self, cycle: u64) -> bool {
        self.every != 0 && cycle >= self.last_cycle + self.every
    }

    /// Write `prom` to `metrics.prom` (atomic) and append a heartbeat
    /// line computed from the progress since the previous write.
    pub fn write_now(
        &mut self,
        cycle: u64,
        prom: &str,
        checkpoint_age: Option<u64>,
        alerts_fired: u64,
    ) -> std::io::Result<Heartbeat> {
        let wall_ms = self.started.elapsed().as_millis() as u64;
        let dt_ms = wall_ms.saturating_sub(self.last_wall_ms);
        let dc = cycle.saturating_sub(self.last_cycle);
        let rate = (dc * 1000).checked_div(dt_ms).unwrap_or(0);
        let hb = Heartbeat {
            cycle,
            wall_ms,
            rate_per_sec: rate,
            rss_kb: rss_kb(),
            checkpoint_age,
            alerts_fired,
        };
        write_atomic(&self.dir.join("metrics.prom"), prom.as_bytes())?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("heartbeat.jsonl"))?;
        writeln!(f, "{}", hb.to_json())?;
        self.last_cycle = cycle;
        self.last_wall_ms = wall_ms;
        Ok(hb)
    }

    /// Write a named auxiliary artifact (e.g. the engine Chrome trace)
    /// atomically into the output directory.
    pub fn write_artifact(&self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        write_atomic(&self.dir.join(name), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn sketch_is_exact_below_64() {
        let mut s = QuantileSketch::new();
        for v in 0..64u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 64);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 63);
        for (i, v) in (0..64u64).enumerate() {
            let q = (i as f64 + 1.0) / 64.0;
            assert_eq!(s.quantile(q), v, "q={q}");
        }
    }

    #[test]
    fn sketch_rank_error_is_bounded() {
        // Deterministic pseudo-random samples over 6 decades.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            })
            .collect();
        let mut s = QuantileSketch::new();
        for &v in &samples {
            s.record(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            let got = s.quantile(q);
            let err = got.abs_diff(exact);
            assert!(
                err <= exact / 32 + 1,
                "q={q}: got {got}, exact {exact}, err {err}"
            );
        }
        assert_eq!(s.quantile(0.0), samples[0]);
    }

    #[test]
    fn sketch_merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut s = QuantileSketch::new();
            let mut x = seed | 1;
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.record(x >> 40);
            }
            s
        };
        let (a, b, c) = (mk(1, 500), mk(2, 300), mk(3, 700));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "commutative");
        assert_eq!(ab_c.count(), 1500);
    }

    #[test]
    fn sketch_merge_equals_recording_everything_in_one() {
        let vals = [0u64, 1, 31, 32, 33, 1000, 65_535, 1 << 40];
        let mut whole = QuantileSketch::new();
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn sketch_zero_and_empty_behave() {
        let mut s = QuantileSketch::new();
        assert_eq!(s.quantile(0.99), 0);
        s.record(0);
        s.record(0);
        s.record(10);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn ns_histogram_accumulates() {
        let mut h = NsHistogram::default();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
        assert_eq!(h.mean(), 200);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn group_load_imbalance_ratio() {
        let load = GroupLoad {
            max_shard_ns: 100,
            sum_max_ns: 300,
            sum_mean_ns: 200,
            samples: 3,
            worst_imbalance_permille: 2000,
        };
        assert_eq!(load.imbalance_permille(), 1500);
        assert_eq!(GroupLoad::default().imbalance_permille(), 0);
    }

    fn quiet_obs(cycle: u64) -> WindowObs {
        WindowObs {
            cycle,
            p99_latency: Some(30),
            retransmissions: 2,
            delivered_flits: 100,
            resident_flits: 50,
            max_credit_age: 10,
        }
    }

    #[test]
    fn p99_rule_needs_consecutive_windows_and_rearms() {
        let mut e = AlertEngine::new(vec![AlertRule::P99LatencyAbove {
            cycles: 100,
            windows: 2,
        }]);
        let hot = |c| WindowObs {
            p99_latency: Some(500),
            ..quiet_obs(c)
        };
        assert!(e.evaluate(&hot(10)).is_empty(), "one window is not enough");
        let fired = e.evaluate(&hot(20));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, AlertClass::P99Latency);
        assert_eq!(fired[0].value, 500);
        assert!(e.evaluate(&hot(30)).is_empty(), "held, no refire");
        assert!(e.evaluate(&quiet_obs(40)).is_empty());
        assert!(e.evaluate(&hot(50)).is_empty());
        assert_eq!(e.evaluate(&hot(60)).len(), 1, "re-fires after clearing");
        assert_eq!(e.fired_total(), 2);
        assert_eq!(e.first_alert_cycle(), Some(20));
    }

    #[test]
    fn retx_surge_compares_trailing_sums() {
        let rule = AlertRule::RetxSurge {
            factor_permille: 2000,
            min_retx: 8,
        };
        // A sustained 1-retx/window NACK storm after a zero-retx
        // baseline: fires once the recent 8-window sum reaches the
        // floor, even though no single window ever spikes.
        let mut e = AlertEngine::new(vec![rule]);
        for c in 0..20 {
            assert!(e
                .evaluate(&WindowObs {
                    retransmissions: 0,
                    ..quiet_obs(c)
                })
                .is_empty());
        }
        let mut fired_at = None;
        for c in 20..40 {
            let fired = e.evaluate(&WindowObs {
                retransmissions: 1,
                ..quiet_obs(c)
            });
            if let Some(rec) = fired.first() {
                fired_at = Some((c, *rec));
                break;
            }
        }
        let (cycle, rec) = fired_at.expect("the sustained storm must fire");
        assert_eq!(rec.class, AlertClass::RetxSurge);
        assert_eq!(cycle, 27, "fires the window the recent sum reaches 8");
        assert_eq!(rec.value, 8);
        // A steady benign rate never looks like a surge: recent == prior
        // sum, and 4x the baseline is far above it.
        let mut e2 = AlertEngine::new(vec![rule]);
        for c in 0..64 {
            assert!(e2
                .evaluate(&WindowObs {
                    retransmissions: 3,
                    ..quiet_obs(c)
                })
                .is_empty());
        }
    }

    #[test]
    fn credit_stall_rule_fires_on_rising_edge() {
        let mut e = AlertEngine::new(vec![AlertRule::CreditStallAge { cycles: 300 }]);
        assert!(e.evaluate(&quiet_obs(0)).is_empty());
        let fired = e.evaluate(&WindowObs {
            max_credit_age: 400,
            ..quiet_obs(10)
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, AlertClass::CreditStall);
        assert_eq!(fired[0].threshold, 300);
    }

    #[test]
    fn ejection_collapse_requires_backpressure_not_just_drain() {
        let rule = AlertRule::EjectionCollapse {
            factor_permille: 250,
            min_baseline: 40,
            min_credit_age: 64,
        };
        // Benign end-of-traffic drain: delivery collapses but no credit
        // back-pressure — must stay silent.
        let mut benign = AlertEngine::new(vec![rule]);
        for c in 0..5 {
            benign.evaluate(&quiet_obs(c * 10));
        }
        assert!(benign
            .evaluate(&WindowObs {
                delivered_flits: 3,
                max_credit_age: 5,
                ..quiet_obs(100)
            })
            .is_empty());
        // Attack collapse: same delivery drop with aged credits — fires.
        let mut attack = AlertEngine::new(vec![rule]);
        for c in 0..5 {
            attack.evaluate(&quiet_obs(c * 10));
        }
        let fired = attack.evaluate(&WindowObs {
            delivered_flits: 3,
            max_credit_age: 200,
            ..quiet_obs(100)
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, AlertClass::EjectionCollapse);
    }

    #[test]
    fn alert_history_is_bounded() {
        let mut e = AlertEngine::new(vec![AlertRule::CreditStallAge { cycles: 1 }]);
        for c in 0..200u64 {
            // Alternate to keep producing rising edges.
            e.evaluate(&WindowObs {
                max_credit_age: if c % 2 == 0 { 100 } else { 0 },
                ..quiet_obs(c)
            });
        }
        assert_eq!(e.fired_total(), 100);
        assert_eq!(e.history().count(), ALERT_HISTORY);
    }

    #[test]
    fn prometheus_output_round_trips_through_strict_parser() {
        let stats = SimStats {
            injected_flits: 10,
            delivered_flits: 8,
            ..SimStats::default()
        };
        let metrics = MetricsRegistry::new(3, 2);
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.record_latency(40);
        tel.retx_attempts.record(3);
        let text = prometheus_text(
            123,
            &stats,
            &metrics,
            Some(&tel),
            &[("scenario", "unit \"q\" test")],
        );
        let samples = parse_prometheus(&text).expect("strict parse");
        assert_eq!(prom_value(&samples, "noc_cycle"), Some(123.0));
        assert_eq!(prom_value(&samples, "noc_injected_flits_total"), Some(10.0));
        let lat = samples
            .iter()
            .find(|s| {
                s.name == "noc_latency_cycles"
                    && s.labels.iter().any(|(k, v)| k == "quantile" && v == "0.99")
            })
            .expect("latency quantile sample");
        assert_eq!(lat.value, 40.0);
        assert!(lat
            .labels
            .iter()
            .any(|(k, v)| k == "scenario" && v == "unit \"q\" test"));
        assert_eq!(
            samples
                .iter()
                .filter(|s| s.name == "noc_link_flits_total")
                .count(),
            3
        );
    }

    #[test]
    fn strict_parser_rejects_malformed_exposition() {
        for (bad, why) in [
            ("noc_x 1", "sample before TYPE"),
            ("# TYPE noc_x counter\nnoc_x one", "non-numeric value"),
            ("# TYPE noc_x widget\nnoc_x 1", "unknown type"),
            (
                "# TYPE noc_x counter\nnoc_x{l=\"v\" 1",
                "unterminated labels",
            ),
            ("# TYPE noc_x counter\nnoc_x{1l=\"v\"} 1", "bad label name"),
            ("# TYPE 9bad counter", "bad metric name"),
            ("#comment", "comment without space"),
            ("# TYPE noc_x counter\nnoc_x{l=\"a\\q\"} 1", "bad escape"),
        ] {
            assert!(parse_prometheus(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn heartbeat_json_round_trips() {
        let hb = Heartbeat {
            cycle: 5000,
            wall_ms: 1234,
            rate_per_sec: 98765,
            rss_kb: 40960,
            checkpoint_age: Some(300),
            alerts_fired: 2,
        };
        assert_eq!(Heartbeat::from_json(&hb.to_json()), Some(hb));
        let none = Heartbeat {
            checkpoint_age: None,
            ..hb
        };
        assert_eq!(Heartbeat::from_json(&none.to_json()), Some(none));
    }

    #[test]
    fn telemetry_out_writes_metrics_and_heartbeats() {
        let dir = std::env::temp_dir().join(format!("noc-telemetry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut out = TelemetryOut::new(&dir, 100).unwrap();
        assert!(!out.due(50));
        assert!(out.due(100));
        let stats = SimStats::default();
        let metrics = MetricsRegistry::new(1, 1);
        let text = prometheus_text(100, &stats, &metrics, None, &[]);
        out.write_now(100, &text, None, 0).unwrap();
        out.write_now(250, &text, Some(50), 1).unwrap();
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(parse_prometheus(&prom).is_ok());
        let hb_lines = std::fs::read_to_string(dir.join("heartbeat.jsonl")).unwrap();
        let hbs: Vec<Heartbeat> = hb_lines
            .lines()
            .map(|l| Heartbeat::from_json(l).unwrap())
            .collect();
        assert_eq!(hbs.len(), 2);
        assert_eq!(hbs[1].cycle, 250);
        assert_eq!(hbs[1].checkpoint_age, Some(50));
        assert!(!out.due(251), "interval resets after a write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_chrome_trace_is_balanced_json() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.timeline.push(TimelineSlice {
            cycle: 10,
            shard: 2,
            group: 1,
            start_ns: 1_234_567,
            dur_ns: 890,
        });
        let s = tel.engine_chrome_trace();
        assert!(s.starts_with('{') && s.ends_with('}'));
        let depth = s.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        assert!(s.contains("\"g2\""));
        assert!(s.contains("\"ts\":1234.567"));
        assert!(s.contains("\"pid\":3"));
    }

    #[test]
    fn engine_heartbeat_captures_alert_state() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let fired = tel.evaluate_window(WindowObs {
            cycle: 70,
            max_credit_age: 500,
            ..WindowObs::default()
        });
        assert_eq!(fired.len(), 1, "credit-stall rule fires");
        let hb = tel.engine_heartbeat(80);
        assert_eq!(hb.cycle, 80);
        assert_eq!(hb.alerts_fired, 1);
        assert_eq!(hb.last_alert.unwrap().class, AlertClass::CreditStall);
    }
}
