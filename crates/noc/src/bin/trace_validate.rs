//! Validate a JSONL trace file against the structured-event schema:
//!
//! ```text
//! cargo run -p noc-sim --bin trace_validate -- out.jsonl
//! ```
//!
//! Every line must parse into a [`noc_sim::Record`] and re-serialise
//! byte-identically (the schema is canonical, so parse → print is the
//! identity). Exits non-zero on the first violation, making this the CI
//! gate for traces emitted by campaign runs.

use noc_sim::Record;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_validate <trace.jsonl>");
        std::process::exit(2);
    };
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_validate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut events = 0u64;
    for (i, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(rec) = Record::from_jsonl(line) else {
            eprintln!("{path}:{}: line does not match the trace schema:", i + 1);
            eprintln!("  {line}");
            std::process::exit(1);
        };
        let back = rec.to_jsonl();
        if back != line {
            eprintln!("{path}:{}: line is not canonical:", i + 1);
            eprintln!("  read:  {line}");
            eprintln!("  canon: {back}");
            std::process::exit(1);
        }
        events += 1;
    }
    if events == 0 {
        eprintln!("{path}: no trace events found");
        std::process::exit(1);
    }
    println!("{path}: {events} events, schema OK");
}
